"""Deterministic virtual time for asyncio: the fleet's clock.

The async XKMS service and the load harness run *tens of thousands* of
concurrent sessions whose think times, backoff schedules and deadlines
span simulated hours — and the whole run must be replayable
byte-for-byte from a seed.  Real ``asyncio.sleep`` would make wall
time part of the schedule; :class:`VirtualClock` removes it:

* coroutines suspend with :meth:`VirtualClock.asleep`, which registers
  a timer in a heap and parks the task on a future;
* the driver (:meth:`VirtualClock.run`) lets the event loop run until
  it is *quiescent* — no instrumented primitive has fired since the
  last full pass — and only then advances virtual time to the earliest
  pending timer and wakes its waiters.

Quiescence is observed through an activity counter: every primitive
that can make another task runnable (timer registration, queue
handoffs in :class:`VQueue`, explicit :meth:`bump` calls at future
resolutions) increments it.  On a single-threaded loop with FIFO
ready-queue semantics this makes the interleaving — and therefore
every latency percentile the load harness reports — a pure function
of the seeds.

A loop where nothing is runnable and no timer is pending is a genuine
deadlock; the driver raises a typed
:class:`~repro.errors.TimeoutError` instead of hanging, which is the
"zero hangs" guarantee the overload chaos suite leans on.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ChannelClosedError, TimeoutError
from repro.resilience.clock import SimulatedClock

#: deadline value meaning "none" (comparisons and struct packing both
#: behave, unlike None).
NO_DEADLINE = float("inf")


@dataclass
class VirtualClock(SimulatedClock):
    """A :class:`SimulatedClock` that coroutines can await.

    The synchronous API (``now``/``sleep``/``advance``) is unchanged,
    so retry policies, fault injectors and guards built on
    :class:`SimulatedClock` compose with async code on the same
    timeline.
    """

    _timers: list = field(default_factory=list, repr=False)
    _seq: itertools.count = field(
        default_factory=itertools.count, repr=False)
    _activity: int = 0

    def bump(self) -> None:
        """Mark loop activity (a task was or will be made runnable)."""
        self._activity += 1

    def schedule_at(self, when: float) -> asyncio.Future:
        """A future resolved when virtual time reaches *when*."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        heapq.heappush(self._timers, (when, next(self._seq), future))
        self.bump()
        return future

    async def asleep(self, seconds: float) -> None:
        """Suspend the calling task for *seconds* of virtual time."""
        if seconds <= 0:
            self.bump()
            await asyncio.sleep(0)
            return
        await self.schedule_at(self._now + seconds)
        self.sleeps.append(seconds)

    async def wait_until(self, future: asyncio.Future, at: float):
        """Await *future*, failing at virtual instant *at*.

        Returns the future's result (or re-raises its exception); when
        the timer wins, raises a typed
        :class:`~repro.errors.TimeoutError` and leaves *future* for
        the caller to clean up.
        """
        if future.done():
            return future.result()
        if at == NO_DEADLINE:
            return await future
        loop = asyncio.get_running_loop()
        gate = loop.create_future()

        def _settled(_f) -> None:
            if not gate.done():
                gate.set_result(None)
            self.bump()

        timer = self.schedule_at(at)
        future.add_done_callback(_settled)
        timer.add_done_callback(_settled)
        try:
            await gate
        finally:
            future.remove_done_callback(_settled)
            if not timer.done():
                timer.cancel()
        if future.done():
            return future.result()
        raise TimeoutError(
            f"deadline reached at t={at:g}s while awaiting a response",
            elapsed=self.now(),
        )

    # -- driver -----------------------------------------------------------------

    def run(self, coro):
        """``asyncio.run`` *coro* with this clock driving virtual time."""
        return asyncio.run(self.drive(coro))

    async def drive(self, coro):
        """Await *coro*, advancing virtual time whenever the loop idles."""
        task = asyncio.ensure_future(coro)
        self.bump()
        while not task.done():
            await self._quiesce()
            if task.done():
                break
            if not self._fire_next_timer():
                # A task finishing wakes its awaiters through plain
                # callbacks, which the activity counter cannot see: the
                # continuation may still be sitting in the ready queue.
                # Settle such completion chains before calling it a
                # deadlock — anything they do next (a new timer, a
                # queue handoff, finishing *task*) is observable.
                before = self._activity
                for _ in range(4):
                    await asyncio.sleep(0)
                if task.done() or self._timers \
                        or self._activity != before:
                    continue
                task.cancel()
                # Give the cancellation a chance to unwind, then report
                # the stall as a typed error rather than hanging.
                for _ in range(3):
                    await asyncio.sleep(0)
                raise TimeoutError(
                    "event loop deadlocked at virtual "
                    f"t={self.now():g}s: no runnable task and no "
                    "pending timer",
                    elapsed=self.now(),
                )
        return task.result()

    async def _quiesce(self) -> None:
        """Yield until no instrumented primitive fires for a full pass."""
        last = -1
        while last != self._activity:
            last = self._activity
            # Two yields per pass: the first lets tasks scheduled ahead
            # of the driver run, the second catches tasks *they* made
            # runnable, so a task spawned late in the FIFO ready queue
            # still runs before time advances.
            await asyncio.sleep(0)
            await asyncio.sleep(0)

    def _fire_next_timer(self) -> bool:
        """Advance to the earliest pending timer; False when none left."""
        while self._timers and self._timers[0][2].done():
            heapq.heappop(self._timers)
        if not self._timers:
            return False
        when = self._timers[0][0]
        if when > self._now:
            self.advance(when - self._now)
        woken = 0
        while self._timers and self._timers[0][0] <= self._now:
            _, _, future = heapq.heappop(self._timers)
            if not future.done():
                future.set_result(None)
                woken += 1
        self.bump()
        return True


class VQueue:
    """A single-loop FIFO whose handoffs register as clock activity.

    ``asyncio.Queue`` would work functionally, but its wakeups are
    invisible to the :class:`VirtualClock` quiescence check — the
    driver could advance time while a consumer it just woke is still
    queued to run.  Every ``put``/``get`` here bumps the clock, which
    closes that window.
    """

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self._items: deque = deque()
        self._getters: deque = deque()
        self.closed = False

    def __len__(self) -> int:
        return len(self._items)

    def put_nowait(self, item) -> None:
        if self.closed:
            raise ChannelClosedError("queue is closed")
        self._clock.bump()
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(item)
                return
        self._items.append(item)

    async def get(self):
        """Next item; raises :class:`ChannelClosedError` once drained."""
        self._clock.bump()
        if self._items:
            return self._items.popleft()
        if self.closed:
            raise ChannelClosedError("queue is closed")
        loop = asyncio.get_running_loop()
        getter = loop.create_future()
        self._getters.append(getter)
        return await getter

    def close(self) -> None:
        """Close the queue: waiting getters fail, queued items survive."""
        if self.closed:
            return
        self.closed = True
        self._clock.bump()
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_exception(
                    ChannelClosedError("queue closed while waiting"))
