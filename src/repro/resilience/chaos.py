"""Seeded adversarial chaos harness for the resource-hardened stack.

ISSUE 4's acceptance bar: every resource attack the harness can
generate must be *provably contained* — it either raises a typed
:mod:`repro.errors` exception or lands as a recorded degradation,
never a ``RecursionError``, ``MemoryError`` or raw traceback.  The
harness composes PR 1's deterministic :class:`FaultSchedule`
adversaries (drops, truncation) with resource-attack generators (deep
nesting, attribute floods, giant text nodes, reference bombs, decrypt
bombs, oversized frames) and drives them through the *real* entry
points: the parser, the verifier, the decryptor, the content server's
frame decoder, the XKMS responder and the full
sign→encrypt→transfer→verify→decrypt→playback pipeline.

Everything is deterministic under a fixed seed: attack sizes come from
one ``random.Random(seed)`` stream, the PKI world is built from a
fixed :class:`DeterministicRandomSource`, and fault schedules are
seeded from the same stream — so a CI failure replays bit-for-bit
with ``python -m repro.tools chaos --seed N``.

Invariants asserted per attack (violations fail the run):

* only :class:`~repro.errors.ReproError` subclasses escape an entry
  point — anything else (including ``AssertionError`` from the checks
  below) is a containment violation;
* a tripped :class:`ResourceGuard` still satisfies
  :meth:`~ResourceGuard.within_limits` (check-before-commit);
* servers answer hostile frames with protocol error frames, the XKMS
  responder answers malformed requests with a structured Sender fault;
* pipeline-level rejections land in the :class:`DegradationLog` with
  the ``resource-limit`` taxonomy code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.disc import ApplicationManifest
from repro.errors import (
    ApplicationRejectedError, NetworkError, ReproError,
    ResourceLimitExceeded,
)
from repro.network import Channel, ContentServer, DownloadClient
from repro.network.server import _RESP_ERR, _decode
from repro.permissions import PermissionRequestFile
from repro.player import DiscPlayer
from repro.primitives.keys import SymmetricKey
from repro.primitives.random import DeterministicRandomSource
from repro.resilience.clock import SimulatedClock
from repro.resilience.degradation import REASON_RESOURCE
from repro.resilience.faults import (
    DropFault, FaultSchedule, TruncateFault,
)
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.resilience.retry import RetryPolicy
from repro.xkms.messages import RESULT_SENDER_FAULT, XKMSResult
from repro.xkms.server import TrustServer
from repro.xmlcore import (
    DSIG_NS, canonicalize, element, parse_element,
)
from repro.xmlenc import Encryptor, Decryptor

PACKAGE_PATH = "/apps/chaos.pkg"

#: Tightened quotas so attack payloads stay small and CI stays fast;
#: the *relative* shape (every limit finite) matches the defaults.
CHAOS_LIMITS = ResourceLimits(
    max_input_bytes=256 * 1024,
    max_element_depth=40,
    max_node_count=4_000,
    max_attributes_per_element=32,
    max_text_bytes=20_000,
    max_references_per_signature=8,
    max_transforms_per_reference=4,
    max_c14n_output_bytes=512 * 1024,
    max_decrypt_output_bytes=50_000,
    max_expansion_ratio=50.0,
    max_frame_bytes=100_000,
)

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<root-layout width="1920" height="1080"/>'
    '<region regionName="main" width="1920" height="1080"/></layout>'
)


# -- the deterministic world -------------------------------------------------------


@dataclass
class ChaosWorld:
    """Fixed PKI + one legitimately signed package, seed-independent."""

    root: CertificateAuthority
    studio: SigningIdentity
    trust_store: TrustStore
    device_key: object
    package_data: bytes
    server: ContentServer


_world_cache: ChaosWorld | None = None


def build_world() -> ChaosWorld:
    """Build (once) the fixed world every chaos run attacks.

    Key generation is the expensive part, so the world is cached at
    module level; attacks never mutate it — they parse fresh copies of
    ``package_data`` and construct their own servers/pipelines.
    """
    global _world_cache
    if _world_cache is not None:
        return _world_cache
    rng = DeterministicRandomSource(b"chaos-world")
    root = CertificateAuthority.create_root("CN=Chaos Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Chaos Studio", root, rng=rng)
    trust_store = TrustStore(roots=[root.certificate])
    # The player's RSA transport key, minted like any other identity
    # (keeps raw-primitive access behind the certs layer).
    device_key = SigningIdentity.create("CN=Chaos Player", root,
                                        rng=rng).key

    manifest = ApplicationManifest("chaos-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_script('player.log("chaos running");')
    prf = PermissionRequestFile("chaos-app", "org.chaos")
    package = AuthoringPipeline(
        studio, recipient_key=device_key.public_key(), rng=rng,
    ).build_package(manifest, permission_file=prf)

    server = ContentServer()
    server.publish(PACKAGE_PATH, package.data)
    _world_cache = ChaosWorld(
        root=root, studio=studio, trust_store=trust_store,
        device_key=device_key, package_data=package.data, server=server,
    )
    return _world_cache


# -- outcomes ----------------------------------------------------------------------


@dataclass
class ChaosOutcome:
    """One attack's verdict."""

    attack: str
    contained: bool
    detail: str

    def __str__(self) -> str:
        status = "contained" if self.contained else "VIOLATION"
        return f"{self.attack}: {status} — {self.detail}"


@dataclass
class ChaosReport:
    """Everything one seeded chaos run produced."""

    seed: int
    iterations: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if not o.contained]

    @property
    def ok(self) -> bool:
        return not self.violations

    def attack_kinds(self) -> list[str]:
        return sorted({o.attack for o in self.outcomes})

    def summary_lines(self, verbose: bool = False) -> list[str]:
        lines = [
            f"chaos seed={self.seed} iterations={self.iterations}: "
            f"{len(self.outcomes)} attack(s) across "
            f"{len(self.attack_kinds())} kind(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for outcome in self.outcomes:
            if verbose or not outcome.contained:
                lines.append(f"  {outcome}")
        return lines


# -- attack generators -------------------------------------------------------------
#
# Each generator takes (world, limits, rng), drives one *real* entry
# point with hostile input, and asserts the containment invariants.
# Raising AssertionError (or any non-ReproError) marks a violation.


def _assert_guard_tripped(guard: ResourceGuard,
                          exc: ResourceLimitExceeded) -> None:
    assert guard.trips, "guard raised without recording the trip"
    assert guard.within_limits(), \
        "guard counters exceeded quota (charge committed before check)"
    assert isinstance(exc, ResourceLimitExceeded)


def attack_deep_nesting(world, limits, rng) -> str:
    """A tree nested far past the depth quota must trip, not recurse."""
    depth = rng.randint(limits.max_element_depth + 1,
                        limits.max_element_depth * 50)
    payload = ("<a>" * depth) + ("</a>" * depth)
    guard = ResourceGuard(limits)
    try:
        parse_element(payload, guard=guard)
    except ResourceLimitExceeded as exc:
        _assert_guard_tripped(guard, exc)
        assert exc.limit_name == "max_element_depth", exc.limit_name
        return f"depth {depth} refused at quota {limits.max_element_depth}"
    raise AssertionError(f"depth {depth} parsed without tripping")


def attack_attribute_flood(world, limits, rng) -> str:
    """One start tag carrying a flood of attributes."""
    count = rng.randint(limits.max_attributes_per_element + 1,
                        limits.max_attributes_per_element * 20)
    attrs = " ".join(f'a{i}="v"' for i in range(count))
    guard = ResourceGuard(limits)
    try:
        parse_element(f"<doc {attrs}/>", guard=guard)
    except ResourceLimitExceeded as exc:
        _assert_guard_tripped(guard, exc)
        assert exc.limit_name == "max_attributes_per_element"
        return f"{count} attributes refused"
    raise AssertionError(f"{count} attributes parsed without tripping")


def attack_giant_text(world, limits, rng) -> str:
    """A single text node past the per-node size quota."""
    size = rng.randint(limits.max_text_bytes + 1,
                       limits.max_text_bytes * 4)
    guard = ResourceGuard(limits)
    try:
        parse_element(f"<doc>{'A' * size}</doc>", guard=guard)
    except ResourceLimitExceeded as exc:
        _assert_guard_tripped(guard, exc)
        assert exc.limit_name in ("max_text_bytes", "max_input_bytes")
        return f"{size}-octet text refused"
    raise AssertionError(f"{size}-octet text parsed without tripping")


def attack_node_flood(world, limits, rng) -> str:
    """Shallow but wide: more sibling elements than the node quota."""
    count = rng.randint(limits.max_node_count + 1,
                        limits.max_node_count * 2)
    payload = "<doc>" + "<i/>" * count + "</doc>"
    guard = ResourceGuard(limits)
    try:
        parse_element(payload, guard=guard)
    except ResourceLimitExceeded as exc:
        _assert_guard_tripped(guard, exc)
        assert exc.limit_name in ("max_node_count", "max_input_bytes")
        return f"{count} sibling nodes refused"
    raise AssertionError(f"{count} nodes parsed without tripping")


def attack_reference_bomb(world, limits, rng) -> str:
    """A signature naming a flood of ds:Reference elements.

    The verifier must refuse it *before* dereferencing and digesting
    each one, and the refusal surfaces as an invalid report, not an
    exception at the caller.
    """
    from repro.dsig import Verifier

    root = parse_element(world.package_data,
                         guard=ResourceGuard.unlimited())
    signature = next(root.iter("Signature", DSIG_NS))
    signed_info = signature.first_child("SignedInfo", DSIG_NS)
    reference = signed_info.first_child("Reference", DSIG_NS)
    clones = rng.randint(limits.max_references_per_signature + 1, 60)
    for _ in range(clones):
        signed_info.append(reference.copy())
    guard = ResourceGuard(limits)
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True, guard=guard)
    report = verifier.verify(signature)
    assert not report.valid, "reference bomb verified as valid"
    assert guard.trips, "verifier accepted the flood without a trip"
    assert guard.trips[0].limit_name == "max_references_per_signature"
    return f"{clones + 1} references refused as invalid report"


def attack_decrypt_bomb(world, limits, rng) -> str:
    """EncryptedData whose plaintext busts the decrypt quota."""
    size = rng.randint(limits.max_decrypt_output_bytes + 1,
                       limits.max_decrypt_output_bytes * 2)
    doc = element("package", None)
    blob = element("blob", None)
    blob.append_text("A" * size)
    doc.append(blob)
    key = SymmetricKey(b"chaos-aes-128-k!")
    enc_rng = DeterministicRandomSource(
        f"chaos-enc-{rng.getrandbits(32)}".encode()
    )
    Encryptor(rng=enc_rng).encrypt_element(blob, key,
                                           key_name="chaos-key")
    guard = ResourceGuard(limits)
    decryptor = Decryptor(keys={"chaos-key": key}, guard=guard)
    try:
        decryptor.decrypt_in_place(doc)
    except ResourceLimitExceeded as exc:
        _assert_guard_tripped(guard, exc)
        assert exc.limit_name == "max_decrypt_output_bytes"
        return f"{size}-octet plaintext refused"
    raise AssertionError(f"{size}-octet plaintext decrypted untripped")


def attack_oversized_frame(world, limits, rng) -> str:
    """Hostile frames on both sides of the wire protocol.

    The server answers an oversized request with a 413 error frame
    (never raises); the client refuses an oversized response with a
    typed error before decoding any part of it.
    """
    size = limits.max_frame_bytes + rng.randint(1, 4096)
    server = ContentServer(limits=limits)
    response = server.handle(b"\x10" + b"A" * size)
    kind, parts = _decode(response)
    assert kind == _RESP_ERR, "oversized frame did not get an error frame"
    assert parts and parts[0].startswith(b"413"), parts
    assert server.request_log[-1] == "OVERSIZED"

    client = DownloadClient(world.server, Channel(), limits=limits)
    try:
        client._parse_response(b"\x20" + b"B" * size)
    except ResourceLimitExceeded as exc:
        assert exc.limit_name == "max_frame_bytes"
        return f"{size}-octet frame: server answered 413, client refused"
    raise AssertionError("client decoded an oversized response frame")


def attack_truncated_frame(world, limits, rng) -> str:
    """PR 1 composition: a TruncateFault cuts the response mid-flight.

    The client must surface a typed NetworkError; the server must
    answer a natively malformed frame with a 400 error frame.
    """
    truncate = TruncateFault(keep_bytes=rng.randint(1, 9),
                             schedule=FaultSchedule.at(1))
    client = DownloadClient(world.server, Channel([truncate]),
                            limits=limits)
    try:
        client.fetch(PACKAGE_PATH, secure=False)
        raise AssertionError("truncated response fetched successfully")
    except NetworkError:
        pass
    assert truncate.fired == 1

    server = ContentServer(limits=limits)
    response = server.handle(b"\x10\x00\x00\x10")   # length field cut short
    kind, parts = _decode(response)
    assert kind == _RESP_ERR and parts[0].startswith(b"400"), parts
    assert server.request_log[-1] == "MALFORMED"
    return "truncated transfer raised typed error; server answered 400"


def attack_malformed_xkms(world, limits, rng) -> str:
    """The trust server must answer garbage with a structured fault."""
    server = TrustServer(limits=limits)
    depth = limits.max_element_depth * 2
    payloads = [
        "this is not XML at all",
        "<xml-but-wrong-root/>",
        ("<a>" * depth) + ("</a>" * depth),
        "<LocateRequest xmlns='urn:wrong:ns'",      # unterminated tag
    ]
    payload = payloads[rng.randrange(len(payloads))]
    response = server.handle_xml(payload)
    result = XKMSResult.from_xml(response)
    assert result.result_major == RESULT_SENDER_FAULT, result.result_major
    assert server.audit_log and \
        server.audit_log[-1].startswith("malformed-request:")
    return f"payload #{payloads.index(payload)} answered with Sender fault"


def attack_package_bomb(world, limits, rng) -> str:
    """A resource bomb at the top of the playback pipeline.

    The pipeline must bar the package with a typed rejection AND put
    the decision on the degradation log under the resource taxonomy.
    """
    if rng.random() < 0.5:
        depth = limits.max_element_depth * 3
        bomb = (("<package>" + "<a>" * depth)
                + ("</a>" * depth + "</package>")).encode()
        shape = f"depth bomb ({depth})"
    else:
        count = limits.max_node_count + 500
        bomb = ("<package>" + "<i/>" * count + "</package>").encode()
        shape = f"node bomb ({count})"
    pipeline = PlaybackPipeline(trust_store=world.trust_store,
                                device_key=world.device_key,
                                limits=limits)
    try:
        pipeline.open_package(bomb)
        raise AssertionError("package bomb opened successfully")
    except ApplicationRejectedError:
        pass
    events = pipeline.degradation.for_component("package")
    assert events, "rejection not recorded on the degradation log"
    assert events[-1].reason == REASON_RESOURCE, events[-1].reason
    return f"{shape} barred and logged as {REASON_RESOURCE}"


def attack_faulty_transfer_legit(world, limits, rng) -> str:
    """The legitimate package over a lossy link (PR 1 adversaries).

    Whatever the seeded drop pattern does, the player either gets the
    trusted application or records a degradation — never a crash.
    """
    drop = DropFault(
        schedule=FaultSchedule.probability(0.4,
                                           seed=rng.getrandbits(32)),
    )
    client = DownloadClient(
        world.server, Channel([drop]),
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.1,
                                 seed=rng.getrandbits(32),
                                 clock=SimulatedClock()),
    )
    player = DiscPlayer(world.trust_store, device_key=world.device_key)
    application = player.download_application(
        client, PACKAGE_PATH, secure=False, optional=True,
    )
    if application is None:
        events = player.degradation.for_component("download")
        assert events, "barred download left no degradation event"
        return f"link dead (drops={drop.fired}): barred and logged"
    assert application.trusted, "package survived transfer untrusted"
    return f"application survived lossy link (drops={drop.fired})"


def attack_deadline_exhaustion(world, limits, rng) -> str:
    """Wall-clock budget on the injected clock trips deterministically."""
    clock = SimulatedClock()
    budget = 0.5
    guard = ResourceGuard(limits.replace(wall_clock_budget_s=budget),
                          clock=clock)
    clock.advance(budget + rng.random() * 4.0)
    doc = parse_element("<doc><a/><b/></doc>")
    try:
        canonicalize(doc, guard=guard)
    except ResourceLimitExceeded as exc:
        _assert_guard_tripped(guard, exc)
        assert exc.limit_name == "wall_clock_budget_s"
        return "deadline trip fired on the simulated clock"
    raise AssertionError("expired deadline did not trip")


#: name -> generator; ISSUE 4 requires at least five kinds.
ATTACKS = {
    "deep-nesting": attack_deep_nesting,
    "attribute-flood": attack_attribute_flood,
    "giant-text": attack_giant_text,
    "node-flood": attack_node_flood,
    "reference-bomb": attack_reference_bomb,
    "decrypt-bomb": attack_decrypt_bomb,
    "oversized-frame": attack_oversized_frame,
    "truncated-frame": attack_truncated_frame,
    "malformed-xkms": attack_malformed_xkms,
    "package-bomb": attack_package_bomb,
    "faulty-transfer-legit": attack_faulty_transfer_legit,
    "deadline-exhaustion": attack_deadline_exhaustion,
}


# -- the harness -------------------------------------------------------------------


def _execute(name: str, thunk) -> ChaosOutcome:
    """Run one attack and classify containment.

    Typed :class:`ReproError`\\ s and clean returns are contained;
    AssertionError (a violated invariant), RecursionError, MemoryError
    and every other escape are violations.
    """
    try:
        detail = thunk()
        return ChaosOutcome(name, True, detail or "handled")
    except ReproError as exc:
        return ChaosOutcome(
            name, True, f"typed {type(exc).__name__}: {exc}"
        )
    except AssertionError as exc:
        return ChaosOutcome(name, False, f"invariant violated: {exc}")
    except BaseException as exc:
        return ChaosOutcome(
            name, False, f"untyped {type(exc).__name__}: {exc}"
        )


def run_chaos(seed: int, *, iterations: int = 1,
              limits: ResourceLimits = CHAOS_LIMITS,
              attacks: dict | None = None) -> ChaosReport:
    """Run every attack *iterations* times under one seeded stream."""
    world = build_world()
    rng = random.Random(seed)
    chosen = attacks if attacks is not None else ATTACKS
    report = ChaosReport(seed=seed, iterations=iterations)
    for _ in range(iterations):
        for name, generator in chosen.items():
            report.outcomes.append(_execute(
                name, lambda: generator(world, limits, rng)
            ))
    return report
