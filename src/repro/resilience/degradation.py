"""Graceful-degradation bookkeeping for the player.

A real CE player must not let one dead server stop the disc: the
failing *component* is barred or downgraded and playback continues.
Every such decision is recorded as a :class:`DegradationEvent` in a
:class:`DegradationLog` so tests (and the player UI) can see exactly
what was lost and why, using a small failure-mode taxonomy (the
``REASON_*`` codes; see DESIGN.md §7).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import (
    ChannelSecurityError, CircuitOpenError, DurableStateError,
    NetworkError, ResourceLimitExceeded, RetryExhaustedError,
    ServiceOverloadError, TimeoutError, VerificationError, XKMSError,
)

# Failure-mode taxonomy (DESIGN.md §7; §9 for resource limits).
REASON_UNREACHABLE = "unreachable"         # transport failed outright
REASON_TIMEOUT = "timeout"                 # answer too late
REASON_RETRY_EXHAUSTED = "retry-exhausted"  # policy gave up
REASON_CIRCUIT_OPEN = "circuit-open"       # breaker short-circuited
REASON_INTEGRITY = "integrity"             # tampering / MAC / digest
REASON_REJECTED = "rejected"               # verification said no
REASON_RESOURCE = "resource-limit"         # quota guard fired
REASON_OVERLOAD = "overload"               # load shed with a busy fault
REASON_RECOVERY = "recovery"               # durable state repaired on open
REASON_ERROR = "error"                     # anything else


def classify_failure(error: BaseException) -> str:
    """Map an exception to its failure-mode taxonomy code."""
    if isinstance(error, DurableStateError):
        return REASON_INTEGRITY
    if isinstance(error, ResourceLimitExceeded):
        return REASON_RESOURCE
    if isinstance(error, ServiceOverloadError):
        return REASON_OVERLOAD
    if isinstance(error, CircuitOpenError):
        return REASON_CIRCUIT_OPEN
    if isinstance(error, RetryExhaustedError):
        return REASON_RETRY_EXHAUSTED
    if isinstance(error, TimeoutError):
        return REASON_TIMEOUT
    if isinstance(error, ChannelSecurityError):
        return REASON_INTEGRITY
    if isinstance(error, VerificationError):
        return REASON_REJECTED
    if isinstance(error, (NetworkError, XKMSError)):
        return REASON_UNREACHABLE
    return REASON_ERROR


@dataclass(frozen=True)
class DegradationEvent:
    """One degradation decision: what was barred/downgraded and why."""

    component: str   # "xkms", "download", "network-api", ...
    resource: str    # key name, path, service name
    reason: str      # a REASON_* taxonomy code
    detail: str = ""

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.component}[{self.resource}] {self.reason}{suffix}"


@dataclass
class DegradationLog:
    """Accumulates degradation events over a playback session."""

    events: list[DegradationEvent] = field(default_factory=list)
    # One log is shared by every component of a playback session;
    # concurrent sessions (batch verify, chaos interleavings) record
    # into it, so appends must not race.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def record(self, component: str, resource: str,
               failure: BaseException | str, detail: str = ""
               ) -> DegradationEvent:
        """Record one event; *failure* is an exception or a reason code."""
        if isinstance(failure, BaseException):
            reason = classify_failure(failure)
            detail = detail or str(failure)
        else:
            reason = failure
        event = DegradationEvent(component, resource, reason, detail)
        with self._lock:
            self.events.append(event)
        return event

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def reasons(self) -> list[str]:
        return [event.reason for event in self.events]

    def barred_resources(self) -> list[str]:
        return [event.resource for event in self.events]

    def for_component(self, component: str) -> list[DegradationEvent]:
        return [event for event in self.events
                if event.component == component]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
