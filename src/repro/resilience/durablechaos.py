"""Crash-recovery chaos: a kill at every filesystem injection point.

The durable layer's contract is exact, so the harness checks it
exactly.  For each scenario — localstorage slots, XKMS registration
state, the trust-store CRL — a deterministic workload of mutations
runs against a seeded :class:`CrashableFilesystem`, first uninterrupted
(the *probe* run, which counts the filesystem's injection points),
then once per injection point with power loss scheduled there.  After
every crash the scenario recovers from the surviving flash image and
the harness asserts:

* **acked-exact**: the recovered state equals precisely the state at
  the last acknowledged commit — acknowledged mutations are durable,
  unacknowledged ones vanish atomically (no torn values, no partial
  batches);
* **idempotent**: recovering a second time changes nothing and has
  nothing left to repair;
* **reported**: whenever recovery repaired a torn tail, the event is
  on the :class:`DegradationLog` under the ``recovery`` taxonomy code;
* **alive**: the recovered store still accepts and persists new
  commits, still enforces its quota, and encrypted slots still
  authenticate and decrypt through the typed storage API.

A violation at injection point *k* under seed *s* replays bit-for-bit
with ``python -m repro.tools chaos --crash --seed s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.certs.authority import CertificateAuthority
from repro.certs.store import TrustStore
from repro.errors import LocalStorageError
from repro.player.localstorage import LocalStorage
from repro.primitives.keys import SymmetricKey
from repro.primitives.random import DeterministicRandomSource
from repro.resilience.crashfs import CrashableFilesystem, SimulatedCrash
from repro.resilience.degradation import REASON_RECOVERY, DegradationLog
from repro.resilience.durable import DurableStore
from repro.xkms.server import TrustServer

LS_DIR = "/flash/localstorage"
XKMS_DIR = "/flash/xkms"
CRL_DIR = "/flash/crl"

LS_QUOTA = 4096
STORAGE_KEY = SymmetricKey(b"durable-chaos-k!")
XKMS_SECRET = b"durable-chaos-registration-secret"


# -- the deterministic world -------------------------------------------------------

_keys_cache: list | None = None


def _binding_keys() -> list:
    """Two RSA public keys for the XKMS scenario (cached: keygen is
    the expensive part, and the keys never vary with the seed)."""
    global _keys_cache
    if _keys_cache is None:
        rng = DeterministicRandomSource(b"durable-chaos-keys")
        _keys_cache = [
            CertificateAuthority.create_root(
                f"CN=Durable Chaos {i}", key_bits=512, rng=rng,
            ).certificate.public_key
            for i in range(2)
        ]
    return _keys_cache


# -- outcome bookkeeping -----------------------------------------------------------


@dataclass
class CrashOutcome:
    """One (scenario, injection point) verdict."""

    scenario: str
    crash_at: int | None     # None = the uninterrupted probe run
    ok: bool
    detail: str

    def __str__(self) -> str:
        where = "probe" if self.crash_at is None else f"op {self.crash_at}"
        status = "ok" if self.ok else "VIOLATION"
        return f"{self.scenario}@{where}: {status} — {self.detail}"


@dataclass
class CrashChaosReport:
    """Everything one seeded crash-chaos run produced."""

    seed: int
    outcomes: list[CrashOutcome] = field(default_factory=list)
    injection_points: dict[str, int] = field(default_factory=dict)

    @property
    def violations(self) -> list[CrashOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_lines(self, verbose: bool = False) -> list[str]:
        points = sum(self.injection_points.values())
        lines = [
            f"crash-chaos seed={self.seed}: {points} injection point(s) "
            f"across {len(self.injection_points)} scenario(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for scenario, count in sorted(self.injection_points.items()):
            lines.append(f"  {scenario}: {count} injection point(s)")
        for outcome in self.outcomes:
            if verbose or not outcome.ok:
                lines.append(f"  {outcome}")
        return lines


class _Tracker:
    """The acknowledged-state oracle a workload maintains.

    Workloads call :meth:`ack` with the expected observable state
    *after* each acknowledged commit returns — so when a scheduled
    crash aborts the workload mid-operation, ``acked`` still holds
    exactly what recovery must reproduce.
    """

    def __init__(self):
        self.acked = None

    def ack(self, state) -> None:
        self.acked = state


# -- scenarios ---------------------------------------------------------------------
#
# Each scenario is (workload, observe, liveness):
#   workload(fs, tracker) — run the mutation sequence, acking after
#       every acknowledged commit; a scheduled crash aborts it with
#       SimulatedCrash.
#   observe(fs, degradation) — recover from the flash image and return
#       the observable state (compared against tracker.acked).
#   liveness(fs) — post-recovery probe: the store must still commit,
#       still enforce its contracts.


def _ls_state(storage: LocalStorage) -> dict:
    return {app: dict(space) for app, space in storage._data.items()
            if space}


def ls_workload(fs: CrashableFilesystem, tracker: _Tracker) -> None:
    rng = DeterministicRandomSource(b"durable-chaos-ls")
    storage = LocalStorage.open_durable(LS_DIR, LS_QUOTA, fs=fs, rng=rng)
    tracker.ack(_ls_state(storage))
    storage.write("game", "hs", b"120")
    tracker.ack(_ls_state(storage))
    storage.write_encrypted("game", "secret", b"top-score",
                            STORAGE_KEY)
    tracker.ack(_ls_state(storage))
    storage.write("menu", "lang", b"en")
    tracker.ack(_ls_state(storage))
    storage.delete("game", "hs")
    tracker.ack(_ls_state(storage))
    storage.compact()
    tracker.ack(_ls_state(storage))
    storage.write("game", "hs", b"200")
    tracker.ack(_ls_state(storage))
    storage.wipe("menu")
    tracker.ack(_ls_state(storage))


def ls_observe(fs: CrashableFilesystem,
               degradation: DegradationLog) -> dict:
    storage = LocalStorage.open_durable(LS_DIR, LS_QUOTA, fs=fs,
                                        degradation=degradation)
    state = _ls_state(storage)
    # Encrypted-slot framing must hold post-recovery: a recovered slot
    # authenticates and decrypts cleanly — a torn blob would have been
    # truncated away with its uncommitted batch, never replayed.
    if state.get("game", {}).get("secret") is not None:
        assert storage.read_encrypted(
            "game", "secret", STORAGE_KEY
        ) == b"top-score", "recovered encrypted slot corrupted"
    for app in state:
        assert storage.used_bytes(app) <= LS_QUOTA, \
            "recovered state exceeds the quota"
    return state


def ls_liveness(fs: CrashableFilesystem) -> None:
    storage = LocalStorage.open_durable(LS_DIR, LS_QUOTA, fs=fs)
    storage.write("probe", "alive", b"yes")
    try:
        storage.write("probe", "bomb", b"A" * (LS_QUOTA + 1))
        raise AssertionError("post-recovery quota not enforced")
    except LocalStorageError:
        pass
    reopened = LocalStorage.open_durable(LS_DIR, LS_QUOTA, fs=fs)
    assert reopened.read("probe", "alive") == b"yes", \
        "post-recovery commit did not persist"
    assert "bomb" not in reopened.keys("probe"), \
        "over-quota write persisted"


def xkms_state(server: TrustServer) -> dict:
    return {name: binding.status
            for name, binding in server._bindings.items()}


def _xkms_server(fs: CrashableFilesystem,
                 degradation: DegradationLog | None = None) -> TrustServer:
    server = TrustServer(registration_secrets={"": XKMS_SECRET})
    server.attach_durable(DurableStore(XKMS_DIR, fs=fs,
                                       degradation=degradation))
    return server


def xkms_workload(fs: CrashableFilesystem, tracker: _Tracker) -> None:
    key_a, key_b = _binding_keys()
    server = _xkms_server(fs)
    tracker.ack(xkms_state(server))
    server.register_binding("disc-signing", key_a)
    tracker.ack(xkms_state(server))
    server.register_binding("app-update", key_b)
    tracker.ack(xkms_state(server))
    server.revoke_binding("disc-signing")
    tracker.ack(xkms_state(server))
    server._durable.compact()
    tracker.ack(xkms_state(server))
    server.register_binding("disc-signing", key_a)   # re-key after revoke
    tracker.ack(xkms_state(server))


def xkms_observe(fs: CrashableFilesystem,
                 degradation: DegradationLog) -> dict:
    return xkms_state(_xkms_server(fs, degradation))


def xkms_liveness(fs: CrashableFilesystem) -> None:
    key_a, _ = _binding_keys()
    server = _xkms_server(fs)
    server.register_binding("liveness-probe", key_a)
    reopened = _xkms_server(fs)
    binding = reopened.binding("liveness-probe")
    assert binding is not None, "post-recovery registration lost"


def _crl_store(fs: CrashableFilesystem,
               degradation: DegradationLog | None = None) -> TrustStore:
    store = TrustStore()
    store.attach_durable(DurableStore(CRL_DIR, fs=fs,
                                      degradation=degradation))
    return store


def crl_workload(fs: CrashableFilesystem, tracker: _Tracker) -> None:
    store = _crl_store(fs)
    tracker.ack(frozenset(store.crl.revoked))
    store.crl.revoke_entry("CN=Compromised Studio", 11)
    tracker.ack(frozenset(store.crl.revoked))
    store.crl.revoke_entry("CN=Compromised Studio", 12)
    tracker.ack(frozenset(store.crl.revoked))
    store.crl._durable.compact()
    tracker.ack(frozenset(store.crl.revoked))
    store.crl.revoke_entry("CN=Leaked Device Key", 3)
    tracker.ack(frozenset(store.crl.revoked))


def crl_observe(fs: CrashableFilesystem,
                degradation: DegradationLog) -> frozenset:
    return frozenset(_crl_store(fs, degradation).crl.revoked)


def crl_liveness(fs: CrashableFilesystem) -> None:
    store = _crl_store(fs)
    store.crl.revoke_entry("CN=Liveness Probe", 99)
    reopened = _crl_store(fs)
    assert ("CN=Liveness Probe", 99) in reopened.crl.revoked, \
        "post-recovery revocation lost"


SCENARIOS = {
    "localstorage": (ls_workload, ls_observe, ls_liveness),
    "xkms-bindings": (xkms_workload, xkms_observe, xkms_liveness),
    "crl": (crl_workload, crl_observe, crl_liveness),
}


# -- the harness -------------------------------------------------------------------


def _check_recovery(scenario: str, crash_at: int | None,
                    fs: CrashableFilesystem, expected, observe,
                    liveness) -> CrashOutcome:
    """Recover twice, assert the four invariants, classify."""
    try:
        first_log = DegradationLog()
        observed = observe(fs, first_log)
        assert observed == expected, (
            "recovered state differs from the last acknowledged "
            "commit"
        )
        repaired = [e for e in first_log.events
                    if e.reason == REASON_RECOVERY]
        second_log = DegradationLog()
        again = observe(fs, second_log)
        assert again == observed, "recovery is not idempotent"
        assert not second_log.degraded, \
            "second recovery still had something to repair"
        liveness(fs)
        detail = "recovered clean" if not repaired else \
            f"repaired ({repaired[0].detail})"
        return CrashOutcome(scenario, crash_at, True, detail)
    except AssertionError as exc:
        return CrashOutcome(scenario, crash_at, False,
                            f"invariant violated: {exc}")
    except BaseException as exc:
        return CrashOutcome(
            scenario, crash_at, False,
            f"recovery raised {type(exc).__name__}: {exc}",
        )


def run_crash_chaos(seed: int, *,
                    scenarios: dict | None = None) -> CrashChaosReport:
    """Kill each scenario at every injection point; verify recovery."""
    chosen = scenarios if scenarios is not None else SCENARIOS
    report = CrashChaosReport(seed=seed)
    for name, (workload, observe, liveness) in chosen.items():
        # Probe run: no crash, count the injection points.
        fs = CrashableFilesystem(seed=seed)
        tracker = _Tracker()
        try:
            workload(fs, tracker)
        except BaseException as exc:
            report.outcomes.append(CrashOutcome(
                name, None, False,
                f"probe workload raised {type(exc).__name__}: {exc}",
            ))
            continue
        points = fs.op_count
        report.injection_points[name] = points
        report.outcomes.append(_check_recovery(
            name, None, fs, tracker.acked, observe, liveness,
        ))
        # One run per injection point, power loss scheduled there.
        for crash_at in range(points):
            fs = CrashableFilesystem(seed=seed, crash_at=crash_at)
            tracker = _Tracker()
            try:
                workload(fs, tracker)
            except SimulatedCrash:
                fs.crash()
            except BaseException as exc:
                report.outcomes.append(CrashOutcome(
                    name, crash_at, False,
                    f"workload raised {type(exc).__name__}: {exc}",
                ))
                continue
            report.outcomes.append(_check_recovery(
                name, crash_at, fs, tracker.acked, observe, liveness,
            ))
    return report
