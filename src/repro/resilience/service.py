"""Overload protection for the async service stack (DESIGN §14).

The paper's deployment shape — many players hitting one XKMS/license
service — fails in practice not by returning wrong answers but by
falling over under load.  This module is the explicit overload model
wrapped around every async handler:

* :class:`Deadline` — a per-request budget as an *absolute* instant on
  the injected clock, carried in the frame header and checked at every
  await point.  Client and server share the clock, so propagation is a
  number, not a negotiation.
* :class:`AdmissionController` — per-tenant bulkheads (concurrent
  slots) with bounded FIFO wait queues.  A full queue sheds *now*;
  nobody waits on a line that cannot be served.
* :class:`AIMDLimiter` — an adaptive global concurrency limit:
  additive increase while observed latency meets the target,
  multiplicative decrease when it does not (the TCP congestion-control
  shape applied to a request pipeline).
* :class:`OverloadShield` — the composition, in rejection-cheapness
  order: deadline → admission → limiter → handler.  Every shed raises
  a typed :class:`~repro.errors.ServiceOverloadError` (or
  :class:`~repro.errors.TimeoutError`) which the transport answers
  with a *structured* busy fault — never a silent drop — and records
  on the degradation log.

All state here is event-loop-confined: one loop owns a shield and its
controllers, so (unlike the cross-thread shared surface of DESIGN §13)
mutations between await points need no locks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import ServiceOverloadError, TimeoutError
from repro.resilience.degradation import DegradationLog, classify_failure
from repro.resilience.vclock import NO_DEADLINE


@dataclass(frozen=True)
class Deadline:
    """An absolute give-up instant on the shared injected clock."""

    at: float
    clock: object

    @classmethod
    def after(cls, clock, seconds: float) -> "Deadline":
        return cls(at=clock.now() + seconds, clock=clock)

    @classmethod
    def none(cls, clock) -> "Deadline":
        return cls(at=NO_DEADLINE, clock=clock)

    def remaining(self) -> float:
        return self.at - self.clock.now()

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self.at

    def check(self, what: str = "request") -> None:
        """Raise a typed :class:`TimeoutError` once the budget is gone."""
        if self.expired:
            raise TimeoutError(
                f"{what}: deadline exceeded "
                f"(t={self.clock.now():g}s past {self.at:g}s)",
                elapsed=self.clock.now(),
            )


@dataclass(frozen=True)
class TenantPolicy:
    """Admission envelope for one tenant class.

    ``max_concurrent`` is the bulkhead (slots actually executing);
    ``max_queued`` bounds the FIFO behind it.  Beyond both, requests
    shed immediately.
    """

    max_concurrent: int = 8
    max_queued: int = 16


class _TenantState:
    __slots__ = ("active", "waiters")

    def __init__(self):
        self.active = 0
        self.waiters: list = []


@dataclass
class AdmissionStats:
    admitted: int = 0
    queued: int = 0
    shed_queue_full: int = 0
    queue_timeouts: int = 0


class AdmissionController:
    """Per-tenant bulkheads with bounded wait queues."""

    def __init__(self, clock, policy: TenantPolicy | None = None,
                 per_tenant: dict | None = None):
        self._clock = clock
        self._policy = policy or TenantPolicy()
        self._per_tenant = dict(per_tenant or {})
        self._tenants: dict = {}
        self.stats = AdmissionStats()

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._per_tenant.get(tenant, self._policy)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    async def admit(self, tenant: str, deadline: Deadline) -> None:
        """Take a slot for *tenant*, waiting in line when the bulkhead
        is full.

        Raises:
            ServiceOverloadError: the wait queue is also full.
            TimeoutError: the deadline passed while queued (the slot is
                relinquished; nobody inherits a dead request's place).
        """
        policy = self.policy_for(tenant)
        state = self._state(tenant)
        if state.active < policy.max_concurrent:
            state.active += 1
            self.stats.admitted += 1
            return
        live = [w for w in state.waiters if not w.done()]
        if len(live) >= policy.max_queued:
            self.stats.shed_queue_full += 1
            raise ServiceOverloadError(
                f"admission queue full for tenant {tenant!r} "
                f"({policy.max_concurrent} active, "
                f"{policy.max_queued} queued)",
                reason="queue-full", tenant=tenant,
            )
        waiter = asyncio.get_running_loop().create_future()
        state.waiters.append(waiter)
        self.stats.queued += 1
        self._clock.bump()
        try:
            await self._clock.wait_until(waiter, deadline.at)
        except TimeoutError:
            self.stats.queue_timeouts += 1
            if not waiter.done():
                waiter.cancel()
            elif not self._wake_next(state):
                # The slot arrived in the same instant the deadline
                # fired and nobody else is in line: give it back.
                state.active = max(0, state.active - 1)
            raise
        self.stats.admitted += 1

    def release(self, tenant: str) -> None:
        state = self._state(tenant)
        if not self._wake_next(state):
            state.active = max(0, state.active - 1)

    def _wake_next(self, state: _TenantState) -> bool:
        """Pass the released slot to the first live waiter."""
        while state.waiters:
            waiter = state.waiters.pop(0)
            if not waiter.done():
                waiter.set_result(None)
                self._clock.bump()
                return True
        return False

    def active(self, tenant: str) -> int:
        return self._state(tenant).active


@dataclass
class AIMDLimiter:
    """Adaptive concurrency limit: AIMD on observed latency.

    Completions under ``target_latency_s`` grow the limit additively
    (``increase / limit`` per completion ≈ +1 per limit-worth of good
    requests); a completion over target cuts it multiplicatively by
    ``backoff``.  The limit floats in ``[min_limit, max_limit]``.
    """

    target_latency_s: float = 0.5
    initial_limit: float = 16.0
    min_limit: float = 1.0
    max_limit: float = 1024.0
    increase: float = 1.0
    backoff: float = 0.5
    limit: float = field(init=False)
    inflight: int = field(init=False, default=0)
    rejections: int = field(init=False, default=0)
    decreases: int = field(init=False, default=0)

    def __post_init__(self):
        self.limit = float(self.initial_limit)

    def try_acquire(self) -> bool:
        if self.inflight >= int(self.limit):
            self.rejections += 1
            return False
        self.inflight += 1
        return True

    def release(self, latency_s: float) -> None:
        self.inflight = max(0, self.inflight - 1)
        if latency_s > self.target_latency_s:
            self.limit = max(self.min_limit, self.limit * self.backoff)
            self.decreases += 1
        else:
            self.limit = min(self.max_limit,
                             self.limit + self.increase / max(
                                 self.limit, 1.0))


@dataclass
class ShieldStats:
    """Outcome accounting the load harness and the gates read."""

    completed: int = 0
    shed_deadline: int = 0
    shed_queue_full: int = 0
    shed_limiter: int = 0
    shed_queue_timeout: int = 0
    late_completions: int = 0

    @property
    def sheds(self) -> int:
        return (self.shed_deadline + self.shed_queue_full +
                self.shed_limiter + self.shed_queue_timeout)


class OverloadShield:
    """Deadline → admission → limiter → handler, cheapest check first."""

    def __init__(self, clock, *,
                 admission: AdmissionController | None = None,
                 limiter: AIMDLimiter | None = None,
                 degradation: DegradationLog | None = None,
                 component: str = "service"):
        self._clock = clock
        self.admission = admission or AdmissionController(clock)
        self.limiter = limiter
        self.degradation = degradation
        self.component = component
        self.stats = ShieldStats()

    def _degrade(self, tenant: str, error: BaseException) -> None:
        if self.degradation is not None:
            self.degradation.record(
                self.component, tenant, classify_failure(error),
                detail=type(error).__name__,
            )

    async def run(self, tenant: str, deadline: Deadline, operation):
        """Run async *operation* under the full overload model.

        Every rejection path raises typed: the transport above answers
        each with a structured busy fault, so a shed is always an
        *answer*, never a dropped request.
        """
        try:
            deadline.check("admission")
        except TimeoutError:
            self.stats.shed_deadline += 1
            self._degrade(tenant, TimeoutError("deadline"))
            raise
        try:
            await self.admission.admit(tenant, deadline)
        except ServiceOverloadError as exc:
            self.stats.shed_queue_full += 1
            self._degrade(tenant, exc)
            raise
        except TimeoutError as exc:
            self.stats.shed_queue_timeout += 1
            self._degrade(tenant, exc)
            raise
        try:
            if self.limiter is not None and \
                    not self.limiter.try_acquire():
                error = ServiceOverloadError(
                    f"concurrency limit {self.limiter.limit:g} "
                    f"reached ({self.limiter.inflight} in flight)",
                    reason="limiter", tenant=tenant,
                )
                self.stats.shed_limiter += 1
                self._degrade(tenant, error)
                raise error
            started = self._clock.now()
            try:
                result = await operation()
            finally:
                if self.limiter is not None:
                    self.limiter.release(self._clock.now() - started)
        finally:
            self.admission.release(tenant)
        self.stats.completed += 1
        if deadline.expired:
            # The answer is late but still an answer; the client's own
            # deadline decides whether anyone is listening.
            self.stats.late_completions += 1
        return result
