"""Crash-safe durable security state: journal, snapshot, recovery.

The paper's platform is a consumer player whose flash carries security
state across power cycles — downloaded licenses, XKMS registrations
and revocations, encrypted high-scores.  This module is the one place
that state touches persistent media, with the guarantees a security
store needs:

* **Write-ahead journal** (:class:`Journal`): an append-only file of
  length-prefixed frames, each carrying a record sequence number and a
  SHA-256 (or, with an integrity key, HMAC-SHA-256) checksum.  Records
  buffer in memory until :meth:`Journal.commit`, which appends every
  buffered frame plus a *commit marker* in one write and fsyncs before
  returning — the return of ``commit()`` is the acknowledgement.
* **Recovery protocol**: on open, frames are scanned in order.  An
  *incomplete* frame at the tail is a torn write (power loss mid-
  flush): everything from the last commit marker on is truncated away
  and the store falls back to the last acknowledged state.  A
  *complete* frame with a bad checksum is interior tampering and fails
  hard with a typed :class:`~repro.errors.DurableStateError` — flash
  that lies about acknowledged history must never be silently
  repaired.  Data frames after the last commit marker were never
  acknowledged and are dropped, so unacknowledged mutations vanish
  atomically.  Recovery is idempotent: running it again on its own
  output is a no-op.
* **Snapshot + compaction** (:meth:`DurableStore.compact`): the full
  state is written to a temporary file, fsynced, atomically renamed
  over the snapshot, and the directory synced *before* the journal is
  reset the same way — a crash between the two steps recovers cleanly
  because journal records up to the snapshot's sequence number are
  skipped on replay.

Everything goes through a :class:`~repro.resilience.crashfs.Filesystem`
so the identical code path runs against the real flash and against the
seeded :class:`~repro.resilience.crashfs.CrashableFilesystem` power-
loss adversary (see :mod:`repro.resilience.durablechaos`).

Persistence modules elsewhere in the repo must not write files with a
bare ``open(..., "w"/"wb")`` — the AST linter's LIN108 rule points
them at :func:`atomic_write` here instead.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.errors import DurableStateError
from repro.primitives.hmac import constant_time_equal, hmac_sha256
from repro.primitives.provider import CryptoProvider, get_provider
from repro.resilience.crashfs import Filesystem, OsFilesystem
from repro.resilience.degradation import DegradationLog, REASON_RECOVERY

JOURNAL_MAGIC = b"RJNL1\n"
SNAPSHOT_MAGIC = b"RSNP1\n"

FRAME_DATA = 0x01
FRAME_COMMIT = 0x02

_DIGEST_BYTES = 32
_LEN = struct.Struct("<I")
_SEQ = struct.Struct("<Q")
#: hard ceiling on one frame's payload — a corrupt length prefix must
#: not make the scanner allocate gigabytes before the checksum fails.
MAX_FRAME_PAYLOAD = 16 * 1024 * 1024


def atomic_write(path: str, data: bytes, *,
                 fs: Filesystem | None = None) -> None:
    """Write *data* to *path* with write-temp/fsync/rename/dirsync.

    The only sanctioned way for persistence modules outside this layer
    to put bytes on disk (LIN108): a crash at any point leaves either
    the old file or the new one, never a torn mixture.
    """
    fs = fs or OsFilesystem()
    temp = path + ".tmp"
    fs.write(temp, data)
    fs.fsync(temp)
    fs.replace(temp, path)
    fs.fsync_dir(os.path.dirname(path) or ".")


@dataclass
class ScanResult:
    """Outcome of a read-only journal scan."""

    #: acknowledged ``(seq, body)`` records, in order.
    committed: list[tuple[int, bytes]] = field(default_factory=list)
    #: byte offset of the last commit marker's end (0 = no journal).
    keep_bytes: int = 0
    #: complete data records past the last commit marker (never acked).
    dropped_records: int = 0
    #: highest sequence number seen (data or commit frames).
    max_seq: int = 0
    #: the file is shorter than its own magic header (torn creation).
    torn_header: bool = False


@dataclass
class RecoveryReport:
    """What one journal recovery found and did."""

    snapshot_seq: int = 0
    records_replayed: int = 0
    truncated_bytes: int = 0
    dropped_records: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing had to be repaired (no torn tail, no
        unacknowledged records discarded)."""
        return self.truncated_bytes == 0 and self.dropped_records == 0


class Journal:
    """Append-only write-ahead journal of checksummed frames.

    Args:
        fs: filesystem the journal lives on.
        path: journal file path.
        integrity_key: when given, frames are HMAC-SHA-256'd under this
            key instead of plain SHA-256 — detects *substitution* of
            the whole journal, not just corruption.
        provider: crypto provider for the digest primitive.
    """

    def __init__(self, fs: Filesystem, path: str, *,
                 integrity_key: bytes | None = None,
                 provider: CryptoProvider | None = None):
        self._fs = fs
        self._path = path
        self._key = integrity_key
        self._provider = provider or get_provider()
        self._buffered: list[tuple[int, bytes]] = []
        self._next_seq = 1
        self._committed_seq = 0

    # -- frame primitives --------------------------------------------------------

    def _checksum(self, payload: bytes) -> bytes:
        if self._key is not None:
            return hmac_sha256(self._key, JOURNAL_MAGIC + payload)
        return self._provider.digest("sha256", JOURNAL_MAGIC + payload)

    def _frame(self, frame_type: int, seq: int, body: bytes) -> bytes:
        payload = bytes([frame_type]) + _SEQ.pack(seq) + body
        return _LEN.pack(len(payload)) + payload + self._checksum(payload)

    # -- writing -----------------------------------------------------------------

    @property
    def committed_seq(self) -> int:
        """Sequence number of the last acknowledged record."""
        return self._committed_seq

    @property
    def pending(self) -> int:
        """Records appended but not yet committed."""
        return len(self._buffered)

    def append(self, body: bytes) -> int:
        """Buffer one record; returns its sequence number.  The record
        is NOT durable until :meth:`commit` returns."""
        seq = self._next_seq
        self._next_seq += 1
        self._buffered.append((seq, body))
        return seq

    def commit(self) -> int:
        """Make every buffered record durable; returns the last
        acknowledged sequence number.

        All buffered frames plus one commit marker go out in a single
        append, then the file is fsynced.  Only when the fsync returns
        is the batch acknowledged — a crash anywhere earlier leaves at
        most a torn prefix that recovery truncates away.
        """
        if not self._buffered:
            return self._committed_seq
        frames = [self._frame(FRAME_DATA, seq, body)
                  for seq, body in self._buffered]
        marker_seq = self._next_seq
        self._next_seq += 1
        frames.append(self._frame(FRAME_COMMIT, marker_seq, b""))
        self._ensure_header()
        self._fs.append(self._path, b"".join(frames))
        self._fs.fsync(self._path)
        self._committed_seq = self._buffered[-1][0]
        self._buffered.clear()
        return self._committed_seq

    def _ensure_header(self) -> None:
        if not self._fs.exists(self._path):
            self._fs.write(self._path, JOURNAL_MAGIC)
            self._fs.fsync(self._path)

    # -- scanning / recovery -----------------------------------------------------

    def scan(self) -> ScanResult:
        """Parse the journal without mutating it.

        Distinguishes the two failure shapes the durability model
        cares about: an *incomplete* frame (or header) at the tail is
        a torn write and merely marks where recovery should truncate,
        while a *complete* frame whose checksum fails — or a structural
        impossibility like a sequence regression — is interior
        tampering and raises.

        Raises:
            DurableStateError: on a foreign header, a complete frame
                whose checksum does not verify, an absurd length
                prefix, an unknown frame type, or a sequence-number
                regression.
        """
        result = ScanResult()
        if not self._fs.exists(self._path):
            return result
        data = self._fs.read(self._path)
        if not data:
            return result
        if not data.startswith(JOURNAL_MAGIC):
            if JOURNAL_MAGIC.startswith(data):
                # Power loss while the header itself was being written.
                result.torn_header = True
                return result
            raise DurableStateError(
                f"journal {self._path!r} has a foreign header", kind="format",
            )
        offset = len(JOURNAL_MAGIC)
        committed = result.committed
        uncommitted: list[tuple[int, bytes]] = []
        keep = offset
        last_seq = 0
        while offset < len(data):
            frame_start = offset
            if frame_start + _LEN.size > len(data):
                break  # torn length prefix
            (length,) = _LEN.unpack_from(data, frame_start)
            if length > MAX_FRAME_PAYLOAD + _SEQ.size + 1:
                raise DurableStateError(
                    f"journal {self._path!r}: frame at offset "
                    f"{frame_start} claims an absurd length", kind="tamper",
                )
            end = frame_start + _LEN.size + length + _DIGEST_BYTES
            if end > len(data):
                break  # torn frame body
            payload = data[frame_start + _LEN.size:end - _DIGEST_BYTES]
            digest = data[end - _DIGEST_BYTES:end]
            if not constant_time_equal(digest, self._checksum(payload)):
                raise DurableStateError(
                    f"journal {self._path!r}: checksum mismatch on a "
                    f"complete frame at offset {frame_start}",
                    kind="tamper",
                )
            if len(payload) < 1 + _SEQ.size:
                raise DurableStateError(
                    f"journal {self._path!r}: undersized frame at "
                    f"offset {frame_start}", kind="tamper",
                )
            frame_type = payload[0]
            (seq,) = _SEQ.unpack_from(payload, 1)
            if seq <= last_seq:
                raise DurableStateError(
                    f"journal {self._path!r}: sequence regression at "
                    f"offset {frame_start}", kind="tamper",
                )
            last_seq = seq
            result.max_seq = seq
            body = payload[1 + _SEQ.size:]
            if frame_type == FRAME_COMMIT:
                committed.extend(uncommitted)
                uncommitted.clear()
                keep = end
            elif frame_type == FRAME_DATA:
                uncommitted.append((seq, body))
            else:
                raise DurableStateError(
                    f"journal {self._path!r}: unknown frame type "
                    f"{frame_type} at offset {frame_start}", kind="tamper",
                )
            offset = end
        result.keep_bytes = keep
        result.dropped_records = len(uncommitted)
        return result

    def recover(self) -> tuple[list[tuple[int, bytes]], RecoveryReport]:
        """Scan, truncate any torn/unacknowledged tail, and return the
        acknowledged records plus a :class:`RecoveryReport`."""
        scan = self.scan()
        report = RecoveryReport(dropped_records=scan.dropped_records)
        size = len(self._fs.read(self._path)) \
            if self._fs.exists(self._path) else 0
        if scan.torn_header:
            report.truncated_bytes = size
            self._fs.write(self._path, JOURNAL_MAGIC)
            self._fs.fsync(self._path)
        elif scan.keep_bytes and size > scan.keep_bytes:
            report.truncated_bytes = size - scan.keep_bytes
            self._fs.truncate(self._path, scan.keep_bytes)
            self._fs.fsync(self._path)
        committed = scan.committed
        self._committed_seq = committed[-1][0] if committed else 0
        self._next_seq = scan.max_seq + 1
        return committed, report

    def ensure_seq_floor(self, seq: int) -> None:
        """Adopt an externally recorded sequence floor — the snapshot's
        applied sequence number.  A journal reset by compaction starts
        empty, so after the *next* reopen its own scan knows nothing
        about the numbers the snapshot already consumed; without the
        floor, fresh records would reuse them and be skipped on replay
        as already-snapshotted."""
        if self._next_seq <= seq:
            self._next_seq = seq + 1
        if self._committed_seq < seq:
            self._committed_seq = seq

    def reset(self, next_seq: int) -> None:
        """Atomically replace the journal with an empty one (used by
        compaction, *after* the snapshot is durable)."""
        temp = self._path + ".new"
        self._fs.write(temp, JOURNAL_MAGIC)
        self._fs.fsync(temp)
        self._fs.replace(temp, self._path)
        self._fs.fsync_dir(os.path.dirname(self._path) or ".")
        self._next_seq = next_seq
        self._committed_seq = next_seq - 1
        self._buffered.clear()


# -- the key/value store on top ----------------------------------------------------

_OP_SET = 0x53     # "S"
_OP_DELETE = 0x44  # "D"
_OP_WIPE = 0x57    # "W"


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return _LEN.pack(len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    return data[offset:offset + length].decode("utf-8"), offset + length


def encode_op(kind: int, namespace: str, key: str = "",
              value: bytes = b"") -> bytes:
    """Serialize one store mutation as a journal record body."""
    return (bytes([kind]) + _pack_str(namespace) + _pack_str(key)
            + _LEN.pack(len(value)) + value)


def decode_op(body: bytes) -> tuple[int, str, str, bytes]:
    """Inverse of :func:`encode_op`; raises on malformed records."""
    try:
        kind = body[0]
        namespace, offset = _unpack_str(body, 1)
        key, offset = _unpack_str(body, offset)
        (length,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        value = body[offset:offset + length]
        if len(value) != length or kind not in (_OP_SET, _OP_DELETE,
                                                _OP_WIPE):
            raise DurableStateError(
                "journal record does not decode as a store operation",
                kind="tamper",
            )
    except (IndexError, struct.error):
        raise DurableStateError(
            "journal record does not decode as a store operation",
            kind="tamper",
        ) from None
    return kind, namespace, key, value


@dataclass
class DurableInspection:
    """Read-only summary of a durable directory (the CLI's view)."""

    directory: str
    snapshot_seq: int
    committed_records: int
    journal_bytes: int
    tail_torn_bytes: int
    tail_uncommitted_records: int
    namespaces: dict[str, int] = field(default_factory=dict)

    @property
    def clean_tail(self) -> bool:
        return (self.tail_torn_bytes == 0
                and self.tail_uncommitted_records == 0)


class DurableStore:
    """Namespaced key/value store with journaled, acknowledged commits.

    The on-disk layout is two files in *directory*:

    * ``snapshot.rsn`` — the compacted state at some sequence number;
    * ``journal.rjl``  — checksummed frames for every mutation since.

    Mutations (:meth:`set` / :meth:`delete` / :meth:`wipe`) stage both
    a journal record and an in-memory overlay; :meth:`commit` makes
    them durable and visible in one atomic step.  Opening the store
    runs recovery; the outcome is available as :attr:`recovery`, and
    anything recovery had to repair is surfaced on the supplied
    :class:`~repro.resilience.degradation.DegradationLog` under the
    ``recovery`` taxonomy code.
    """

    JOURNAL_NAME = "journal.rjl"
    SNAPSHOT_NAME = "snapshot.rsn"

    def __init__(self, directory: str, *,
                 fs: Filesystem | None = None,
                 integrity_key: bytes | None = None,
                 provider: CryptoProvider | None = None,
                 degradation: DegradationLog | None = None):
        self._fs = fs or OsFilesystem()
        self._directory = directory.rstrip("/") or "."
        self._key = integrity_key
        self._provider = provider or get_provider()
        self._degradation = degradation
        self._fs.makedirs(self._directory)
        self._journal = Journal(
            self._fs, self._join(self.JOURNAL_NAME),
            integrity_key=integrity_key, provider=self._provider,
        )
        self._state: dict[str, dict[str, bytes]] = {}
        self._staged: list[tuple[int, str, str, bytes]] = []
        self.recovery = self._recover()

    def _join(self, name: str) -> str:
        return f"{self._directory}/{name}"

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def committed_seq(self) -> int:
        return self._journal.committed_seq

    # -- recovery ----------------------------------------------------------------

    def _snapshot_checksum(self, payload: bytes) -> bytes:
        if self._key is not None:
            return hmac_sha256(self._key, SNAPSHOT_MAGIC + payload)
        return self._provider.digest("sha256", SNAPSHOT_MAGIC + payload)

    def _load_snapshot(self) -> int:
        path = self._join(self.SNAPSHOT_NAME)
        if not self._fs.exists(path):
            return 0
        data = self._fs.read(path)
        if not data.startswith(SNAPSHOT_MAGIC) \
                or len(data) < len(SNAPSHOT_MAGIC) + _DIGEST_BYTES:
            raise DurableStateError(
                f"snapshot {path!r} has a foreign header", kind="format",
            )
        payload = data[len(SNAPSHOT_MAGIC):-_DIGEST_BYTES]
        digest = data[-_DIGEST_BYTES:]
        if not constant_time_equal(digest,
                                   self._snapshot_checksum(payload)):
            raise DurableStateError(
                f"snapshot {path!r}: checksum mismatch — snapshots are "
                "written atomically, so this is tampering, not a torn "
                "write", kind="tamper",
            )
        (applied_seq,) = _SEQ.unpack_from(payload, 0)
        offset = _SEQ.size
        (entries,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        for _ in range(entries):
            namespace, offset = _unpack_str(payload, offset)
            key, offset = _unpack_str(payload, offset)
            (length,) = _LEN.unpack_from(payload, offset)
            offset += _LEN.size
            value = payload[offset:offset + length]
            offset += length
            self._state.setdefault(namespace, {})[key] = value
        return applied_seq

    def _recover(self) -> RecoveryReport:
        snapshot_seq = self._load_snapshot()
        records, report = self._journal.recover()
        self._journal.ensure_seq_floor(snapshot_seq)
        report.snapshot_seq = snapshot_seq
        for seq, body in records:
            if seq <= snapshot_seq:
                continue  # already folded into the snapshot
            self._apply(*decode_op(body))
            report.records_replayed += 1
        if not report.clean and self._degradation is not None:
            self._degradation.record(
                "durable", self._directory, REASON_RECOVERY,
                detail=f"truncated {report.truncated_bytes} torn byte(s), "
                       f"dropped {report.dropped_records} "
                       f"unacknowledged record(s)",
            )
        return report

    def _apply(self, kind: int, namespace: str, key: str,
               value: bytes) -> None:
        if kind == _OP_SET:
            self._state.setdefault(namespace, {})[key] = value
        elif kind == _OP_DELETE:
            self._state.get(namespace, {}).pop(key, None)
        elif kind == _OP_WIPE:
            self._state.pop(namespace, None)

    # -- reads (committed state only) --------------------------------------------

    def get(self, namespace: str, key: str,
            default: bytes | None = None) -> bytes | None:
        return self._state.get(namespace, {}).get(key, default)

    def keys(self, namespace: str) -> list[str]:
        return sorted(self._state.get(namespace, {}))

    def items(self, namespace: str) -> list[tuple[str, bytes]]:
        return sorted(self._state.get(namespace, {}).items())

    def namespaces(self) -> list[str]:
        return sorted(ns for ns, space in self._state.items() if space)

    # -- mutations ---------------------------------------------------------------

    def set(self, namespace: str, key: str, value: bytes) -> None:
        self._stage(_OP_SET, namespace, key, bytes(value))

    def delete(self, namespace: str, key: str) -> None:
        self._stage(_OP_DELETE, namespace, key, b"")

    def wipe(self, namespace: str) -> None:
        self._stage(_OP_WIPE, namespace, "", b"")

    def _stage(self, kind: int, namespace: str, key: str,
               value: bytes) -> None:
        self._journal.append(encode_op(kind, namespace, key, value))
        self._staged.append((kind, namespace, key, value))

    def commit(self) -> int:
        """Make every staged mutation durable; the return *is* the
        acknowledgement (the last committed sequence number)."""
        seq = self._journal.commit()
        for op in self._staged:
            self._apply(*op)
        self._staged.clear()
        return seq

    # -- snapshot / compaction ---------------------------------------------------

    def _snapshot_bytes(self, applied_seq: int) -> bytes:
        entries: list[bytes] = []
        count = 0
        for namespace in sorted(self._state):
            for key, value in sorted(self._state[namespace].items()):
                entries.append(_pack_str(namespace) + _pack_str(key)
                               + _LEN.pack(len(value)) + value)
                count += 1
        payload = _SEQ.pack(applied_seq) + _LEN.pack(count) + b"".join(
            entries
        )
        return SNAPSHOT_MAGIC + payload + self._snapshot_checksum(payload)

    def compact(self) -> int:
        """Fold the journal into the snapshot; returns the snapshot's
        sequence number.

        Ordering is the whole point: the snapshot must be durable (tmp
        → fsync → rename → dirsync) *before* the journal is reset; a
        crash in between recovers to the same state because replay
        skips records at or below the snapshot's sequence number.
        """
        if self._staged:
            raise DurableStateError(
                "compact() with uncommitted staged mutations; "
                "commit or discard them first", kind="protocol",
            )
        applied = self._journal.committed_seq
        atomic_write(self._join(self.SNAPSHOT_NAME),
                     self._snapshot_bytes(applied), fs=self._fs)
        self._journal.reset(applied + 1)
        return applied

    # -- inspection --------------------------------------------------------------

    def inspect(self) -> DurableInspection:
        """Summarize the committed state (no mutation)."""
        journal_path = self._join(self.JOURNAL_NAME)
        size = len(self._fs.read(journal_path)) \
            if self._fs.exists(journal_path) else 0
        return DurableInspection(
            directory=self._directory,
            snapshot_seq=self.recovery.snapshot_seq,
            committed_records=self.recovery.records_replayed,
            journal_bytes=size,
            tail_torn_bytes=self.recovery.truncated_bytes,
            tail_uncommitted_records=self.recovery.dropped_records,
            namespaces={ns: len(self._state[ns])
                        for ns in self.namespaces()},
        )


def verify_directory(directory: str, *, fs: Filesystem | None = None,
                     integrity_key: bytes | None = None,
                     provider: CryptoProvider | None = None,
                     ) -> DurableInspection:
    """Dry-run integrity check of a durable directory.

    Scans the snapshot and journal WITHOUT repairing anything — the
    CLI's ``durable verify``/``inspect``.  Torn tails and
    unacknowledged records are reported in the returned
    :class:`DurableInspection`; interior tampering raises
    :class:`~repro.errors.DurableStateError` exactly as recovery would.
    """
    fs = fs or OsFilesystem()
    provider = provider or get_provider()
    directory = directory.rstrip("/") or "."
    journal = Journal(fs, f"{directory}/{DurableStore.JOURNAL_NAME}",
                      integrity_key=integrity_key, provider=provider)
    scan = journal.scan()
    committed = scan.committed

    state: dict[str, dict[str, bytes]] = {}
    snapshot_seq = 0
    snapshot_path = f"{directory}/{DurableStore.SNAPSHOT_NAME}"
    if fs.exists(snapshot_path):
        # Reuse the store's snapshot parser without its repair side
        # effects by loading into a scratch instance namespace.
        scratch = DurableStore.__new__(DurableStore)
        scratch._fs = fs
        scratch._directory = directory
        scratch._key = integrity_key
        scratch._provider = provider
        scratch._state = state
        snapshot_seq = scratch._load_snapshot()
    for seq, body in committed:
        if seq <= snapshot_seq:
            continue
        kind, namespace, key, value = decode_op(body)
        if kind == _OP_SET:
            state.setdefault(namespace, {})[key] = value
        elif kind == _OP_DELETE:
            state.get(namespace, {}).pop(key, None)
        elif kind == _OP_WIPE:
            state.pop(namespace, None)

    journal_path = f"{directory}/{DurableStore.JOURNAL_NAME}"
    size = len(fs.read(journal_path)) if fs.exists(journal_path) else 0
    if scan.torn_header:
        torn = size
    elif scan.keep_bytes:
        torn = size - scan.keep_bytes
    else:
        torn = 0
    return DurableInspection(
        directory=directory,
        snapshot_seq=snapshot_seq,
        committed_records=sum(1 for seq, _ in committed
                              if seq > snapshot_seq),
        journal_bytes=size,
        tail_torn_bytes=max(0, torn),
        tail_uncommitted_records=scan.dropped_records,
        namespaces={ns: len(space) for ns, space in sorted(state.items())
                    if space},
    )
