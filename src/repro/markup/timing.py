"""SMIL clock-value parsing and time arithmetic."""

from __future__ import annotations

from repro.errors import MarkupError


def parse_clock_value(text: str | None, default: float = 0.0) -> float:
    """Parse a SMIL clock value into seconds.

    Accepts ``"12s"``, ``"1.5s"``, ``"500ms"``, ``"2min"``, ``"1h"``,
    bare numbers (seconds) and ``"hh:mm:ss[.f]"`` / ``"mm:ss"`` forms.
    ``None`` or an empty string yields *default*.
    """
    if text is None:
        return default
    value = text.strip()
    if not value:
        return default
    try:
        if ":" in value:
            parts = [float(p) for p in value.split(":")]
            if len(parts) == 3:
                hours, minutes, seconds = parts
            elif len(parts) == 2:
                hours, (minutes, seconds) = 0.0, parts
            else:
                raise ValueError("too many ':' fields")
            if minutes >= 60 or seconds >= 60:
                raise ValueError("minutes/seconds out of range")
            return hours * 3600 + minutes * 60 + seconds
        for suffix, scale in (("ms", 0.001), ("min", 60.0), ("h", 3600.0),
                              ("s", 1.0)):
            if value.endswith(suffix):
                return float(value[: -len(suffix)]) * scale
        return float(value)
    except ValueError as exc:
        raise MarkupError(f"bad clock value {text!r}: {exc}") from None


def format_clock_value(seconds: float) -> str:
    """Format seconds as a SMIL clock value (``"12s"`` style)."""
    if seconds < 0:
        raise MarkupError("clock values cannot be negative")
    if float(seconds).is_integer():
        return f"{int(seconds)}s"
    return f"{seconds}s"
