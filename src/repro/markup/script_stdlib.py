"""Built-in globals for the ECMAScript subset (ECMA-262 3rd ed. core).

The paper's prototype scripts against "the common core language
elements of both Javascript and JScript" (§8.1); disc menu scripts lean
on a handful of built-ins — ``Math``, the global numeric conversions,
and string helpers.  This module provides them as host objects, kept
deliberately deterministic: ``Math.random`` is seeded per interpreter
(a player replays deterministically in tests), and there is no clock.
"""

from __future__ import annotations

import math

from repro.errors import ScriptRuntimeError
from repro.markup.script_interp import HostObject, _number, _stringify
from repro.primitives.random import DeterministicRandomSource


def make_math_object(seed: bytes = b"script-math") -> HostObject:
    """An ECMA-262 ``Math`` object (seeded, deterministic random)."""
    rng = DeterministicRandomSource(seed)

    def _random() -> float:
        return int.from_bytes(rng.read(7), "big") / float(1 << 56)

    return HostObject("Math", methods={
        "abs": lambda x: abs(_number(x)),
        "floor": lambda x: float(math.floor(_number(x))),
        "ceil": lambda x: float(math.ceil(_number(x))),
        "round": lambda x: float(math.floor(_number(x) + 0.5)),
        "min": lambda *xs: min(_number(x) for x in xs),
        "max": lambda *xs: max(_number(x) for x in xs),
        "pow": lambda x, y: _number(x) ** _number(y),
        "sqrt": lambda x: math.sqrt(_number(x)),
        "random": _random,
    }, properties={"PI": math.pi, "E": math.e})


def make_string_object() -> HostObject:
    """String helpers (as a host object: ``String.substring(s, a, b)``).

    The interpreter's value model has no prototypes, so the classic
    instance methods are exposed in static form — the common JScript
    compatibility idiom of the era.
    """

    def substring(value, start, end=None):
        text = _stringify(value)
        lo = max(0, int(_number(start)))
        hi = len(text) if end is None else max(0, int(_number(end)))
        if lo > hi:
            lo, hi = hi, lo
        return text[lo:hi]

    def char_at(value, index):
        text = _stringify(value)
        i = int(_number(index))
        return text[i] if 0 <= i < len(text) else ""

    def index_of(value, needle):
        return float(_stringify(value).find(_stringify(needle)))

    def split(value, separator):
        return _stringify(value).split(_stringify(separator))

    return HostObject("String", methods={
        "substring": substring,
        "charAt": char_at,
        "indexOf": index_of,
        "split": split,
        "toUpperCase": lambda value: _stringify(value).upper(),
        "toLowerCase": lambda value: _stringify(value).lower(),
        "trim": lambda value: _stringify(value).strip(),
        "replace": lambda value, old, new: _stringify(value).replace(
            _stringify(old), _stringify(new), 1,
        ),
        "length": lambda value: float(len(_stringify(value))),
    })


def _parse_int(value, radix=None) -> float:
    text = _stringify(value).strip()
    base = int(_number(radix)) if radix is not None else 10
    negative = text.startswith("-")
    if text[:1] in "+-":
        text = text[1:]
    digits = ""
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
    for ch in text.lower():
        if ch not in alphabet:
            break
        digits += ch
    if not digits:
        raise ScriptRuntimeError(f"parseInt: no digits in {value!r}")
    result = float(int(digits, base))
    return -result if negative else result


def _parse_float(value) -> float:
    text = _stringify(value).strip()
    out = ""
    seen_dot = False
    for index, ch in enumerate(text):
        if ch.isdigit():
            out += ch
        elif ch == "." and not seen_dot:
            seen_dot = True
            out += ch
        elif ch in "+-" and index == 0:
            out += ch
        else:
            break
    try:
        return float(out)
    except ValueError:
        raise ScriptRuntimeError(
            f"parseFloat: no number in {value!r}"
        ) from None


def standard_globals(seed: bytes = b"script-math") -> dict[str, object]:
    """The default global environment additions for manifest scripts.

    Returns host objects (``Math``, ``String``) and plain callables
    (``parseInt``, ``parseFloat``, ``isNaN``) keyed by global name —
    pass to :class:`repro.markup.Interpreter` / merge in the engine.
    """
    return {
        "Math": make_math_object(seed),
        "String": make_string_object(),
    }


STANDARD_FUNCTIONS = {
    "parseInt": _parse_int,
    "parseFloat": _parse_float,
    "isNaN": lambda value: isinstance(value, float)
    and math.isnan(value),
}
