"""SMIL-lite layout model: root layout and named regions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MarkupError
from repro.xmlcore import element
from repro.xmlcore.tree import Element


@dataclass(frozen=True)
class Region:
    """A named rendering region."""

    name: str
    left: int = 0
    top: int = 0
    width: int = 0
    height: int = 0
    z_index: int = 0

    def to_element(self, ns_uri: str | None = None) -> Element:
        return element("region", ns_uri, attrs={
            "regionName": self.name,
            "left": str(self.left), "top": str(self.top),
            "width": str(self.width), "height": str(self.height),
            "z-index": str(self.z_index),
        })


@dataclass
class Layout:
    """The root layout: canvas size plus regions."""

    width: int = 1920
    height: int = 1080
    regions: dict[str, Region] = field(default_factory=dict)

    def add_region(self, region: Region) -> None:
        if region.name in self.regions:
            raise MarkupError(f"duplicate region {region.name!r}")
        if region.left < 0 or region.top < 0 \
                or region.left + region.width > self.width \
                or region.top + region.height > self.height:
            raise MarkupError(
                f"region {region.name!r} exceeds the {self.width}x"
                f"{self.height} canvas"
            )
        self.regions[region.name] = region

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise MarkupError(f"unknown region {name!r}") from None

    @classmethod
    def from_element(cls, node: Element) -> "Layout":
        layout = cls()
        root = node.first_child("root-layout") or node.first_child("rootLayout")
        if root is not None:
            layout.width = int(root.get("width", "1920") or 1920)
            layout.height = int(root.get("height", "1080") or 1080)
        for child in node.child_elements():
            if child.local != "region":
                continue
            name = child.get("regionName") or child.get("name") \
                or child.get("id") or ""
            if not name:
                raise MarkupError("region without a name")
            layout.add_region(Region(
                name=name,
                left=int(child.get("left", "0") or 0),
                top=int(child.get("top", "0") or 0),
                width=int(child.get("width", "0") or 0),
                height=int(child.get("height", "0") or 0),
                z_index=int(child.get("z-index", "0") or 0),
            ))
        return layout
