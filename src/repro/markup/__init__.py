"""Markup runtimes: SMIL-lite presentation and the ECMAScript subset."""

from repro.markup.layout import Layout, Region
from repro.markup.script_interp import (
    Environment, ExecutionResult, HostObject, Interpreter, ScriptFunction,
    run_script,
)
from repro.markup.script_lexer import Token, tokenize
from repro.markup.script_parser import parse_script
from repro.markup.smil import (
    MEDIA_KINDS, MediaItem, Presentation, ScheduledItem, TimeContainer,
    merge_layout, parse_smil,
)
from repro.markup.timing import format_clock_value, parse_clock_value

__all__ = [
    "Interpreter", "HostObject", "ExecutionResult", "Environment",
    "ScriptFunction", "run_script", "parse_script", "tokenize", "Token",
    "Presentation", "TimeContainer", "MediaItem", "ScheduledItem",
    "parse_smil", "merge_layout", "MEDIA_KINDS",
    "Layout", "Region", "parse_clock_value", "format_clock_value",
]
