"""Tree-walking interpreter for the ECMAScript subset.

Runs manifest scripts against a host environment (the player exposes
its API — local storage, presentation control, permission-gated
resources — as host objects).  Two hardening measures reflect the
threat model's "malicious application" concerns: a configurable
instruction budget (runaway-script protection) and host access strictly
limited to the objects the engine chose to expose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScriptRuntimeError
from repro.markup.script_parser import parse_script

_UNDEFINED = object()   # distinguish "no value" from null (None)


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


@dataclass
class ScriptFunction:
    """A user-defined function closed over its defining environment."""

    params: list[str]
    body: tuple
    closure: "Environment"
    name: str = "<anonymous>"


class Environment:
    """Lexical scope chain."""

    def __init__(self, parent: "Environment | None" = None):
        self.parent = parent
        self.values: dict[str, object] = {}

    def declare(self, name: str, value) -> None:
        self.values[name] = value

    def lookup(self, name: str):
        scope: Environment | None = self
        while scope is not None:
            if name in scope.values:
                return scope.values[name]
            scope = scope.parent
        raise ScriptRuntimeError(f"{name!r} is not defined")

    def assign(self, name: str, value) -> None:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.values:
                scope.values[name] = value
                return
            scope = scope.parent
        raise ScriptRuntimeError(f"{name!r} is not defined")


class HostObject:
    """A host-provided object exposed to scripts.

    Methods are plain callables; properties are plain values.  Scripts
    can only reach what the embedder registers here — the engine's
    access-control choke point.
    """

    def __init__(self, name: str, methods: dict | None = None,
                 properties: dict | None = None):
        self.name = name
        self.methods = dict(methods or {})
        self.properties = dict(properties or {})

    def get_member(self, name: str):
        if name in self.methods:
            return self.methods[name]
        if name in self.properties:
            return self.properties[name]
        raise ScriptRuntimeError(
            f"host object {self.name!r} has no member {name!r}"
        )

    def set_member(self, name: str, value) -> None:
        self.properties[name] = value


@dataclass
class ExecutionResult:
    """Outcome of running a script."""

    globals: dict[str, object]
    instructions: int
    return_value: object = None


class Interpreter:
    """Executes parsed scripts with an instruction budget.

    Args:
        host_objects: name → :class:`HostObject` bindings visible as
            globals.
        max_instructions: abort threshold (``ScriptRuntimeError``) —
            protects the player from runaway downloaded scripts.
    """

    def __init__(self, host_objects: dict[str, HostObject] | None = None,
                 max_instructions: int = 1_000_000,
                 include_stdlib: bool = True):
        self.globals = Environment()
        self.max_instructions = max_instructions
        self._instructions = 0
        if include_stdlib:
            from repro.markup.script_stdlib import (
                STANDARD_FUNCTIONS, standard_globals,
            )
            for name, obj in standard_globals().items():
                self.globals.declare(name, obj)
            for name, function in STANDARD_FUNCTIONS.items():
                self.globals.declare(name, function)
        for name, obj in (host_objects or {}).items():
            self.globals.declare(name, obj)

    # -- public API ----------------------------------------------------------------

    def run(self, source: str) -> ExecutionResult:
        """Parse and execute *source* in the global environment."""
        program = parse_script(source)
        self._instructions = 0
        self._exec_block(program[1], self.globals)
        return ExecutionResult(
            globals={
                k: v for k, v in self.globals.values.items()
                if not isinstance(v, HostObject) and not callable(v)
                or isinstance(v, ScriptFunction)
            },
            instructions=self._instructions,
        )

    def call_function(self, name: str, *args):
        """Invoke a script-defined global function from the host side
        (event dispatch: ``onKey``, ``onLoad`` ...)."""
        function = self.globals.lookup(name)
        return self._invoke(function, list(args))

    # -- execution ------------------------------------------------------------------

    def _tick(self) -> None:
        self._instructions += 1
        if self._instructions > self.max_instructions:
            raise ScriptRuntimeError(
                f"instruction budget exceeded "
                f"({self.max_instructions}); runaway script aborted"
            )

    def _exec_block(self, statements, env: Environment) -> None:
        # Function declarations are hoisted (ECMA-262 §10.1.3).
        for statement in statements:
            if statement[0] == "funcdecl":
                env.declare(statement[1],
                            ScriptFunction(statement[2], statement[3],
                                           env, name=statement[1]))
        for statement in statements:
            if statement[0] != "funcdecl":
                self._exec(statement, env)

    def _exec(self, node, env: Environment) -> None:
        self._tick()
        kind = node[0]
        if kind == "block":
            self._exec_block(node[1], env)
        elif kind == "var":
            value = None if node[2] is None else self._eval(node[2], env)
            env.declare(node[1], value)
        elif kind == "funcdecl":
            env.declare(node[1], ScriptFunction(node[2], node[3], env,
                                                name=node[1]))
        elif kind == "exprstmt":
            self._eval(node[1], env)
        elif kind == "if":
            if _truthy(self._eval(node[1], env)):
                self._exec(node[2], env)
            elif node[3] is not None:
                self._exec(node[3], env)
        elif kind == "while":
            while _truthy(self._eval(node[1], env)):
                self._tick()
                try:
                    self._exec(node[2], env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif kind == "for":
            loop_env = Environment(env)
            if node[1] is not None:
                self._exec(node[1], loop_env)
            while node[2] is None or _truthy(self._eval(node[2], loop_env)):
                self._tick()
                try:
                    self._exec(node[4], loop_env)
                except _Break:
                    break
                except _Continue:
                    pass
                if node[3] is not None:
                    self._exec(node[3], loop_env)
        elif kind == "return":
            value = None if node[1] is None else self._eval(node[1], env)
            raise _Return(value)
        elif kind == "break":
            raise _Break()
        elif kind == "continue":
            raise _Continue()
        else:
            raise ScriptRuntimeError(f"unknown statement kind {kind!r}")

    # -- evaluation ------------------------------------------------------------------

    def _eval(self, node, env: Environment):
        self._tick()
        kind = node[0]
        if kind == "num":
            return node[1]
        if kind == "str":
            return node[1]
        if kind == "bool":
            return node[1]
        if kind == "null":
            return None
        if kind == "name":
            return env.lookup(node[1])
        if kind == "array":
            return [self._eval(item, env) for item in node[1]]
        if kind == "object":
            return {key: self._eval(value, env) for key, value in node[1]}
        if kind == "func":
            return ScriptFunction(node[1], node[2], env)
        if kind == "unary":
            return self._eval_unary(node, env)
        if kind == "binary":
            return self._eval_binary(node, env)
        if kind == "logical":
            left = self._eval(node[2], env)
            if node[1] == "&&":
                return self._eval(node[3], env) if _truthy(left) else left
            return left if _truthy(left) else self._eval(node[3], env)
        if kind == "cond":
            if _truthy(self._eval(node[1], env)):
                return self._eval(node[2], env)
            return self._eval(node[3], env)
        if kind == "assign":
            return self._eval_assign(node, env)
        if kind == "postfix":
            return self._eval_postfix(node, env)
        if kind == "member":
            return self._get_member(self._eval(node[1], env), node[2])
        if kind == "index":
            return self._get_index(
                self._eval(node[1], env), self._eval(node[2], env),
            )
        if kind == "call":
            return self._eval_call(node, env)
        raise ScriptRuntimeError(f"unknown expression kind {kind!r}")

    def _eval_unary(self, node, env):
        operand = self._eval(node[2], env)
        op = node[1]
        if op == "!":
            return not _truthy(operand)
        if op == "-":
            return -_number(operand)
        if op == "+":
            return _number(operand)
        if op == "typeof":
            if operand is None:
                return "object"
            if isinstance(operand, bool):
                return "boolean"
            if isinstance(operand, (int, float)):
                return "number"
            if isinstance(operand, str):
                return "string"
            if isinstance(operand, ScriptFunction) or callable(operand):
                return "function"
            return "object"
        raise ScriptRuntimeError(f"unknown unary operator {op!r}")

    def _eval_binary(self, node, env):
        op = node[1]
        left = self._eval(node[2], env)
        right = self._eval(node[3], env)
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return _stringify(left) + _stringify(right)
            return _number(left) + _number(right)
        if op == "-":
            return _number(left) - _number(right)
        if op == "*":
            return _number(left) * _number(right)
        if op == "/":
            divisor = _number(right)
            if divisor == 0:
                raise ScriptRuntimeError("division by zero")
            return _number(left) / divisor
        if op == "%":
            divisor = _number(right)
            if divisor == 0:
                raise ScriptRuntimeError("modulo by zero")
            return _number(left) % divisor
        if op in ("==", "==="):
            return left == right
        if op in ("!=", "!=="):
            return left != right
        if op == "<":
            return _compare(left, right) < 0
        if op == ">":
            return _compare(left, right) > 0
        if op == "<=":
            return _compare(left, right) <= 0
        if op == ">=":
            return _compare(left, right) >= 0
        raise ScriptRuntimeError(f"unknown operator {op!r}")

    def _eval_assign(self, node, env):
        _kind, target, op, value_node = node
        value = self._eval(value_node, env)
        if op != "=":
            current = self._eval(target, env)
            value = self._apply_compound(op, current, value)
        if target[0] == "name":
            env.assign(target[1], value)
        elif target[0] == "member":
            obj = self._eval(target[1], env)
            self._set_member(obj, target[2], value)
        else:  # index
            obj = self._eval(target[1], env)
            index = self._eval(target[2], env)
            self._set_index(obj, index, value)
        return value

    def _apply_compound(self, op, current, value):
        if op == "+=":
            if isinstance(current, str) or isinstance(value, str):
                return _stringify(current) + _stringify(value)
            return _number(current) + _number(value)
        if op == "-=":
            return _number(current) - _number(value)
        if op == "*=":
            return _number(current) * _number(value)
        if op == "/=":
            divisor = _number(value)
            if divisor == 0:
                raise ScriptRuntimeError("division by zero")
            return _number(current) / divisor
        if op == "%=":
            divisor = _number(value)
            if divisor == 0:
                raise ScriptRuntimeError("modulo by zero")
            return _number(current) % divisor
        raise ScriptRuntimeError(f"unknown compound operator {op!r}")

    def _eval_postfix(self, node, env):
        _kind, op, target = node
        current = _number(self._eval(target, env))
        updated = current + 1 if op == "++" else current - 1
        self._eval_assign(("assign", target, "=", ("num", updated)), env)
        return current

    def _eval_call(self, node, env):
        _kind, callee, arg_nodes = node
        args = [self._eval(arg, env) for arg in arg_nodes]
        if callee[0] == "member":
            obj = self._eval(callee[1], env)
            method = self._get_member(obj, callee[2])
            return self._invoke(method, args)
        function = self._eval(callee, env)
        return self._invoke(function, args)

    def _invoke(self, function, args):
        self._tick()
        if isinstance(function, ScriptFunction):
            env = Environment(function.closure)
            for index, param in enumerate(function.params):
                env.declare(param,
                            args[index] if index < len(args) else None)
            try:
                self._exec(function.body, env)
            except _Return as ret:
                return ret.value
            return None
        if callable(function):
            from repro.errors import PermissionDeniedError
            try:
                return function(*args)
            except (ScriptRuntimeError, PermissionDeniedError):
                # Platform enforcement surfaces as-is; the embedder
                # decides what a denial means for the application.
                raise
            except Exception as exc:
                raise ScriptRuntimeError(
                    f"host call failed: {exc}"
                ) from exc
        raise ScriptRuntimeError(
            f"{type(function).__name__} is not callable"
        )

    # -- member / index access -----------------------------------------------------------

    def _get_member(self, obj, name: str):
        if isinstance(obj, HostObject):
            return obj.get_member(name)
        if isinstance(obj, dict):
            if name in obj:
                return obj[name]
            raise ScriptRuntimeError(f"object has no property {name!r}")
        if isinstance(obj, list):
            if name == "length":
                return float(len(obj))
            if name == "push":
                return obj.append
            raise ScriptRuntimeError(f"array has no property {name!r}")
        if isinstance(obj, str):
            if name == "length":
                return float(len(obj))
            raise ScriptRuntimeError(f"string has no property {name!r}")
        raise ScriptRuntimeError(
            f"cannot read property {name!r} of "
            f"{'null' if obj is None else type(obj).__name__}"
        )

    def _set_member(self, obj, name: str, value) -> None:
        if isinstance(obj, HostObject):
            obj.set_member(name, value)
        elif isinstance(obj, dict):
            obj[name] = value
        else:
            raise ScriptRuntimeError(
                f"cannot set property {name!r} on {type(obj).__name__}"
            )

    def _get_index(self, obj, index):
        if isinstance(obj, list):
            i = int(_number(index))
            if not 0 <= i < len(obj):
                return None
            return obj[i]
        if isinstance(obj, dict):
            return obj.get(_stringify(index))
        if isinstance(obj, str):
            i = int(_number(index))
            if not 0 <= i < len(obj):
                return None
            return obj[i]
        raise ScriptRuntimeError(
            f"cannot index {type(obj).__name__}"
        )

    def _set_index(self, obj, index, value) -> None:
        if isinstance(obj, list):
            i = int(_number(index))
            if 0 <= i < len(obj):
                obj[i] = value
            elif i == len(obj):
                obj.append(value)
            else:
                raise ScriptRuntimeError(f"array index {i} out of range")
        elif isinstance(obj, dict):
            obj[_stringify(index)] = value
        else:
            raise ScriptRuntimeError(
                f"cannot index-assign {type(obj).__name__}"
            )


# -- coercion helpers -------------------------------------------------------


def _truthy(value) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    return True


def _number(value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ScriptRuntimeError(
                f"cannot convert {value!r} to a number"
            ) from None
    if value is None:
        return 0.0
    raise ScriptRuntimeError(
        f"cannot convert {type(value).__name__} to a number"
    )


def _stringify(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return ",".join(_stringify(v) for v in value)
    return str(value)


def _compare(left, right) -> int:
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    a, b = _number(left), _number(right)
    return (a > b) - (a < b)


def run_script(source: str,
               host_objects: dict[str, HostObject] | None = None,
               max_instructions: int = 1_000_000) -> ExecutionResult:
    """One-shot convenience: run *source* and return the result."""
    interpreter = Interpreter(host_objects, max_instructions)
    return interpreter.run(source)
