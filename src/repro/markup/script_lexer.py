"""Lexer for the ECMAScript subset used in manifest Code parts.

The paper's prototype scripts applications in ECMAScript (§8.1); this
lexer/parser/interpreter triple implements the practical core of
ECMA-262 third edition that disc applications need: variables,
functions, control flow, arithmetic/logic, strings, arrays and host
object calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScriptSyntaxError

KEYWORDS = {
    "var", "function", "return", "if", "else", "while", "for", "break",
    "continue", "true", "false", "null", "new", "typeof",
}

_PUNCTUATION = [
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "{", "}", "[", "]",
    ",", ";", ".", "!", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str          # "number" | "string" | "name" | "keyword" | "punct" | "eof"
    value: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`ScriptSyntaxError` with line info."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise ScriptSyntaxError(f"unterminated comment at line {line}")
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and source[pos + 1].isdigit()):
            start = pos
            seen_dot = False
            while pos < length and (source[pos].isdigit()
                                    or (source[pos] == "." and not seen_dot)):
                if source[pos] == ".":
                    seen_dot = True
                pos += 1
            tokens.append(Token("number", source[start:pos], line))
            continue
        if ch in "'\"":
            quote = ch
            pos += 1
            parts: list[str] = []
            while True:
                if pos >= length:
                    raise ScriptSyntaxError(
                        f"unterminated string at line {line}"
                    )
                c = source[pos]
                if c == quote:
                    pos += 1
                    break
                if c == "\n":
                    raise ScriptSyntaxError(
                        f"newline in string at line {line}"
                    )
                if c == "\\":
                    pos += 1
                    if pos >= length:
                        raise ScriptSyntaxError(
                            f"bad escape at line {line}"
                        )
                    escape = source[pos]
                    parts.append({
                        "n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                        "'": "'", '"': '"', "0": "\0",
                    }.get(escape, escape))
                    pos += 1
                else:
                    parts.append(c)
                    pos += 1
            tokens.append(Token("string", "".join(parts), line))
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] in "_$"):
                pos += 1
            word = source[start:pos]
            kind = "keyword" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line))
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, pos):
                tokens.append(Token("punct", punct, line))
                pos += len(punct)
                break
        else:
            raise ScriptSyntaxError(
                f"unexpected character {ch!r} at line {line}"
            )
    tokens.append(Token("eof", "", line))
    return tokens
