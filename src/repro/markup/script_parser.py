"""Recursive-descent parser for the ECMAScript subset.

Produces a small AST of tuples ``(node_kind, ...)`` — compact, easy to
walk, trivially hashable for tests.
"""

from __future__ import annotations

from repro.errors import ScriptSyntaxError
from repro.markup.script_lexer import Token, tokenize

# AST node kinds (first tuple element):
#   program(stmts) var(name, expr|None) assign(target, op, expr)
#   if(cond, then, else|None) while(cond, body) for(init, cond, step, body)
#   return(expr|None) break() continue() exprstmt(expr) block(stmts)
#   funcdecl(name, params, body)
#   binary(op, l, r) logical(op, l, r) unary(op, x) call(callee, args)
#   member(obj, name) index(obj, expr) name(n) num(v) str(v) bool(v)
#   null() array(items) object(pairs) func(params, body) cond(c, a, b)
#   postfix(op, target)


class Parser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token helpers -------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._next()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise ScriptSyntaxError(
                f"expected {value or kind} but found "
                f"{actual.value or actual.kind!r} at line {actual.line}"
            )
        return token

    # -- entry -----------------------------------------------------------------------

    def parse_program(self) -> tuple:
        statements = []
        while not self._check("eof"):
            statements.append(self._statement())
        return ("program", statements)

    # -- statements ---------------------------------------------------------------------

    def _statement(self) -> tuple:
        if self._accept("punct", ";"):
            return ("block", [])
        if self._check("punct", "{"):
            return self._block()
        if self._accept("keyword", "var"):
            return self._var_statement()
        if self._accept("keyword", "function"):
            name = self._expect("name").value
            params, body = self._function_rest()
            return ("funcdecl", name, params, body)
        if self._accept("keyword", "if"):
            self._expect("punct", "(")
            condition = self._expression()
            self._expect("punct", ")")
            then = self._statement()
            otherwise = None
            if self._accept("keyword", "else"):
                otherwise = self._statement()
            return ("if", condition, then, otherwise)
        if self._accept("keyword", "while"):
            self._expect("punct", "(")
            condition = self._expression()
            self._expect("punct", ")")
            return ("while", condition, self._statement())
        if self._accept("keyword", "for"):
            return self._for_statement()
        if self._accept("keyword", "return"):
            value = None
            if not self._check("punct", ";") and not self._check("punct", "}"):
                value = self._expression()
            self._accept("punct", ";")
            return ("return", value)
        if self._accept("keyword", "break"):
            self._accept("punct", ";")
            return ("break",)
        if self._accept("keyword", "continue"):
            self._accept("punct", ";")
            return ("continue",)
        expr = self._expression_or_assignment()
        self._accept("punct", ";")
        return ("exprstmt", expr)

    def _block(self) -> tuple:
        self._expect("punct", "{")
        statements = []
        while not self._accept("punct", "}"):
            if self._check("eof"):
                raise ScriptSyntaxError("unterminated block")
            statements.append(self._statement())
        return ("block", statements)

    def _var_statement(self) -> tuple:
        declarations = []
        while True:
            name = self._expect("name").value
            initializer = None
            if self._accept("punct", "="):
                initializer = self._expression()
            declarations.append(("var", name, initializer))
            if not self._accept("punct", ","):
                break
        self._accept("punct", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ("block", declarations)

    def _for_statement(self) -> tuple:
        self._expect("punct", "(")
        init = None
        if not self._check("punct", ";"):
            if self._accept("keyword", "var"):
                init = self._var_statement()
            else:
                init = ("exprstmt", self._expression_or_assignment())
                self._accept("punct", ";")
        else:
            self._next()
        if init is not None and init[0] in ("var", "block"):
            pass  # _var_statement consumed the ';'
        condition = None
        if not self._check("punct", ";"):
            condition = self._expression()
        self._expect("punct", ";")
        step = None
        if not self._check("punct", ")"):
            step = ("exprstmt", self._expression_or_assignment())
        self._expect("punct", ")")
        return ("for", init, condition, step, self._statement())

    def _function_rest(self) -> tuple[list[str], tuple]:
        self._expect("punct", "(")
        params: list[str] = []
        if not self._check("punct", ")"):
            while True:
                params.append(self._expect("name").value)
                if not self._accept("punct", ","):
                    break
        self._expect("punct", ")")
        return params, self._block()

    # -- expressions -------------------------------------------------------------------

    _ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")

    def _expression_or_assignment(self) -> tuple:
        expr = self._expression()
        token = self._peek()
        if token.kind == "punct" and token.value in self._ASSIGN_OPS:
            if expr[0] not in ("name", "member", "index"):
                raise ScriptSyntaxError(
                    f"invalid assignment target at line {token.line}"
                )
            self._next()
            value = self._expression_or_assignment()
            return ("assign", expr, token.value, value)
        return expr

    def _expression(self) -> tuple:
        return self._conditional()

    def _conditional(self) -> tuple:
        condition = self._logical_or()
        if self._accept("punct", "?"):
            then = self._expression()
            self._expect("punct", ":")
            otherwise = self._expression()
            return ("cond", condition, then, otherwise)
        return condition

    def _logical_or(self) -> tuple:
        left = self._logical_and()
        while self._accept("punct", "||"):
            left = ("logical", "||", left, self._logical_and())
        return left

    def _logical_and(self) -> tuple:
        left = self._equality()
        while self._accept("punct", "&&"):
            left = ("logical", "&&", left, self._equality())
        return left

    def _equality(self) -> tuple:
        left = self._relational()
        while True:
            for op in ("===", "!==", "==", "!="):
                if self._accept("punct", op):
                    left = ("binary", op, left, self._relational())
                    break
            else:
                return left

    def _relational(self) -> tuple:
        left = self._additive()
        while True:
            for op in ("<=", ">=", "<", ">"):
                if self._accept("punct", op):
                    left = ("binary", op, left, self._additive())
                    break
            else:
                return left

    def _additive(self) -> tuple:
        left = self._multiplicative()
        while True:
            if self._accept("punct", "+"):
                left = ("binary", "+", left, self._multiplicative())
            elif self._accept("punct", "-"):
                left = ("binary", "-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> tuple:
        left = self._unary()
        while True:
            matched = False
            for op in ("*", "/", "%"):
                if self._accept("punct", op):
                    left = ("binary", op, left, self._unary())
                    matched = True
                    break
            if not matched:
                return left

    def _unary(self) -> tuple:
        if self._accept("punct", "!"):
            return ("unary", "!", self._unary())
        if self._accept("punct", "-"):
            return ("unary", "-", self._unary())
        if self._accept("punct", "+"):
            return ("unary", "+", self._unary())
        if self._accept("keyword", "typeof"):
            return ("unary", "typeof", self._unary())
        return self._postfix()

    def _postfix(self) -> tuple:
        expr = self._call_or_member()
        token = self._peek()
        if token.kind == "punct" and token.value in ("++", "--"):
            if expr[0] not in ("name", "member", "index"):
                raise ScriptSyntaxError(
                    f"invalid increment target at line {token.line}"
                )
            self._next()
            return ("postfix", token.value, expr)
        return expr

    def _call_or_member(self) -> tuple:
        expr = self._primary()
        while True:
            if self._accept("punct", "."):
                name = self._expect("name").value
                expr = ("member", expr, name)
            elif self._accept("punct", "["):
                index = self._expression()
                self._expect("punct", "]")
                expr = ("index", expr, index)
            elif self._check("punct", "("):
                self._next()
                args = []
                if not self._check("punct", ")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept("punct", ","):
                            break
                self._expect("punct", ")")
                expr = ("call", expr, args)
            else:
                return expr

    def _primary(self) -> tuple:
        token = self._peek()
        if token.kind == "number":
            self._next()
            value = float(token.value)
            return ("num", value)
        if token.kind == "string":
            self._next()
            return ("str", token.value)
        if token.kind == "name":
            self._next()
            return ("name", token.value)
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self._next()
                return ("bool", token.value == "true")
            if token.value == "null":
                self._next()
                return ("null",)
            if token.value == "function":
                self._next()
                params, body = self._function_rest()
                return ("func", params, body)
        if self._accept("punct", "("):
            expr = self._expression_or_assignment()
            self._expect("punct", ")")
            return expr
        if self._accept("punct", "["):
            items = []
            if not self._check("punct", "]"):
                while True:
                    items.append(self._expression())
                    if not self._accept("punct", ","):
                        break
            self._expect("punct", "]")
            return ("array", items)
        if self._accept("punct", "{"):
            pairs = []
            if not self._check("punct", "}"):
                while True:
                    key_token = self._next()
                    if key_token.kind not in ("name", "string", "keyword"):
                        raise ScriptSyntaxError(
                            f"bad object key at line {key_token.line}"
                        )
                    self._expect("punct", ":")
                    pairs.append((key_token.value, self._expression()))
                    if not self._accept("punct", ","):
                        break
            self._expect("punct", "}")
            return ("object", pairs)
        raise ScriptSyntaxError(
            f"unexpected token {token.value or token.kind!r} "
            f"at line {token.line}"
        )


def parse_script(source: str) -> tuple:
    """Parse *source* into a program AST."""
    return Parser(source).parse_program()
