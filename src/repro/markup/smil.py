"""SMIL-lite presentations: timing containers, media items, scheduling.

The prototype chose SMIL for the timing/layout markup (§8.1).  This
module implements the core of the SMIL 2.0 timing model the paper's
applications need — ``seq``/``par`` containers with ``begin``/``dur``
on media items — and resolves a presentation into an absolute timeline
the player's presentation layer can execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MarkupError
from repro.markup.layout import Layout
from repro.markup.timing import parse_clock_value
from repro.xmlcore.tree import Element

MEDIA_KINDS = ("video", "audio", "img", "text", "animation")


@dataclass
class MediaItem:
    """A leaf of the timing tree: one renderable media reference."""

    kind: str
    src: str
    region: str | None = None
    begin: float = 0.0     # relative to the parent container
    dur: float = 0.0       # 0 means "intrinsic": resolved by the player
    repeat: int = 1        # SMIL repeatCount (finite only)

    def __post_init__(self):
        if self.kind not in MEDIA_KINDS:
            raise MarkupError(f"unknown media kind {self.kind!r}")
        if self.begin < 0 or self.dur < 0:
            raise MarkupError("media timing cannot be negative")
        if self.repeat < 1:
            raise MarkupError("repeatCount must be at least 1")


@dataclass
class TimeContainer:
    """A ``seq`` or ``par`` container of media items and sub-containers."""

    mode: str  # "seq" | "par"
    children: list["TimeContainer | MediaItem"] = field(
        default_factory=list
    )
    begin: float = 0.0

    def __post_init__(self):
        if self.mode not in ("seq", "par"):
            raise MarkupError(f"unknown container mode {self.mode!r}")

    def add(self, child: "TimeContainer | MediaItem"):
        self.children.append(child)
        return child


@dataclass(frozen=True)
class ScheduledItem:
    """A media item resolved to absolute presentation time."""

    start: float
    end: float
    kind: str
    src: str
    region: str | None


@dataclass
class Presentation:
    """A parsed SMIL-lite presentation: layout + timing tree."""

    layout: Layout = field(default_factory=Layout)
    body: TimeContainer = field(
        default_factory=lambda: TimeContainer("seq")
    )

    def schedule(self, clip_durations: dict[str, float] | None = None
                 ) -> list[ScheduledItem]:
        """Resolve the timing tree into absolute start/end times.

        *clip_durations* resolves intrinsic (``dur=0``) durations by
        media ``src`` (the player passes clip-info durations).
        Unresolvable intrinsic durations count as zero-length.
        """
        items: list[ScheduledItem] = []
        self._schedule_container(self.body, 0.0, items,
                                 clip_durations or {})
        items.sort(key=lambda item: (item.start, item.end, item.src))
        return items

    def duration(self, clip_durations: dict[str, float] | None = None
                 ) -> float:
        schedule = self.schedule(clip_durations)
        return max((item.end for item in schedule), default=0.0)

    def active_at(self, when: float,
                  clip_durations: dict[str, float] | None = None
                  ) -> list[ScheduledItem]:
        """Items being presented at time *when* (start ≤ t < end)."""
        return [
            item for item in self.schedule(clip_durations)
            if item.start <= when < item.end
        ]

    def validate_regions(self) -> list[str]:
        """Return names of referenced-but-undefined regions."""
        missing: list[str] = []

        def walk(node):
            if isinstance(node, MediaItem):
                if node.region and node.region not in self.layout.regions:
                    missing.append(node.region)
            else:
                for child in node.children:
                    walk(child)

        walk(self.body)
        return sorted(set(missing))

    def _schedule_container(self, container: TimeContainer, start: float,
                            out: list[ScheduledItem],
                            durations: dict[str, float]) -> float:
        """Schedule *container* from *start*; returns its end time."""
        cursor = start + container.begin
        end = cursor
        for child in container.children:
            if isinstance(child, MediaItem):
                item_start = (cursor if container.mode == "seq"
                              else start + container.begin) + child.begin
                dur = child.dur or durations.get(child.src, 0.0)
                item_end = item_start
                for _iteration in range(child.repeat):
                    out.append(ScheduledItem(
                        start=item_end, end=item_end + dur,
                        kind=child.kind, src=child.src,
                        region=child.region,
                    ))
                    item_end += dur
            else:
                base = (cursor if container.mode == "seq"
                        else start + container.begin)
                item_end = self._schedule_container(
                    child, base, out, durations,
                )
            if container.mode == "seq":
                cursor = item_end
            end = max(end, item_end)
        return end


def parse_smil(node: Element) -> Presentation:
    """Parse a SMIL-lite document/fragment into a :class:`Presentation`.

    Accepts either a full ``<smil><head><layout/></head><body/></smil>``
    document or bare ``<layout>``/``<seq>``/``<par>`` fragments (the
    shapes that appear as manifest sub-markups).
    """
    presentation = Presentation()
    if node.local == "smil":
        head = node.first_child("head")
        if head is not None:
            layout_el = head.first_child("layout")
            if layout_el is not None:
                presentation.layout = Layout.from_element(layout_el)
        body = node.first_child("body")
        if body is not None:
            presentation.body = _parse_container_children("seq", body)
        return presentation
    if node.local == "layout":
        presentation.layout = Layout.from_element(node)
        return presentation
    if node.local in ("seq", "par"):
        presentation.body = _parse_container(node)
        return presentation
    if node.local == "body":
        presentation.body = _parse_container_children("seq", node)
        return presentation
    raise MarkupError(f"cannot parse SMIL from <{node.local}>")


def _parse_container(node: Element) -> TimeContainer:
    container = TimeContainer(
        node.local, begin=parse_clock_value(node.get("begin")),
    )
    _fill_container(container, node)
    return container


def _parse_container_children(mode: str, node: Element) -> TimeContainer:
    container = TimeContainer(mode)
    _fill_container(container, node)
    return container


def _fill_container(container: TimeContainer, node: Element) -> None:
    for child in node.child_elements():
        if child.local in ("seq", "par"):
            container.add(_parse_container(child))
        elif child.local in MEDIA_KINDS or child.local == "clip":
            kind = "video" if child.local == "clip" else child.local
            repeat_text = (child.get("repeatCount") or "1").strip()
            if repeat_text == "indefinite":
                raise MarkupError(
                    "indefinite repeatCount is not allowed on the "
                    "player (runaway presentation)"
                )
            try:
                repeat = int(float(repeat_text))
            except ValueError:
                raise MarkupError(
                    f"bad repeatCount {repeat_text!r}"
                ) from None
            container.add(MediaItem(
                kind=kind,
                src=child.get("src") or child.get("ref") or "",
                region=child.get("region"),
                begin=parse_clock_value(child.get("begin")),
                dur=parse_clock_value(child.get("dur")),
                repeat=repeat,
            ))
        # Unknown elements are ignored (SMIL's forward-compatible rule).


def merge_layout(presentation: Presentation, layout: Layout) -> None:
    """Attach a separately parsed layout sub-markup to a presentation."""
    presentation.layout = layout
