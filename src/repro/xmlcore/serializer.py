"""Plain (non-canonical) XML serialization.

Produces well-formed output that re-parses to an equivalent tree.
Signature-relevant byte streams always go through
:mod:`repro.xmlcore.c14n`; this serializer is for storage and display,
and offers optional pretty-printing for the examples.
"""

from __future__ import annotations

from repro.errors import NamespaceError
from repro.xmlcore.escape import escape_attribute, escape_text
from repro.xmlcore.names import XML_NS
from repro.xmlcore.tree import (
    Comment, Document, Element, Node, ProcessingInstruction, Text,
)


def serialize(node: Node, xml_declaration: bool = False,
              pretty: bool = False) -> str:
    """Serialize an :class:`Element` or :class:`Document` to text."""
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if pretty:
            parts.append("\n")
    if isinstance(node, Document):
        for i, child in enumerate(node.children):
            _serialize_node(child, parts, {"xml": XML_NS}, pretty, 0)
            if pretty and i < len(node.children) - 1:
                parts.append("\n")
    else:
        _serialize_node(node, parts, {"xml": XML_NS}, pretty, 0)
    if pretty:
        parts.append("\n")
    return "".join(parts)


def serialize_bytes(node: Node, xml_declaration: bool = True) -> bytes:
    """Serialize to UTF-8 bytes (the on-disc representation)."""
    return serialize(node, xml_declaration=xml_declaration).encode("utf-8")


def _has_element_children(element: Element) -> bool:
    return any(isinstance(c, Element) for c in element.children)


def _only_whitespace_text(element: Element) -> bool:
    return all(
        not isinstance(c, Text) or not c.data.strip()
        for c in element.children
    )


def _serialize_node(node: Node, parts: list[str],
                    inherited: dict[str | None, str], pretty: bool,
                    depth: int) -> None:
    indent = "  " * depth if pretty else ""
    if isinstance(node, Text):
        if node.is_cdata:
            parts.append(f"<![CDATA[{node.data}]]>")
        else:
            parts.append(escape_text(node.data))
        return
    if isinstance(node, Comment):
        parts.append(f"{indent}<!--{node.data}-->")
        return
    if isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"{indent}<?{node.target}{data}?>")
        return
    if not isinstance(node, Element):
        raise TypeError(f"cannot serialize {type(node).__name__}")

    scope = dict(inherited)
    decls = dict(node.ns_decls)
    scope.update({p: u for p, u in decls.items() if u})
    if decls.get(None) == "":
        scope.pop(None, None)

    # Ensure the element's own namespace is reachable; auto-declare the
    # binding if the tree was built programmatically without one.
    if node.ns_uri and scope.get(node.prefix) != node.ns_uri:
        decls[node.prefix] = node.ns_uri
        scope[node.prefix] = node.ns_uri
    elif node.ns_uri is None and node.prefix is None and scope.get(None):
        decls[None] = ""
        scope.pop(None, None)

    for attr in node.attrs:
        if attr.ns_uri and attr.ns_uri != XML_NS:
            if attr.prefix is None:
                raise NamespaceError(
                    f"namespaced attribute {attr.local!r} needs a prefix"
                )
            if scope.get(attr.prefix) != attr.ns_uri:
                decls[attr.prefix] = attr.ns_uri
                scope[attr.prefix] = attr.ns_uri

    parts.append(f"{indent}<{node.qname}")
    for prefix in sorted(decls, key=lambda p: (p is not None, p or "")):
        name = f"xmlns:{prefix}" if prefix else "xmlns"
        parts.append(f' {name}="{escape_attribute(decls[prefix])}"')
    for attr in node.attrs:
        parts.append(f' {attr.qname}="{escape_attribute(attr.value)}"')

    if not node.children:
        parts.append("/>")
        return
    parts.append(">")
    block = (
        pretty and _has_element_children(node) and _only_whitespace_text(node)
    )
    for child in node.children:
        if block and not isinstance(child, Text):
            parts.append("\n")
        if isinstance(child, Text) and block:
            continue
        _serialize_node(child, parts, scope, pretty and block, depth + 1)
    if block:
        parts.append(f"\n{indent}")
    parts.append(f"</{node.qname}>")
