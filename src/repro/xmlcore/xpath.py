"""XPath-lite: the location-path subset the security stack needs.

XMLDSig references same-document URIs and optional XPath transforms;
XACML selectors and the player engine want simple queries.  Rather than
a full XPath 1.0 engine this implements the practically used subset:

* absolute (``/a/b``) and relative (``a/b``) child paths
* descendant-or-self ``//``
* wildcard ``*``, ``.`` and ``..`` steps
* attribute selection ``@name`` as the final step
* predicates: positional ``[3]``, attribute existence ``[@a]``,
  attribute equality ``[@a='v']``, child-text equality ``[name='v']``
* the ``id('value')`` function as the first step

Namespace prefixes in expressions resolve through a caller-supplied
mapping; unprefixed names match local names in *any* namespace, which is
the convenient behaviour for querying single-vocabulary documents.
"""

from __future__ import annotations

import re

from repro.errors import XPathError
from repro.xmlcore.tree import Document, Element, Node

_TOKEN_RE = re.compile(
    r"""
    (?P<slash2>//) | (?P<slash>/) |
    (?P<id>id\('(?P<idval>[^']*)'\)) |
    (?P<attr>@(?P<attrname>[\w.:-]+|\*)) |
    (?P<dots>\.\.) | (?P<dot>\.) |
    (?P<name>[\w.:-]+|\*) |
    (?P<pred>\[[^\]]*\])
    """,
    re.VERBOSE,
)

_PRED_ATTR_EQ = re.compile(r"^@([\w.:-]+)\s*=\s*'([^']*)'$")
_PRED_ATTR = re.compile(r"^@([\w.:-]+)$")
_PRED_CHILD_EQ = re.compile(r"^([\w.:-]+)\s*=\s*'([^']*)'$")
_PRED_POS = re.compile(r"^\d+$")


class _Step:
    __slots__ = ("axis", "name", "predicates")

    def __init__(self, axis: str, name: str):
        self.axis = axis          # "child" | "descendant" | "self" | "parent" | "attribute" | "id"
        self.name = name
        self.predicates: list[str] = []


def _tokenize(expression: str) -> list[_Step]:
    steps: list[_Step] = []
    pos = 0
    pending_axis = "child"
    absolute = False
    if expression.startswith("//"):
        pending_axis = "descendant"
        absolute = True
        pos = 2
    elif expression.startswith("/"):
        absolute = True
        pos = 1
    if absolute:
        marker = _Step("root", "")
        steps.append(marker)
    while pos < len(expression):
        match = _TOKEN_RE.match(expression, pos)
        if not match:
            raise XPathError(
                f"cannot parse XPath-lite expression at {expression[pos:]!r}"
            )
        pos = match.end()
        if match.group("slash2"):
            pending_axis = "descendant"
        elif match.group("slash"):
            if pending_axis == "descendant":
                raise XPathError("'///' is not valid")
            pending_axis = "child"
        elif match.group("id"):
            step = _Step("id", match.group("idval"))
            steps.append(step)
            pending_axis = "child"
        elif match.group("attr"):
            steps.append(_Step("attribute", match.group("attrname")))
            pending_axis = "child"
        elif match.group("dots"):
            steps.append(_Step("parent", ".."))
            pending_axis = "child"
        elif match.group("dot"):
            steps.append(_Step("self", "."))
            pending_axis = "child"
        elif match.group("name"):
            steps.append(_Step(pending_axis, match.group("name")))
            pending_axis = "child"
        elif match.group("pred"):
            if not steps:
                raise XPathError("predicate with no preceding step")
            steps[-1].predicates.append(match.group("pred")[1:-1].strip())
    return steps


def _name_matches(element: Element, name: str,
                  namespaces: dict[str, str]) -> bool:
    if name == "*":
        return True
    if ":" in name:
        prefix, _, local = name.partition(":")
        uri = namespaces.get(prefix)
        if uri is None:
            raise XPathError(f"unbound prefix {prefix!r} in expression")
        return element.local == local and element.ns_uri == uri
    return element.local == name


def _apply_predicates(candidates: list[Element], predicates: list[str],
                      namespaces: dict[str, str]) -> list[Element]:
    for predicate in predicates:
        if _PRED_POS.match(predicate):
            index = int(predicate)
            candidates = (
                [candidates[index - 1]] if 1 <= index <= len(candidates)
                else []
            )
            continue
        match = _PRED_ATTR_EQ.match(predicate)
        if match:
            name, value = match.groups()
            candidates = [
                e for e in candidates if e.get(name) == value
            ]
            continue
        match = _PRED_ATTR.match(predicate)
        if match:
            name = match.group(1)
            candidates = [e for e in candidates if e.get(name) is not None]
            continue
        match = _PRED_CHILD_EQ.match(predicate)
        if match:
            name, value = match.groups()
            filtered = []
            for e in candidates:
                for child in e.child_elements():
                    if _name_matches(child, name, namespaces) \
                            and child.text_content() == value:
                        filtered.append(e)
                        break
            candidates = filtered
            continue
        raise XPathError(f"unsupported predicate [{predicate}]")
    return candidates


def find_all(context: Node, expression: str,
             namespaces: dict[str, str] | None = None) -> list:
    """Evaluate *expression* from *context*; returns elements or
    attribute-value strings (for ``@name`` final steps)."""
    namespaces = namespaces or {}
    steps = _tokenize(expression)

    if isinstance(context, Document):
        doc_root: Element | None = context.root
    elif isinstance(context, Element):
        top: Node = context
        while isinstance(top.parent, Element):
            top = top.parent
        doc_root = top if isinstance(top, Element) else None
    else:
        raise XPathError("context must be a Document or Element")

    # at_document_level: the current "node" is the document node itself,
    # whose only element child is the root element.
    at_document_level = isinstance(context, Document)
    current: list[Element] = [] if at_document_level else [context]

    for step in steps:
        if step.axis == "root":
            if doc_root is None:
                raise XPathError(
                    "expression is absolute but context has no root"
                )
            at_document_level = True
            current = []
            continue
        if step.axis == "id":
            base = doc_root if doc_root is not None else \
                (current[0] if current else None)
            found = base.get_element_by_id(step.name) if base else None
            current = [found] if found is not None else []
            at_document_level = False
            continue
        if step.axis == "attribute":
            values = []
            for e in current:
                if step.name == "*":
                    values.extend(a.value for a in e.attrs)
                else:
                    v = e.get(step.name)
                    if v is not None:
                        values.append(v)
            return values
        if step.axis == "self":
            continue
        if step.axis == "parent":
            parents = []
            for e in current:
                if isinstance(e.parent, Element) and e.parent not in parents:
                    parents.append(e.parent)
            current = parents
            at_document_level = False
            continue

        # child / descendant name steps
        if at_document_level:
            assert doc_root is not None
            pools = [
                list(doc_root.iter()) if step.axis == "descendant"
                else [doc_root]
            ]
            at_document_level = False
        else:
            pools = [
                list(e.iter()) if step.axis == "descendant"
                else e.child_elements()
                for e in current
            ]
        next_nodes: list[Element] = []
        for pool in pools:
            matched = [
                n for n in pool if _name_matches(n, step.name, namespaces)
            ]
            matched = _apply_predicates(matched, step.predicates, namespaces)
            for n in matched:
                if n not in next_nodes:
                    next_nodes.append(n)
        current = next_nodes
    return current


def find_first(context: Node, expression: str,
               namespaces: dict[str, str] | None = None):
    """First result of :func:`find_all`, or ``None``."""
    results = find_all(context, expression, namespaces)
    return results[0] if results else None
