"""In-memory XML tree model (a compact DOM).

The node classes here are the substrate every higher layer works on:
the parser builds them, the serializer and the canonicalizer consume
them, and XMLDSig/XMLEnc splice signature and encryption markup into
them.  Namespace handling is explicit: each element records the
namespace declarations *syntactically present* on it (``ns_decls``), and
its resolved ``ns_uri``; in-scope namespaces are computed by walking
parents, which is exactly the shape Canonical XML needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import NamespaceError, XMLError
from repro.xmlcore.names import XML_NS, is_valid_name, split_qname

_ID_ATTRIBUTE_NAMES = ("Id", "ID", "id")

# Global monotonic mutation stamps.  Every node carries the stamp of the
# last mutation observed *in its subtree*: a mutation stamps the mutated
# node and every ancestor up to the root.  Stamps are process-unique and
# never reused, so a ``(node, revision)`` pair identifies one exact
# subtree state — the invariant the C14N/digest cache
# (:mod:`repro.perf.cache`) binds cached bytes to.  A cached digest can
# therefore never validate a tampered subtree: any mutation anywhere in
# the tree gives the root (and the mutated path) a fresh stamp.
_mutation_stamps = itertools.count(1)


class Node:
    """Base class for all tree nodes.

    Attributes:
        revision: monotonic mutation stamp of this node's subtree; see
            :data:`_mutation_stamps`.
    """

    parent: "Element | Document | None"
    revision: int

    def __init__(self):
        self.parent = None
        self.revision = next(_mutation_stamps)

    def mark_mutated(self) -> None:
        """Stamp this node and every ancestor with a fresh revision.

        Called by every mutating operation on the tree.  Callers that
        mutate node state directly (rather than through the tree API)
        must call this themselves, or revision-keyed caches will not
        see the change.
        """
        stamp = next(_mutation_stamps)
        node: Node | None = self
        while node is not None:
            node.revision = stamp
            node = node.parent

    def root_document(self) -> "Document | None":
        """Walk to the owning :class:`Document`, if any."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node if isinstance(node, Document) else None

    def copy(self) -> "Node":
        """Deep-copy this node (parent link cleared)."""
        raise NotImplementedError


class _CharacterData(Node):
    """Shared base for nodes whose payload is a mutable string."""

    def __init__(self, data: str):
        super().__init__()
        self._data = data

    @property
    def data(self) -> str:
        return self._data

    @data.setter
    def data(self, value: str) -> None:
        self._data = value
        self.mark_mutated()


class Text(_CharacterData):
    """Character data.  ``is_cdata`` records CDATA origin for round trips."""

    def __init__(self, data: str, is_cdata: bool = False):
        super().__init__(data)
        self.is_cdata = is_cdata

    def copy(self) -> "Text":
        return Text(self.data, self.is_cdata)

    def __repr__(self):
        return f"Text({self.data!r})"


class Comment(_CharacterData):
    """An XML comment."""

    def copy(self) -> "Comment":
        return Comment(self.data)

    def __repr__(self):
        return f"Comment({self.data!r})"


class ProcessingInstruction(_CharacterData):
    """A processing instruction ``<?target data?>``."""

    def __init__(self, target: str, data: str = ""):
        super().__init__(data)
        self.target = target

    def copy(self) -> "ProcessingInstruction":
        return ProcessingInstruction(self.target, self.data)

    def __repr__(self):
        return f"PI({self.target!r}, {self.data!r})"


@dataclass
class Attr:
    """A (non-namespace-declaration) attribute."""

    local: str
    value: str
    prefix: str | None = None
    ns_uri: str | None = None

    @property
    def qname(self) -> str:
        return f"{self.prefix}:{self.local}" if self.prefix else self.local

    def copy(self) -> "Attr":
        return Attr(self.local, self.value, self.prefix, self.ns_uri)


class Element(Node):
    """An element node.

    Attributes:
        local: local name.
        prefix: namespace prefix used in the source (or ``None``).
        ns_uri: resolved namespace URI (or ``None``).
        attrs: ordered list of :class:`Attr` (namespace declarations are
            *not* stored here).
        ns_decls: namespace declarations syntactically on this element;
            maps prefix (``None`` for the default namespace) to URI.
        children: ordered child nodes.
    """

    def __init__(self, local: str, ns_uri: str | None = None,
                 prefix: str | None = None):
        super().__init__()
        if not is_valid_name(local) or ":" in local:
            raise XMLError(f"invalid element local name {local!r}")
        self.local = local
        self.prefix = prefix
        self.ns_uri = ns_uri
        self.attrs: list[Attr] = []
        self.ns_decls: dict[str | None, str] = {}
        self.children: list[Node] = []

    # -- identity -------------------------------------------------------------

    @property
    def qname(self) -> str:
        return f"{self.prefix}:{self.local}" if self.prefix else self.local

    def matches(self, local: str, ns_uri: str | None = None) -> bool:
        """Name test: local name plus (when given) namespace URI."""
        if self.local != local:
            return False
        return ns_uri is None or self.ns_uri == ns_uri

    # -- child management -------------------------------------------------------

    def append(self, node: Node) -> Node:
        """Append *node* (re-parenting it) and return it."""
        if node.parent is not None:
            node.parent.remove(node)
        node.parent = self
        self.children.append(node)
        node.mark_mutated()
        return node

    def extend(self, nodes) -> None:
        for node in list(nodes):
            self.append(node)

    def insert(self, index: int, node: Node) -> Node:
        if node.parent is not None:
            node.parent.remove(node)
        node.parent = self
        self.children.insert(index, node)
        node.mark_mutated()
        return node

    def remove(self, node: Node) -> None:
        self.children.remove(node)
        node.parent = None
        self.mark_mutated()

    def replace(self, old: Node, new: Node) -> None:
        """Replace child *old* with *new* in place."""
        index = self.children.index(old)
        if new.parent is not None:
            new.parent.remove(new)
        self.children[index] = new
        new.parent = self
        old.parent = None
        new.mark_mutated()

    def index(self, node: Node) -> int:
        return self.children.index(node)

    def append_text(self, data: str) -> Text:
        """Convenience: append a text node."""
        text = Text(data)
        return self.append(text)  # type: ignore[return-value]

    # -- attribute access ---------------------------------------------------------

    def _match_attr(self, name: str) -> Attr | None:
        if name.startswith("{"):
            uri, _, local = name[1:].partition("}")
            for attr in self.attrs:
                if attr.local == local and attr.ns_uri == uri:
                    return attr
            return None
        prefix, local = split_qname(name)
        if prefix is not None:
            uri = self.resolve_prefix(prefix)
            for attr in self.attrs:
                if attr.local == local and attr.ns_uri == uri:
                    return attr
            return None
        for attr in self.attrs:
            if attr.local == local and attr.ns_uri is None:
                return attr
        return None

    def get(self, name: str, default: str | None = None) -> str | None:
        """Get an attribute value.

        *name* may be a bare local name (no-namespace attribute),
        ``prefix:local`` (prefix resolved in this element's scope) or
        Clark notation ``{uri}local``.
        """
        attr = self._match_attr(name)
        return attr.value if attr is not None else default

    def set(self, name: str, value: str) -> None:
        """Set (or overwrite) an attribute.

        Accepts the same name forms as :meth:`get`.  For
        ``prefix:local`` names the prefix must already be resolvable in
        scope.
        """
        existing = self._match_attr(name)
        if existing is not None:
            existing.value = value
            self.mark_mutated()
            return
        if name.startswith("{"):
            uri, _, local = name[1:].partition("}")
            prefix = self.prefix_for(uri)
            self.attrs.append(Attr(local, value, prefix, uri))
            self.mark_mutated()
            return
        prefix, local = split_qname(name)
        if prefix is None:
            self.attrs.append(Attr(local, value))
        else:
            uri = self.resolve_prefix(prefix)
            if uri is None:
                raise NamespaceError(
                    f"prefix {prefix!r} is not bound in scope"
                )
            self.attrs.append(Attr(local, value, prefix, uri))
        self.mark_mutated()

    def delete_attr(self, name: str) -> bool:
        """Remove an attribute if present; returns whether it existed."""
        attr = self._match_attr(name)
        if attr is None:
            return False
        self.attrs.remove(attr)
        self.mark_mutated()
        return True

    # -- namespaces -----------------------------------------------------------

    def declare_namespace(self, prefix: str | None, uri: str) -> None:
        """Add an ``xmlns`` declaration on this element."""
        if prefix is not None and not is_valid_name(prefix):
            raise NamespaceError(f"invalid namespace prefix {prefix!r}")
        self.ns_decls[prefix] = uri
        self.mark_mutated()

    def in_scope_namespaces(self) -> dict[str | None, str]:
        """All namespace bindings in scope at this element.

        The ``xml`` prefix is implicitly bound; a default-namespace
        binding to ``""`` (an undeclaration) is dropped from the result.
        """
        bindings: dict[str | None, str] = {"xml": XML_NS}
        chain: list[Element] = []
        node: Node | None = self
        while isinstance(node, Element):
            chain.append(node)
            node = node.parent
        for element in reversed(chain):
            bindings.update(element.ns_decls)
        if bindings.get(None) == "":
            del bindings[None]
        return bindings

    def resolve_prefix(self, prefix: str | None) -> str | None:
        """Resolve *prefix* against in-scope bindings (``None`` = default)."""
        if prefix == "xml":
            return XML_NS
        node: Node | None = self
        while isinstance(node, Element):
            if prefix in node.ns_decls:
                uri = node.ns_decls[prefix]
                return uri or None
            node = node.parent
        return None

    def prefix_for(self, uri: str) -> str | None:
        """Find an in-scope prefix bound to *uri* (``None`` if default)."""
        for prefix, bound in self.in_scope_namespaces().items():
            if bound == uri:
                return prefix
        raise NamespaceError(f"no in-scope prefix for namespace {uri!r}")

    # -- traversal --------------------------------------------------------------

    def iter(self, local: str | None = None, ns_uri: str | None = None):
        """Yield this element and all descendant elements, document order.

        With *local* (and optionally *ns_uri*) given, only matching
        elements are yielded.
        """
        if local is None or self.matches(local, ns_uri):
            yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter(local, ns_uri)

    def child_elements(self) -> list["Element"]:
        """Direct element children."""
        return [c for c in self.children if isinstance(c, Element)]

    def find(self, local: str, ns_uri: str | None = None) -> "Element | None":
        """First descendant element matching the name test."""
        for element in self.iter(local, ns_uri):
            if element is not self:
                return element
        return None

    def findall(self, local: str, ns_uri: str | None = None) -> list["Element"]:
        """All descendant elements matching the name test."""
        return [e for e in self.iter(local, ns_uri) if e is not self]

    def first_child(self, local: str,
                    ns_uri: str | None = None) -> "Element | None":
        """First *direct* child element matching the name test."""
        for child in self.child_elements():
            if child.matches(local, ns_uri):
                return child
        return None

    def text_content(self) -> str:
        """Concatenated character data of all descendant text nodes."""
        parts = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.data)
            elif isinstance(child, Element):
                parts.append(child.text_content())
        return "".join(parts)

    def get_element_by_id(self, value: str) -> "Element | None":
        """Find the descendant-or-self element whose Id/ID/id equals *value*.

        Returns the first match in document order.  Security-sensitive
        callers (same-document signature references) must instead use
        :meth:`get_elements_by_id` and treat multiple matches as an
        error — silently taking the first match is the classic XML
        signature wrapping vector.
        """
        matches = self._id_index().get(value)
        return matches[0] if matches else None

    def get_elements_by_id(self, value: str,
                           limit: int = 0) -> list["Element"]:
        """All descendant-or-self elements whose Id/ID/id equals *value*.

        A well-formed signed document has at most one; more than one
        means the Id landscape is ambiguous (wrapping attack surface).
        With *limit* > 0, at most that many matches are returned
        (callers probing for ambiguity only need two).  Lookups ride a
        revision-stamped full-subtree Id index cached on this element:
        a signature with N references costs one scan instead of N, and
        any mutation in the subtree stamps this element a fresh
        revision, dropping the index — a stale map can never resolve an
        Id in a tampered tree.
        """
        matches = self._id_index().get(value, ())
        if limit and len(matches) > limit:
            return list(matches[:limit])
        return list(matches)

    def _id_index(self) -> dict[str, tuple["Element", ...]]:
        """Id → elements (document order) for this subtree, memoized.

        The memo is keyed on this element's revision stamp, which every
        mutation in the subtree refreshes (``mark_mutated`` stamps all
        ancestors), so the index is rebuilt the moment the subtree
        changes in any way.
        """
        cached = self.__dict__.get("_id_index_memo")
        if cached is not None and cached[0] == self.revision:
            return cached[1]
        index: dict[str, list[Element]] = {}
        stack: list[Element] = [self]
        while stack:
            node = stack.pop()
            node_ids = None
            for attr in node.attrs:
                if attr.local in _ID_ATTRIBUTE_NAMES:
                    value = attr.value
                    if node_ids is None:
                        node_ids = [value]
                    elif value in node_ids:
                        # One element never matches twice for one value
                        # (the pre-index scan broke after a match).
                        continue
                    else:
                        node_ids.append(value)
                    index.setdefault(value, []).append(node)
            children = node.children
            for i in range(len(children) - 1, -1, -1):
                child = children[i]
                if isinstance(child, Element):
                    stack.append(child)
        frozen = {value: tuple(nodes) for value, nodes in index.items()}
        self._id_index_memo = (self.revision, frozen)
        return frozen

    # -- copying ---------------------------------------------------------------

    def copy(self) -> "Element":
        clone = Element(self.local, self.ns_uri, self.prefix)
        clone.attrs = [a.copy() for a in self.attrs]
        clone.ns_decls = dict(self.ns_decls)
        for child in self.children:
            clone.append(child.copy())
        return clone

    def detached_copy(self) -> "Element":
        """Deep copy that *pins the inherited namespace context*.

        Namespace bindings that were inherited from ancestors are
        re-declared on the copy, so the clone means the same thing
        standing alone.  Used when moving subtrees between documents
        (e.g. lifting a manifest out of a cluster for signing).
        """
        clone = self.copy()
        inherited = self.in_scope_namespaces()
        del inherited["xml"]
        for prefix, uri in inherited.items():
            clone.ns_decls.setdefault(prefix, uri)
        clone.mark_mutated()
        return clone

    def __repr__(self):
        return f"<Element {self.qname} attrs={len(self.attrs)} children={len(self.children)}>"


class Document(Node):
    """A document node: optional PIs/comments around exactly one root."""

    def __init__(self, root: Element | None = None):
        super().__init__()
        self.children: list[Node] = []
        if root is not None:
            self.append(root)

    @property
    def root(self) -> Element:
        for child in self.children:
            if isinstance(child, Element):
                return child
        raise XMLError("document has no root element")

    def append(self, node: Node) -> Node:
        if isinstance(node, Text):
            raise XMLError("text is not allowed at document level")
        if isinstance(node, Element) and any(
            isinstance(c, Element) for c in self.children
        ):
            raise XMLError("document already has a root element")
        if node.parent is not None:
            node.parent.remove(node)
        node.parent = self
        self.children.append(node)
        node.mark_mutated()
        return node

    def remove(self, node: Node) -> None:
        self.children.remove(node)
        node.parent = None
        self.mark_mutated()

    def copy(self) -> "Document":
        doc = Document()
        for child in self.children:
            doc.append(child.copy())
        return doc

    def __repr__(self):
        try:
            return f"<Document root={self.root.qname}>"
        except XMLError:
            return "<Document (empty)>"


def element(qname: str, ns_uri: str | None = None, *,
            attrs: dict[str, str] | None = None,
            text: str | None = None,
            children: list[Element] | None = None,
            nsmap: dict[str | None, str] | None = None) -> Element:
    """Build an element tree declaratively.

    ``qname`` may be ``prefix:local``; when *ns_uri* is given, the
    element is placed in that namespace (declared via *nsmap* or bound
    by an ancestor at serialization time).
    """
    prefix, local = split_qname(qname)
    node = Element(local, ns_uri, prefix)
    if nsmap:
        for p, uri in nsmap.items():
            node.declare_namespace(p, uri)
    if attrs:
        for name, value in attrs.items():
            node.set(name, value)
    if text is not None:
        node.append_text(text)
    if children:
        node.extend(children)
    return node
