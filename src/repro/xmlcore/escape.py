"""Character escaping for XML serialization and canonicalization.

Canonical XML 1.0 prescribes exact escaping rules that differ between
text nodes and attribute values; the plain serializer reuses them so a
parse → serialize round trip is loss-free.
"""

from __future__ import annotations

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", "\r": "&#xD;"}
_ATTR_ESCAPES = {
    "&": "&amp;", "<": "&lt;", '"': "&quot;",
    "\t": "&#x9;", "\n": "&#xA;", "\r": "&#xD;",
}


def escape_text(value: str) -> str:
    """Escape character data per C14N §2.3 (text nodes)."""
    if not any(c in value for c in "&<>\r"):
        return value
    return "".join(_TEXT_ESCAPES.get(c, c) for c in value)


def escape_attribute(value: str) -> str:
    """Escape an attribute value per C14N §2.3 (attribute nodes)."""
    if not any(c in value for c in "&<\"\t\n\r"):
        return value
    return "".join(_ATTR_ESCAPES.get(c, c) for c in value)
