"""Canonical XML 1.0 (XML-C14N) and Exclusive XML Canonicalization.

The paper (§5.4, Fig 6) motivates canonicalization precisely: XML allows
syntactic variation among semantically equivalent documents, and hash
functions are sensitive to syntax, so a signature must be computed over
a canonical byte stream.  This module renders a :class:`Document` or an
element subtree to the canonical octet sequence defined by:

* Canonical XML 1.0 (W3C Recommendation, 15 March 2001) — the paper's
  reference [32]; and
* Exclusive XML Canonicalization 1.0 — the variant used when signed
  subtrees are re-enveloped, with ``InclusiveNamespaces PrefixList``
  support.

Both come in with- and without-comments flavours.  Subtree
canonicalization honours the inherited namespace context and (inclusive
form only) inherits ``xml:*`` attributes from excluded ancestors, per
the respective specs.

Two consumption models share one serializer:

* :func:`canonicalize` materialises the whole canonical octet string —
  the reference semantics, and what the digest cache stores.
* :func:`canonicalize_into` streams canonical octets through a sink
  callback in bounded chunks, never holding the full output;
  :func:`digest_canonical` feeds those chunks straight into a
  provider-supplied incremental hash context.  The chunk sequence
  concatenates to exactly the :func:`canonicalize` output (the
  differential fuzz suite in ``tests/xmlcore/test_c14n_stream.py``
  holds this byte-identity across algorithms and guard trips).
"""

from __future__ import annotations

from repro.errors import CanonicalizationError
from repro.perf import metrics
from repro.xmlcore.escape import escape_attribute, escape_text
from repro.xmlcore.names import XML_NS
from repro.xmlcore.tree import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

# Algorithm identifiers, as used in ds:CanonicalizationMethod/@Algorithm.
C14N = "http://www.w3.org/TR/2001/REC-xml-c14n-20010315"
C14N_WITH_COMMENTS = C14N + "#WithComments"
EXC_C14N = "http://www.w3.org/2001/10/xml-exc-c14n#"
EXC_C14N_WITH_COMMENTS = EXC_C14N + "WithComments"

ALL_C14N_ALGORITHMS = (
    C14N,
    C14N_WITH_COMMENTS,
    EXC_C14N,
    EXC_C14N_WITH_COMMENTS,
)

# Streaming flush threshold, in characters of pending canonical text.
# Chunks therefore stay small regardless of document size; the guard is
# charged per flushed chunk, so a quota trip truncates the stream at a
# chunk boundary — a strict prefix of the whole-tree output.
_CHUNK_CHARS = 4096


def canonicalize(node: Node, algorithm: str = C14N,
                 inclusive_prefixes: tuple[str, ...] = (),
                 *, guard=None) -> bytes:
    """Render *node* (Document or Element subtree) canonically.

    Args:
        node: the document or apex element to canonicalize.
        algorithm: one of the four C14N algorithm URIs.
        inclusive_prefixes: for exclusive C14N, the
            ``InclusiveNamespaces PrefixList`` entries (``"#default"``
            names the default namespace).
        guard: optional :class:`~repro.resilience.limits.ResourceGuard`;
            when set, the produced octets are charged against its
            cumulative c14n-output quota and its deadline is checked,
            so a hostile document cannot canonicalize into unbounded
            memory during verification.

    Returns:
        The canonical octet sequence (UTF-8).
    """
    exclusive, with_comments = _parse_algorithm(algorithm)
    if guard is not None:
        guard.check_deadline()
    with metrics.timer("c14n.canonicalize"):
        out: list[str] = []
        writer = _Canonicalizer(
            exclusive,
            with_comments,
            frozenset(inclusive_prefixes),
            out.append,
        )
        writer.write_node(node)
        octets = "".join(out).encode("utf-8")
    metrics.counter("c14n.octets").increment(len(octets))
    if guard is not None:
        guard.charge_c14n_output(len(octets))
    return octets


def canonicalize_into(node: Node, write, algorithm: str = C14N,
                      inclusive_prefixes: tuple[str, ...] = (),
                      *, guard=None) -> int:
    """Stream the canonical form of *node* into the *write* callback.

    *write* receives ``bytes`` chunks whose concatenation is exactly
    the :func:`canonicalize` output; no full output string is ever
    materialised.  With *guard* set, each chunk is charged against the
    c14n-output quota **before** it is emitted, so on a quota trip the
    sink has received a strict prefix of the canonical octets and the
    guard has committed only what was emitted.

    Returns:
        The total number of octets emitted.
    """
    exclusive, with_comments = _parse_algorithm(algorithm)
    if guard is not None:
        guard.check_deadline()
    with metrics.timer("c14n.stream"):
        sink = _ChunkSink(write, guard)
        writer = _Canonicalizer(
            exclusive,
            with_comments,
            frozenset(inclusive_prefixes),
            sink.write,
        )
        writer.write_node(node)
        sink.flush()
    metrics.counter("c14n.octets").increment(sink.total)
    return sink.total


def digest_canonical(node: Node, digest_algorithm: str,
                     c14n_algorithm: str = C14N,
                     inclusive_prefixes: tuple[str, ...] = (),
                     *, provider=None, guard=None) -> bytes:
    """Digest the canonical form of *node* without materialising it.

    Canonical chunks are fed straight into an incremental hash context
    from *provider* (default provider when ``None``), so the peak
    memory cost is one chunk rather than the whole canonical string.
    This is the streaming fast path the XMLDSig reference processor
    rides when the digest cache holds no precomputed octets.
    """
    if provider is None:
        from repro.primitives.provider import get_provider
        provider = get_provider()
    context = provider.hash_context(digest_algorithm)
    canonicalize_into(
        node,
        context.update,
        c14n_algorithm,
        inclusive_prefixes,
        guard=guard,
    )
    return context.digest()


def _parse_algorithm(algorithm: str) -> tuple[bool, bool]:
    """Map an algorithm URI to ``(exclusive, with_comments)`` flags."""
    if algorithm not in ALL_C14N_ALGORITHMS:
        raise CanonicalizationError(f"unknown c14n algorithm {algorithm!r}")
    exclusive = algorithm in (EXC_C14N, EXC_C14N_WITH_COMMENTS)
    with_comments = algorithm in (C14N_WITH_COMMENTS, EXC_C14N_WITH_COMMENTS)
    return exclusive, with_comments


class _ChunkSink:
    """Accumulates canonical text and flushes bounded UTF-8 chunks.

    The guard is charged per flushed chunk (check-before-commit), so a
    trip mid-stream leaves the cumulative charge equal to the octets
    actually delivered downstream.
    """

    __slots__ = ("_emit", "_guard", "_parts", "_pending", "total")

    def __init__(self, emit, guard):
        self._emit = emit
        self._guard = guard
        self._parts: list[str] = []
        self._pending = 0
        self.total = 0

    def write(self, piece: str) -> None:
        self._parts.append(piece)
        self._pending += len(piece)
        if self._pending >= _CHUNK_CHARS:
            self.flush()

    def flush(self) -> None:
        if not self._parts:
            return
        data = "".join(self._parts).encode("utf-8")
        self._parts.clear()
        self._pending = 0
        guard = self._guard
        if guard is not None:
            guard.check_deadline()
            guard.charge_c14n_output(len(data))
        self.total += len(data)
        self._emit(data)


# Work-stack item tags for the iterative element writer.
_START = 0
_LIT = 1


class _Canonicalizer:
    """Streams canonical text pieces into a ``write(str)`` callback.

    The element walk is iterative (explicit work stack) and threads the
    in-scope namespace axis incrementally: each element's axis is its
    parent's axis updated with the element's own declarations, so the
    per-element cost no longer grows with tree depth the way repeated
    ``in_scope_namespaces()`` ancestor walks did.
    """

    def __init__(self, exclusive: bool, with_comments: bool,
                 inclusive_prefixes: frozenset[str], write):
        self.exclusive = exclusive
        self.with_comments = with_comments
        self.inclusive_prefixes = inclusive_prefixes
        self.write = write

    # -- top-level entry points -------------------------------------------------

    def write_node(self, node: Node) -> None:
        if isinstance(node, Document):
            self.write_document(node)
        elif isinstance(node, Element):
            self.write_subtree(node)
        else:
            raise CanonicalizationError(
                f"cannot canonicalize a {type(node).__name__} node"
            )

    def write_document(self, document: Document) -> None:
        root_seen = False
        for child in document.children:
            if isinstance(child, Element):
                root_seen = True
                self._element(child, rendered={}, apex=True)
            elif isinstance(child, ProcessingInstruction):
                if root_seen:
                    self.write("\n")
                self._pi(child)
                if not root_seen:
                    self.write("\n")
            elif isinstance(child, Comment) and self.with_comments:
                if root_seen:
                    self.write("\n")
                self._comment(child)
                if not root_seen:
                    self.write("\n")

    def write_subtree(self, element: Element) -> None:
        self._element(element, rendered={}, apex=True)

    # -- node renderers ------------------------------------------------------------

    def _element(self, element: Element, rendered: dict[str | None, str],
                 apex: bool) -> None:
        write = self.write
        with_comments = self.with_comments
        # The apex namespace axis still needs the ancestor walk; every
        # descendant axis is derived incrementally in the loop below.
        apex_axis = element.in_scope_namespaces()
        apex_axis.pop("xml", None)  # the implicit xml binding: never emitted
        stack: list = [(_START, element, rendered, apex_axis, apex)]
        while stack:
            item = stack.pop()
            if item[0] == _LIT:
                write(item[1])
                continue
            _, element, rendered, ns_axis, apex = item

            if self.exclusive:
                to_render = self._exclusive_ns(element, ns_axis, rendered)
            else:
                to_render = {
                    prefix: uri for prefix, uri in ns_axis.items()
                    if rendered.get(prefix) != uri
                }
            emit_default_undecl = (
                None not in ns_axis and rendered.get(None) not in (None, "")
            )

            if to_render or emit_default_undecl:
                child_rendered = dict(rendered)
                child_rendered.update(to_render)
                if emit_default_undecl:
                    child_rendered.pop(None, None)
            else:
                child_rendered = rendered

            attrs = list(element.attrs)
            if apex and not self.exclusive \
                    and isinstance(element.parent, Element):
                attrs = self._inherit_xml_attributes(element, attrs)

            self._check_prefixes(element, ns_axis)

            write(f"<{element.qname}")
            ns_items = sorted(to_render.items(), key=lambda kv: kv[0] or "")
            if emit_default_undecl:
                ns_items.insert(0, (None, ""))
            for prefix, uri in ns_items:
                name = f"xmlns:{prefix}" if prefix else "xmlns"
                write(f' {name}="{escape_attribute(uri)}"')
            for attr in sorted(attrs, key=lambda a: (a.ns_uri or "", a.local)):
                write(f' {attr.qname}="{escape_attribute(attr.value)}"')
            write(">")

            stack.append((_LIT, f"</{element.qname}>"))
            children = element.children
            for index in range(len(children) - 1, -1, -1):
                child = children[index]
                if isinstance(child, Element):
                    decls = child.ns_decls
                    if decls:
                        child_axis = dict(ns_axis)
                        for prefix, uri in decls.items():
                            if prefix == "xml":
                                continue
                            if prefix is None and uri == "":
                                child_axis.pop(None, None)
                            else:
                                child_axis[prefix] = uri
                    else:
                        child_axis = ns_axis
                    stack.append(
                        (_START, child, child_rendered, child_axis, False)
                    )
                elif isinstance(child, Text):
                    stack.append((_LIT, escape_text(child.data)))
                elif isinstance(child, ProcessingInstruction):
                    data = f" {child.data}" if child.data else ""
                    stack.append((_LIT, f"<?{child.target}{data}?>"))
                elif isinstance(child, Comment) and with_comments:
                    stack.append((_LIT, f"<!--{child.data}-->"))

    def _exclusive_ns(self, element: Element,
                      ns_axis: dict[str | None, str],
                      rendered: dict[str | None, str]) -> dict[str | None, str]:
        """Namespace nodes to render under exclusive C14N."""
        utilized: set[str | None] = {element.prefix}
        for attr in element.attrs:
            if attr.prefix is not None:
                utilized.add(attr.prefix)
        for prefix in self.inclusive_prefixes:
            utilized.add(None if prefix == "#default" else prefix)
        to_render = {}
        for prefix in utilized:
            if prefix == "xml":
                continue
            if prefix in ns_axis and rendered.get(prefix) != ns_axis[prefix]:
                to_render[prefix] = ns_axis[prefix]
        return to_render

    @staticmethod
    def _inherit_xml_attributes(element: Element, attrs):
        """Pull ``xml:*`` attributes from excluded ancestors (C14N §2.4)."""
        present = {a.local for a in attrs if a.ns_uri == XML_NS}
        inherited: dict[str, "object"] = {}
        ancestor = element.parent
        while isinstance(ancestor, Element):
            for attr in ancestor.attrs:
                if attr.ns_uri == XML_NS and attr.local not in present \
                        and attr.local not in inherited:
                    inherited[attr.local] = attr
            ancestor = ancestor.parent
        return attrs + [a.copy() for a in inherited.values()]

    def _check_prefixes(self, element: Element,
                        ns_axis: dict[str | None, str]) -> None:
        if element.prefix and element.prefix != "xml" \
                and element.prefix not in ns_axis:
            raise CanonicalizationError(
                f"element prefix {element.prefix!r} is not bound in scope"
            )
        for attr in element.attrs:
            if attr.prefix and attr.prefix != "xml" \
                    and attr.prefix not in ns_axis:
                raise CanonicalizationError(
                    f"attribute prefix {attr.prefix!r} is not bound in scope"
                )

    def _pi(self, pi: ProcessingInstruction) -> None:
        data = f" {pi.data}" if pi.data else ""
        self.write(f"<?{pi.target}{data}?>")

    def _comment(self, comment: Comment) -> None:
        self.write(f"<!--{comment.data}-->")
