"""Canonical XML 1.0 (XML-C14N) and Exclusive XML Canonicalization.

The paper (§5.4, Fig 6) motivates canonicalization precisely: XML allows
syntactic variation among semantically equivalent documents, and hash
functions are sensitive to syntax, so a signature must be computed over
a canonical byte stream.  This module renders a :class:`Document` or an
element subtree to the canonical octet sequence defined by:

* Canonical XML 1.0 (W3C Recommendation, 15 March 2001) — the paper's
  reference [32]; and
* Exclusive XML Canonicalization 1.0 — the variant used when signed
  subtrees are re-enveloped, with ``InclusiveNamespaces PrefixList``
  support.

Both come in with- and without-comments flavours.  Subtree
canonicalization honours the inherited namespace context and (inclusive
form only) inherits ``xml:*`` attributes from excluded ancestors, per
the respective specs.
"""

from __future__ import annotations

from repro.errors import CanonicalizationError
from repro.perf import metrics
from repro.xmlcore.escape import escape_attribute, escape_text
from repro.xmlcore.names import XML_NS
from repro.xmlcore.tree import (
    Comment, Document, Element, Node, ProcessingInstruction, Text,
)

# Algorithm identifiers, as used in ds:CanonicalizationMethod/@Algorithm.
C14N = "http://www.w3.org/TR/2001/REC-xml-c14n-20010315"
C14N_WITH_COMMENTS = C14N + "#WithComments"
EXC_C14N = "http://www.w3.org/2001/10/xml-exc-c14n#"
EXC_C14N_WITH_COMMENTS = EXC_C14N + "WithComments"

ALL_C14N_ALGORITHMS = (
    C14N, C14N_WITH_COMMENTS, EXC_C14N, EXC_C14N_WITH_COMMENTS,
)


def canonicalize(node: Node, algorithm: str = C14N,
                 inclusive_prefixes: tuple[str, ...] = (),
                 *, guard=None) -> bytes:
    """Render *node* (Document or Element subtree) canonically.

    Args:
        node: the document or apex element to canonicalize.
        algorithm: one of the four C14N algorithm URIs.
        inclusive_prefixes: for exclusive C14N, the
            ``InclusiveNamespaces PrefixList`` entries (``"#default"``
            names the default namespace).
        guard: optional :class:`~repro.resilience.limits.ResourceGuard`;
            when set, the produced octets are charged against its
            cumulative c14n-output quota and its deadline is checked,
            so a hostile document cannot canonicalize into unbounded
            memory during verification.

    Returns:
        The canonical octet sequence (UTF-8).
    """
    if algorithm not in ALL_C14N_ALGORITHMS:
        raise CanonicalizationError(f"unknown c14n algorithm {algorithm!r}")
    if guard is not None:
        guard.check_deadline()
    exclusive = algorithm in (EXC_C14N, EXC_C14N_WITH_COMMENTS)
    with_comments = algorithm in (C14N_WITH_COMMENTS, EXC_C14N_WITH_COMMENTS)
    with metrics.timer("c14n.canonicalize"):
        writer = _Canonicalizer(exclusive, with_comments,
                                frozenset(inclusive_prefixes))
        if isinstance(node, Document):
            writer.write_document(node)
        elif isinstance(node, Element):
            writer.write_subtree(node)
        else:
            raise CanonicalizationError(
                f"cannot canonicalize a {type(node).__name__} node"
            )
        octets = "".join(writer.out).encode("utf-8")
    metrics.counter("c14n.octets").increment(len(octets))
    if guard is not None:
        guard.charge_c14n_output(len(octets))
    return octets


class _Canonicalizer:
    def __init__(self, exclusive: bool, with_comments: bool,
                 inclusive_prefixes: frozenset[str]):
        self.exclusive = exclusive
        self.with_comments = with_comments
        self.inclusive_prefixes = inclusive_prefixes
        self.out: list[str] = []

    # -- top-level entry points -------------------------------------------------

    def write_document(self, document: Document) -> None:
        root_seen = False
        for child in document.children:
            if isinstance(child, Element):
                root_seen = True
                self._element(child, rendered={}, apex=True)
            elif isinstance(child, ProcessingInstruction):
                if root_seen:
                    self.out.append("\n")
                self._pi(child)
                if not root_seen:
                    self.out.append("\n")
            elif isinstance(child, Comment) and self.with_comments:
                if root_seen:
                    self.out.append("\n")
                self._comment(child)
                if not root_seen:
                    self.out.append("\n")

    def write_subtree(self, element: Element) -> None:
        self._element(element, rendered={}, apex=True)

    # -- node renderers ------------------------------------------------------------

    def _element(self, element: Element, rendered: dict[str | None, str],
                 apex: bool) -> None:
        ns_axis = element.in_scope_namespaces()
        ns_axis.pop("xml", None)  # the implicit xml binding is never emitted

        if self.exclusive:
            to_render = self._exclusive_ns(element, ns_axis, rendered)
        else:
            to_render = {
                prefix: uri for prefix, uri in ns_axis.items()
                if rendered.get(prefix) != uri
            }
        emit_default_undecl = (
            None not in ns_axis and rendered.get(None) not in (None, "")
        )

        child_rendered = dict(rendered)
        child_rendered.update(to_render)
        if emit_default_undecl:
            child_rendered.pop(None, None)

        attrs = list(element.attrs)
        if apex and not self.exclusive and isinstance(element.parent, Element):
            attrs = self._inherit_xml_attributes(element, attrs)

        self._check_prefixes(element, ns_axis)

        self.out.append(f"<{element.qname}")
        ns_items = sorted(to_render.items(), key=lambda kv: kv[0] or "")
        if emit_default_undecl:
            ns_items.insert(0, (None, ""))
        for prefix, uri in ns_items:
            name = f"xmlns:{prefix}" if prefix else "xmlns"
            self.out.append(f' {name}="{escape_attribute(uri)}"')
        for attr in sorted(attrs, key=lambda a: (a.ns_uri or "", a.local)):
            self.out.append(
                f' {attr.qname}="{escape_attribute(attr.value)}"'
            )
        self.out.append(">")

        for child in element.children:
            if isinstance(child, Element):
                self._element(child, child_rendered, apex=False)
            elif isinstance(child, Text):
                self.out.append(escape_text(child.data))
            elif isinstance(child, ProcessingInstruction):
                self._pi(child)
            elif isinstance(child, Comment) and self.with_comments:
                self._comment(child)
        self.out.append(f"</{element.qname}>")

    def _exclusive_ns(self, element: Element,
                      ns_axis: dict[str | None, str],
                      rendered: dict[str | None, str]) -> dict[str | None, str]:
        """Namespace nodes to render under exclusive C14N."""
        utilized: set[str | None] = {element.prefix}
        for attr in element.attrs:
            if attr.prefix is not None:
                utilized.add(attr.prefix)
        for prefix in self.inclusive_prefixes:
            utilized.add(None if prefix == "#default" else prefix)
        to_render = {}
        for prefix in utilized:
            if prefix == "xml":
                continue
            if prefix in ns_axis and rendered.get(prefix) != ns_axis[prefix]:
                to_render[prefix] = ns_axis[prefix]
        return to_render

    @staticmethod
    def _inherit_xml_attributes(element: Element, attrs):
        """Pull ``xml:*`` attributes from excluded ancestors (C14N §2.4)."""
        present = {a.local for a in attrs if a.ns_uri == XML_NS}
        inherited: dict[str, "object"] = {}
        ancestor = element.parent
        while isinstance(ancestor, Element):
            for attr in ancestor.attrs:
                if attr.ns_uri == XML_NS and attr.local not in present \
                        and attr.local not in inherited:
                    inherited[attr.local] = attr
            ancestor = ancestor.parent
        return attrs + [a.copy() for a in inherited.values()]

    def _check_prefixes(self, element: Element,
                        ns_axis: dict[str | None, str]) -> None:
        if element.prefix and element.prefix != "xml" \
                and element.prefix not in ns_axis:
            raise CanonicalizationError(
                f"element prefix {element.prefix!r} is not bound in scope"
            )
        for attr in element.attrs:
            if attr.prefix and attr.prefix != "xml" \
                    and attr.prefix not in ns_axis:
                raise CanonicalizationError(
                    f"attribute prefix {attr.prefix!r} is not bound in scope"
                )

    def _pi(self, pi: ProcessingInstruction) -> None:
        data = f" {pi.data}" if pi.data else ""
        self.out.append(f"<?{pi.target}{data}?>")

    def _comment(self, comment: Comment) -> None:
        self.out.append(f"<!--{comment.data}-->")
