"""XML name and character classes (XML 1.0, namespaces in XML).

Also hosts the namespace URI constants used across the security stack —
the XMLDSig, XMLEnc, XKMS and XACML vocabularies the paper builds on.
"""

from __future__ import annotations

import re

from repro.errors import NamespaceError

# Well-known namespace URIs.
XML_NS = "http://www.w3.org/XML/1998/namespace"
XMLNS_NS = "http://www.w3.org/2000/xmlns/"
DSIG_NS = "http://www.w3.org/2000/09/xmldsig#"
XMLENC_NS = "http://www.w3.org/2001/04/xmlenc#"
EXC_C14N_NS = "http://www.w3.org/2001/10/xml-exc-c14n#"
XKMS_NS = "http://www.w3.org/2002/03/xkms#"
XACML_NS = "urn:oasis:names:tc:xacml:2.0:policy:schema:os"
XACML_CTX_NS = "urn:oasis:names:tc:xacml:2.0:context:schema:os"
SMIL_NS = "http://www.w3.org/2001/SMIL20/Language"
# Vocabulary for the disc content hierarchy (our Blu-ray-style manifest).
DISC_NS = "urn:bda:bdmv:interactive-cluster"
MHP_PERMISSION_NS = "urn:dvb:mhp:2003:permissions"

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:-."

#: For pure-ASCII input this is exactly the Name production implemented
#: by the character classes below; non-ASCII names take the per-char
#: path because ``str.isalpha``/``str.isdigit`` accept characters the
#: regex cannot enumerate cheaply.
_ASCII_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_:.\-]*\Z")


def is_name_start_char(ch: str) -> bool:
    """True if *ch* can start an XML Name (ASCII + common Unicode ranges)."""
    code = ord(ch)
    if ch.isalpha() or ch in _NAME_START_EXTRA:
        return True
    return (
        0xC0 <= code <= 0xD6 or 0xD8 <= code <= 0xF6
        or 0xF8 <= code <= 0x2FF or 0x370 <= code <= 0x1FFF
        or 0x200C <= code <= 0x200D or 0x2070 <= code <= 0x218F
        or 0x2C00 <= code <= 0x2FEF or 0x3001 <= code <= 0xD7FF
        or 0xF900 <= code <= 0xFDCF or 0xFDF0 <= code <= 0xFFFD
        or 0x10000 <= code <= 0xEFFFF
    )


def is_name_char(ch: str) -> bool:
    """True if *ch* can appear inside an XML Name."""
    if is_name_start_char(ch) or ch.isdigit() or ch in _NAME_EXTRA:
        return True
    code = ord(ch)
    return code == 0xB7 or 0x0300 <= code <= 0x036F or 0x203F <= code <= 0x2040


def is_valid_name(name: str) -> bool:
    """True if *name* is a syntactically valid XML Name."""
    if not name:
        return False
    if name.isascii():
        return _ASCII_NAME_RE.match(name) is not None
    if not is_name_start_char(name[0]):
        return False
    return all(is_name_char(c) for c in name[1:])


def is_xml_whitespace(ch: str) -> bool:
    """True for the four XML whitespace characters."""
    return ch in " \t\r\n"


def is_xml_char(ch: str) -> bool:
    """True if *ch* is a legal XML 1.0 character."""
    code = ord(ch)
    return (
        code in (0x9, 0xA, 0xD)
        or 0x20 <= code <= 0xD7FF
        or 0xE000 <= code <= 0xFFFD
        or 0x10000 <= code <= 0x10FFFF
    )


def split_qname(qname: str) -> tuple[str | None, str]:
    """Split ``prefix:local`` into ``(prefix, local)``.

    Raises:
        NamespaceError: for empty parts or more than one colon.
    """
    if ":" not in qname:
        return None, qname
    prefix, _, local = qname.partition(":")
    if not prefix or not local or ":" in local:
        raise NamespaceError(f"malformed QName {qname!r}")
    return prefix, local
