"""A namespace-aware XML 1.0 parser built from scratch.

Supports the full surface the security stack needs: elements and
attributes with namespace processing, character/entity references,
CDATA sections, comments, processing instructions, the XML declaration,
and a skipped (but well-formedness-checked) DOCTYPE.  External entities
and DTD-defined entities are deliberately rejected — the classic XML
security posture against entity-expansion attacks, which matters for a
player that parses downloaded applications.

Structural resource attacks are contained by a
:class:`~repro.resilience.limits.ResourceGuard`: element descent runs
on an explicit work stack (never the Python call stack), so nesting
depth is a quota decision — exceeding it raises the typed
:class:`~repro.errors.ResourceLimitExceeded` instead of
``RecursionError`` — and input size, node count, attribute fan-out and
text-node size are metered as the document streams through.  Callers
on untrusted paths pass a guard explicitly (lint rule LIN106); the
documented default is ``ResourceGuard.default()``.

Errors carry 1-based line/column positions.
"""

from __future__ import annotations

import re

from repro.errors import NamespaceError, XMLSyntaxError
from repro.xmlcore.names import (
    XML_NS, is_name_char, is_name_start_char, is_xml_char,
    split_qname,
)
from repro.xmlcore.tree import (
    Attr, Comment, Document, Element, ProcessingInstruction, Text,
)

_PREDEFINED_ENTITIES = {
    "amp": "&", "lt": "<", "gt": ">", "apos": "'", "quot": '"',
}

#: Sentinel for "no limit" in the hot parse loops (plain ``float``
#: comparison instead of a ``None`` test per character).
_UNLIMITED = float("inf")

#: ASCII prefix of an XML Name.  For pure-ASCII names this is the whole
#: Name production; a non-ASCII continuation falls back to the exact
#: per-character classes (``is_name_char`` accepts more than any cheap
#: regex can enumerate).
_ASCII_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_:.\-]*")

#: Characters that are NOT legal XML 1.0 chars — the regex negation of
#: :func:`repro.xmlcore.names.is_xml_char`, used to vet whole runs of
#: text at once instead of per character.
_ILLEGAL_XML_RE = re.compile(
    "[^\t\n\r\u0020-\ud7ff\ue000-\ufffd\U00010000-\U0010ffff]"
)

#: A run of attribute-value characters needing no special handling:
#: everything up to the closing quote, ``<``, ``&`` or whitespace
#: normalization.  (Runs are still vetted with ``_ILLEGAL_XML_RE``.)
_ATTR_PLAIN_RE = {
    '"': re.compile('[^"<&\t\n]+'),
    "'": re.compile("[^'<&\t\n]+"),
}

#: A run of character-data characters needing no special handling.
#: ``>`` is excluded only so the ``]]>`` prohibition check keeps seeing
#: every ``>`` individually.
_TEXT_PLAIN_RE = re.compile("[^<&>]+")


def _default_guard():
    # Imported lazily: repro.resilience pulls in the network stack,
    # which imports repro.xmlcore — a module-level import here would
    # close that cycle while xmlcore is still initializing.
    from repro.resilience.limits import ResourceGuard

    return ResourceGuard.default()


class _Scanner:
    """Cursor over the source text with location-aware errors."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    def error(self, message: str, pos: int | None = None) -> XMLSyntaxError:
        at = self.pos if pos is None else pos
        line = self.source.count("\n", 0, at) + 1
        last_nl = self.source.rfind("\n", 0, at)
        column = at - last_nl
        return XMLSyntaxError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, n: int = 1) -> str:
        return self.source[self.pos:self.pos + n]

    def advance(self, n: int = 1) -> str:
        chunk = self.source[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def accept(self, literal: str) -> bool:
        if self.source.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise self.error(f"expected {literal!r}")

    def skip_whitespace(self) -> int:
        source = self.source
        pos = start = self.pos
        size = len(source)
        while pos < size and source[pos] in " \t\r\n":
            pos += 1
        self.pos = pos
        return pos - start

    def read_name(self) -> str:
        source = self.source
        match = _ASCII_NAME_RE.match(source, self.pos)
        if match is not None:
            start, end = self.pos, match.end()
            if end < len(source) and source[end] > "\x7f":
                # Rare: the name continues with non-ASCII characters —
                # finish with the exact per-character classes.
                self.pos = end
                while not self.eof() and is_name_char(source[self.pos]):
                    self.pos += 1
                end = self.pos
            else:
                self.pos = end
            return source[start:end]
        if self.eof() or not is_name_start_char(source[self.pos]):
            raise self.error("expected an XML name")
        start = self.pos
        self.pos += 1
        while not self.eof() and is_name_char(source[self.pos]):
            self.pos += 1
        return source[start:self.pos]

    def read_until(self, terminator: str, what: str) -> str:
        end = self.source.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.source[self.pos:end]
        self.pos = end + len(terminator)
        return chunk


class Parser:
    """Parses a complete document or a standalone element fragment.

    *guard* meters the input against resource quotas; when omitted,
    a fresh :meth:`ResourceGuard.default` is used.  Pass an explicit
    guard on untrusted paths so the policy decision is visible (and
    so one guard can meter a whole session).
    """

    def __init__(self, source: str | bytes, *, guard=None):
        self.guard = guard if guard is not None else _default_guard()
        self.guard.check_input_size(len(source))
        if isinstance(source, bytes):
            source = self._decode(source)
        # Normalize line endings per XML 1.0 §2.11 before any processing.
        source = source.replace("\r\n", "\n").replace("\r", "\n")
        self._scanner = _Scanner(source)

    @staticmethod
    def _decode(raw: bytes) -> str:
        if raw.startswith(b"\xef\xbb\xbf"):
            raw = raw[3:]
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XMLSyntaxError(f"input is not valid UTF-8: {exc}") from None

    # -- entry points -----------------------------------------------------------

    def parse_document(self) -> Document:
        """Parse a full document: prolog, one root element, misc trailer."""
        s = self._scanner
        document = Document()
        self._parse_prolog(document)
        root = self._parse_element(scope=[{None: None, "xml": XML_NS}])
        document.append(root)
        while True:
            s.skip_whitespace()
            if s.eof():
                break
            if s.accept("<!--"):
                document.append(Comment(self._finish_comment()))
            elif s.accept("<?"):
                document.append(self._finish_pi())
            else:
                raise s.error("content after document root")
        return document

    def parse_fragment(self) -> Element:
        """Parse a standalone element (leading prolog allowed)."""
        document = self.parse_document()
        root = document.root
        document.remove(root)
        return root

    # -- prolog -------------------------------------------------------------------

    def _parse_prolog(self, document: Document) -> None:
        s = self._scanner
        if s.accept("<?xml"):
            s.read_until("?>", "XML declaration")
        seen_doctype = False
        while True:
            s.skip_whitespace()
            if s.accept("<!--"):
                document.append(Comment(self._finish_comment()))
            elif s.peek(2) == "<?":
                s.advance(2)
                document.append(self._finish_pi())
            elif s.peek(9) == "<!DOCTYPE":
                if seen_doctype:
                    raise s.error("multiple DOCTYPE declarations")
                seen_doctype = True
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        """Skip a DOCTYPE declaration, rejecting entity definitions."""
        s = self._scanner
        s.expect("<!DOCTYPE")
        depth = 0
        start = s.pos
        while True:
            if s.eof():
                raise s.error("unterminated DOCTYPE")
            ch = s.advance()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                break
        body = s.source[start:s.pos]
        if "<!ENTITY" in body:
            raise s.error(
                "DTD entity definitions are not allowed "
                "(security hardening)", start,
            )

    # -- element ------------------------------------------------------------------

    def _parse_element(
        self, scope: list[dict[str | None, str | None]]
    ) -> Element:
        """Parse one element and its whole subtree, iteratively.

        Descent runs on an explicit ``stack`` of
        ``(element, start-tag qname)`` pairs rather than Python
        recursion, so arbitrarily deep input can never overflow the
        interpreter stack: the depth quota is enforced by the guard
        and everything beyond it is a typed error.
        """
        s = self._scanner
        guard = self.guard
        limits = guard.limits
        max_depth = (limits.max_element_depth
                     if limits.max_element_depth is not None else _UNLIMITED)
        max_text = (limits.max_text_bytes
                    if limits.max_text_bytes is not None else _UNLIMITED)
        # Remaining node budget for this parse; committed to the guard
        # once at the end (or at the moment it would be exceeded), so
        # the hot loop pays one integer compare per node, not a call.
        if limits.max_node_count is not None:
            node_budget = limits.max_node_count - guard.node_count
        else:
            node_budget = _UNLIMITED
        nodes = 0

        root, root_qname, self_closing = self._parse_start_tag(scope)
        nodes = 1
        if nodes > node_budget:
            guard.charge_nodes(nodes)
        if self_closing:
            scope.pop()
            guard.charge_nodes(nodes)
            return root

        stack: list[tuple[Element, str]] = [(root, root_qname)]
        if len(stack) > max_depth:
            guard.check_depth(len(stack))
        current = root
        text_parts: list[str] = []
        text_len = 0

        while stack:
            if s.eof():
                raise s.error(
                    f"unexpected end of input inside <{current.qname}>"
                )
            ch = s.source[s.pos]
            if ch == "<":
                if s.accept("</"):
                    if text_parts:
                        current.append(Text("".join(text_parts)))
                        text_parts = []
                        text_len = 0
                        nodes += 1
                        if nodes > node_budget:
                            guard.charge_nodes(nodes)
                    close_pos = s.pos
                    end_name = s.read_name()
                    open_qname = stack[-1][1]
                    if end_name != open_qname:
                        raise s.error(
                            f"mismatched end tag </{end_name}> "
                            f"for <{open_qname}>",
                            close_pos,
                        )
                    s.skip_whitespace()
                    s.expect(">")
                    scope.pop()
                    stack.pop()
                    if stack:
                        current = stack[-1][0]
                elif s.accept("<!--"):
                    if text_parts:
                        current.append(Text("".join(text_parts)))
                        text_parts = []
                        text_len = 0
                        nodes += 1
                    current.append(Comment(self._finish_comment()))
                    nodes += 1
                    if nodes > node_budget:
                        guard.charge_nodes(nodes)
                elif s.accept("<![CDATA["):
                    if text_parts:
                        current.append(Text("".join(text_parts)))
                        text_parts = []
                        text_len = 0
                        nodes += 1
                    data = s.read_until("]]>", "CDATA section")
                    if len(data) > max_text:
                        guard.check_text_size(len(data))
                    current.append(Text(data, is_cdata=True))
                    nodes += 1
                    if nodes > node_budget:
                        guard.charge_nodes(nodes)
                elif s.accept("<?"):
                    if text_parts:
                        current.append(Text("".join(text_parts)))
                        text_parts = []
                        text_len = 0
                        nodes += 1
                    current.append(self._finish_pi())
                    nodes += 1
                    if nodes > node_budget:
                        guard.charge_nodes(nodes)
                else:
                    if text_parts:
                        current.append(Text("".join(text_parts)))
                        text_parts = []
                        text_len = 0
                        nodes += 1
                    child, child_qname, child_closed = \
                        self._parse_start_tag(scope)
                    nodes += 1
                    if nodes > node_budget:
                        guard.charge_nodes(nodes)
                    current.append(child)
                    if child_closed:
                        scope.pop()
                    else:
                        stack.append((child, child_qname))
                        if len(stack) > max_depth:
                            guard.check_depth(len(stack))
                        current = child
            elif ch == "&":
                text_parts.append(self._read_reference())
                text_len += 1
                if text_len > max_text:
                    guard.check_text_size(text_len)
            elif ch == ">":
                # The ']]>' prohibition applies to the *expanded* text
                # of the current text node; entries in text_parts are
                # runs or single reference expansions, so the last two
                # characters may straddle an entry boundary.
                last = text_parts[-1] if text_parts else ""
                if last.endswith("]") and (
                    (len(last) >= 2 and last[-2] == "]")
                    or (len(last) == 1 and len(text_parts) >= 2
                        and text_parts[-2].endswith("]"))
                ):
                    raise s.error(
                        "']]>' is not allowed in character data"
                    )
                text_parts.append(">")
                text_len += 1
                s.pos += 1
                if text_len > max_text:
                    guard.check_text_size(text_len)
            else:
                # A whole run of ordinary characters at once; '>' stays
                # out of runs so the ']]>' check above sees each one.
                run = _TEXT_PLAIN_RE.match(s.source, s.pos).group()
                bad = _ILLEGAL_XML_RE.search(run)
                if bad is not None:
                    s.pos += bad.start()
                    self._check_char(s.source[s.pos])
                text_parts.append(run)
                text_len += len(run)
                s.pos += len(run)
                if text_len > max_text:
                    guard.check_text_size(text_len)

        guard.charge_nodes(nodes)
        return root

    def _parse_start_tag(
        self, scope: list[dict[str | None, str | None]]
    ) -> tuple[Element, str, bool]:
        """Scan one start tag; returns ``(element, qname, self_closing)``.

        Pushes the element's namespace bindings onto *scope* (via
        :meth:`_build_element`); the caller pops them when the element
        closes.
        """
        s = self._scanner
        guard = self.guard
        max_attrs = (guard.limits.max_attributes_per_element
                     if guard.limits.max_attributes_per_element is not None
                     else _UNLIMITED)
        s.expect("<")
        open_pos = s.pos
        qname = s.read_name()
        source = s.source
        raw_attrs: list[tuple[str, str, int]] = []
        while True:
            had_space = s.skip_whitespace() > 0
            ch = source[s.pos:s.pos + 1]
            if ch == ">":
                s.pos += 1
                self_closing = False
                break
            if ch == "/" and source.startswith("/>", s.pos):
                s.pos += 2
                self_closing = True
                break
            if not ch:
                raise s.error("unterminated start tag")
            if not had_space:
                raise s.error("whitespace required before attribute")
            attr_pos = s.pos
            attr_name = s.read_name()
            s.skip_whitespace()
            s.expect("=")
            s.skip_whitespace()
            raw_attrs.append((attr_name, self._read_attr_value(), attr_pos))
            if len(raw_attrs) > max_attrs:
                guard.check_attribute_count(len(raw_attrs))

        element = self._build_element(qname, raw_attrs, scope, open_pos)
        return element, qname, self_closing

    def _build_element(self, qname: str,
                       raw_attrs: list[tuple[str, str, int]],
                       scope: list[dict[str | None, str | None]],
                       open_pos: int) -> Element:
        s = self._scanner
        bindings: dict[str | None, str | None] = dict(scope[-1])
        declared: dict[str | None, str] = {}
        plain: list[tuple[str, str, int]] = []
        seen_raw: set[str] = set()
        for name, value, pos in raw_attrs:
            if name in seen_raw:
                raise s.error(f"duplicate attribute {name!r}", pos)
            seen_raw.add(name)
            if name == "xmlns":
                declared[None] = value
                bindings[None] = value or None
            elif name.startswith("xmlns:"):
                prefix = name[6:]
                if prefix == "xmlns" or (prefix == "xml" and value != XML_NS):
                    raise s.error(f"illegal namespace binding for {prefix!r}", pos)
                if not value:
                    raise s.error(
                        f"cannot undeclare prefix {prefix!r} in XML 1.0", pos
                    )
                declared[prefix] = value
                bindings[prefix] = value
            else:
                plain.append((name, value, pos))
        scope.append(bindings)

        try:
            prefix, local = split_qname(qname)
        except NamespaceError as exc:
            raise s.error(str(exc), open_pos) from None
        ns_uri = bindings.get(prefix) if prefix else bindings.get(None)
        if prefix and ns_uri is None:
            raise s.error(f"undeclared prefix {prefix!r}", open_pos)

        element = Element(local, ns_uri, prefix)
        element.ns_decls = declared

        seen_expanded: set[tuple[str | None, str]] = set()
        for name, value, pos in plain:
            try:
                a_prefix, a_local = split_qname(name)
            except NamespaceError as exc:
                raise s.error(str(exc), pos) from None
            a_uri = None
            if a_prefix is not None:
                a_uri = bindings.get(a_prefix)
                if a_uri is None:
                    raise s.error(f"undeclared prefix {a_prefix!r}", pos)
            key = (a_uri, a_local)
            if key in seen_expanded:
                raise s.error(
                    f"duplicate attribute {{{a_uri}}}{a_local}", pos
                )
            seen_expanded.add(key)
            element.attrs.append(Attr(a_local, value, a_prefix, a_uri))
        return element

    # -- attribute values -----------------------------------------------------------

    def _read_attr_value(self) -> str:
        s = self._scanner
        source = s.source
        max_text = (self.guard.limits.max_text_bytes
                    if self.guard.limits.max_text_bytes is not None
                    else _UNLIMITED)
        quote = s.advance()
        if quote not in "'\"":
            raise s.error("attribute value must be quoted", s.pos - 1)
        plain = _ATTR_PLAIN_RE[quote]
        parts: list[str] = []
        value_len = 0
        while True:
            # Consume a whole run of ordinary characters at once; the
            # loop below only ever sees the closing quote, '<', '&',
            # or whitespace needing normalization.
            match = plain.match(source, s.pos)
            if match is not None:
                run = match.group()
                bad = _ILLEGAL_XML_RE.search(run)
                if bad is not None:
                    s.pos += bad.start()
                    self._check_char(source[s.pos])
                s.pos = match.end()
                parts.append(run)
                value_len += len(run)
                if value_len > max_text:
                    self.guard.check_text_size(value_len)
            if s.eof():
                raise s.error("unterminated attribute value")
            ch = source[s.pos]
            if ch == quote:
                s.pos += 1
                break
            if ch == "<":
                raise s.error("'<' is not allowed in attribute values")
            if ch == "&":
                parts.append(self._read_reference())
            else:
                # Attribute-value normalization (XML 1.0 §3.3.3).
                parts.append(" ")
                s.pos += 1
            value_len += 1
            if value_len > max_text:
                self.guard.check_text_size(value_len)
        return "".join(parts)

    # -- misc constructs ------------------------------------------------------------

    def _read_reference(self) -> str:
        s = self._scanner
        start = s.pos
        s.expect("&")
        if s.accept("#x") or s.accept("#X"):
            digits = s.read_until(";", "character reference")
            try:
                code = int(digits, 16)
            except ValueError:
                raise s.error(f"bad hex character reference &#x{digits};", start)
        elif s.accept("#"):
            digits = s.read_until(";", "character reference")
            try:
                code = int(digits, 10)
            except ValueError:
                raise s.error(f"bad character reference &#{digits};", start)
        else:
            name = s.read_name()
            s.expect(";")
            try:
                return _PREDEFINED_ENTITIES[name]
            except KeyError:
                raise s.error(
                    f"undefined entity &{name}; (only predefined entities "
                    "are supported)", start,
                ) from None
        try:
            ch = chr(code)
        except (ValueError, OverflowError):
            raise s.error(f"character reference out of range", start) from None
        if not is_xml_char(ch):
            raise s.error(
                f"character reference to illegal XML character U+{code:04X}",
                start,
            )
        return ch

    def _finish_comment(self) -> str:
        s = self._scanner
        data = s.read_until("-->", "comment")
        if "--" in data or data.endswith("-"):
            raise s.error("'--' is not allowed inside comments")
        return data

    def _finish_pi(self) -> ProcessingInstruction:
        s = self._scanner
        target = s.read_name()
        if target.lower() == "xml":
            raise s.error("processing instruction target may not be 'xml'")
        if s.peek() == "?" :
            s.expect("?>")
            return ProcessingInstruction(target, "")
        s.skip_whitespace()
        data = s.read_until("?>", "processing instruction")
        return ProcessingInstruction(target, data)

    def _check_char(self, ch: str) -> None:
        if not is_xml_char(ch):
            raise self._scanner.error(
                f"illegal XML character U+{ord(ch):04X}"
            )


def parse_document(source: str | bytes, *, guard=None) -> Document:
    """Parse *source* into a :class:`Document`.

    *guard* is the :class:`ResourceGuard` metering this input; when
    omitted a fresh default guard applies the documented CE-device
    limits.
    """
    return Parser(source, guard=guard).parse_document()


def parse_element(source: str | bytes, *, guard=None) -> Element:
    """Parse *source* and return its root :class:`Element`.

    *guard* as for :func:`parse_document`.
    """
    return Parser(source, guard=guard).parse_fragment()
