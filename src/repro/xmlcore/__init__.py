"""XML substrate: parser, tree, serializer, canonicalization, XPath-lite.

Everything above this package manipulates XML exclusively through these
types — there is no dependency on :mod:`xml.etree` or ``lxml``.
"""

from repro.xmlcore.c14n import (
    ALL_C14N_ALGORITHMS, C14N, C14N_WITH_COMMENTS, EXC_C14N,
    EXC_C14N_WITH_COMMENTS, canonicalize,
)
from repro.xmlcore.names import (
    DISC_NS, DSIG_NS, EXC_C14N_NS, MHP_PERMISSION_NS, SMIL_NS, XACML_CTX_NS,
    XACML_NS, XKMS_NS, XML_NS, XMLENC_NS, XMLNS_NS, split_qname,
)
from repro.xmlcore.parser import Parser, parse_document, parse_element
from repro.xmlcore.serializer import serialize, serialize_bytes
from repro.xmlcore.tree import (
    Attr, Comment, Document, Element, Node, ProcessingInstruction, Text,
    element,
)
from repro.xmlcore.xpath import find_all, find_first

__all__ = [
    "Attr", "Comment", "Document", "Element", "Node",
    "ProcessingInstruction", "Text", "Parser",
    "parse_document", "parse_element", "serialize", "serialize_bytes",
    "canonicalize", "element", "find_all", "find_first", "split_qname",
    "C14N", "C14N_WITH_COMMENTS", "EXC_C14N", "EXC_C14N_WITH_COMMENTS",
    "ALL_C14N_ALGORITHMS",
    "XML_NS", "XMLNS_NS", "DSIG_NS", "XMLENC_NS", "EXC_C14N_NS", "XKMS_NS",
    "XACML_NS", "XACML_CTX_NS", "SMIL_NS", "DISC_NS", "MHP_PERMISSION_NS",
]
