"""Interprocedural taint-flow analysis over the repo's own source.

The analyzer proves (heuristically — see DESIGN.md §10 for the caveat
list) the paper's two trust-flow invariants:

* bytes from the other side of a trust boundary never reach script
  execution, playback or the network unverified (TNT201/TNT202), and a
  verification that was discarded by re-parsing does not count
  (TNT204);
* key material never flows into logs, ``repr`` output, exception text,
  findings reports or cache keys (TNT203).

Pipeline::

    sources --[extract IR per module]--> Program
            --[per-function label propagation + summaries]-->
            --[fixpoint over the call graph]-->
            --[reporting pass]--> findings

Per-function analysis is flow-sensitive in source order (two local
passes pick up loop-carried definitions), propagates labels through
assignments, attributes, containers, f-strings and calls, and records
a :class:`FunctionSummary` — which parameters flow to the return
value, which labels the return always carries, whether the return
passed a sanitizer, and which parameters reach which sink kinds.  The
global fixpoint iterates until no summary changes, then a final pass
mints findings with interprocedural flow traces in ``detail``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import taintspec as spec
from repro.analysis.callgraph import Program, extract_module
from repro.analysis.findings import AnalysisResult, display_path
from repro.analysis.taintspec import (
    REPARSED, SECRET, SINK_RULES, SINK_SECRET_OUT, SINK_TRIGGERS,
    TNT203, TNT204, UNTRUSTED, VERIFIED,
)

MAX_ROUNDS = 10
MAX_CHAIN = 8

#: labels -> origin strings; parameter markers are ``P0``, ``P1``, …
Labels = dict


def _is_param(label: str) -> bool:
    return label.startswith("P") and label[1:].isdigit()


def _merge(into: Labels, other: Labels) -> Labels:
    for label, origin in other.items():
        into.setdefault(label, origin)
    return into


@dataclass
class FunctionSummary:
    """What a caller needs to know about a callee.

    ``param_sinks`` holds ``(index, sink_kind)`` pairs only; the
    representative flow chain for each pair lives in a side table on
    the engine so summary equality (the fixpoint's termination test)
    stays small and stable.
    """

    returns_params: frozenset = frozenset()
    returns_labels: tuple = ()          # ((label, origin), ...) sorted
    sanitizes_return: bool = False
    param_sinks: tuple = ()             # ((index, kind), ...) sorted

    def sinks_for(self, index: int) -> tuple:
        return tuple(kind for i, kind in self.param_sinks
                     if i == index)


class _FunctionAnalysis:
    """Two-pass label propagation over one function's IR."""

    def __init__(self, engine: "TaintEngine", ir: dict, report: bool):
        self.engine = engine
        self.ir = ir
        self.report = report
        self.path = engine.paths[ir["module"]]
        self.untrusted_module = spec.module_is_untrusted(self.path)
        self.vars: dict[str, Labels] = {}
        self.var_types: dict[str, tuple] = {}
        self.return_labels: Labels = {}
        self.param_sinks: set = set()  # {(param index, sink kind)}
        self.short = ir["qname"].split(":", 1)[1]
        if ir["cls"] and ir["params"] and \
                ir["params"][0] in ("self", "cls"):
            self.var_types[ir["params"][0]] = (ir["module"], ir["cls"])

    # -- driver ---------------------------------------------------------------

    def run(self) -> FunctionSummary:
        for final in (False, True):
            self._reset_params()
            self.collect = final
            for op in self.ir["ops"]:
                self._op(op)
        returns_params = frozenset(
            int(label[1:]) for label in self.return_labels
            if _is_param(label)
        )
        returns_labels = tuple(sorted(
            (label, origin) for label, origin in self.return_labels.items()
            if label in spec.CONCRETE_LABELS and label != VERIFIED
        ))
        sanitizes = (VERIFIED in self.return_labels
                     and UNTRUSTED not in self.return_labels)
        param_sinks = tuple(sorted(self.param_sinks))
        return FunctionSummary(returns_params, returns_labels,
                               sanitizes, param_sinks)

    def _reset_params(self) -> None:
        for index, name in enumerate(self.ir["params"]):
            self.vars[name] = {f"P{index}": f"parameter {name!r}"}

    def _site(self, line: int) -> str:
        return f"{self.short} ({self.path}:{line})"

    # -- ops ------------------------------------------------------------------

    def _op(self, op: list) -> None:
        kind = op[0]
        if kind == "assign":
            _, targets, expr, line = op
            per_target = self._destructure(expr, len(targets))
            merged = self._eval(expr) if per_target is None else None
            for index, target in enumerate(targets):
                labels = merged if per_target is None \
                    else per_target[index]
                self.vars[target] = dict(labels)
                if target.startswith("self."):
                    self.engine.note_attr(
                        self.ir["module"], self.ir["cls"],
                        target.split(".", 1)[1], labels,
                    )
                self._track_type(target, expr)
        elif kind == "storesub":
            _, recv_hint, key_expr, value_expr, line = op
            key_labels = self._eval(key_expr)
            self._eval(value_expr)
            hint = recv_hint.rsplit(".", 1)[-1].lower()
            if any(token in hint for token in spec.CACHE_STORE_TOKENS):
                self._sink_hit(
                    SINK_SECRET_OUT, f"cache key of {recv_hint!r}",
                    key_labels, line,
                )
        elif kind == "expr":
            self._eval(op[1])
        elif kind == "return":
            _, expr, line = op
            if self.collect:
                _merge(self.return_labels, self._eval(expr))
            else:
                self._eval(expr)
        elif kind == "raise":
            _, exc, args, line, _handled = op
            labels: Labels = {}
            for arg in args:
                _merge(labels, self._eval(arg))
            self._sink_hit(
                SINK_SECRET_OUT, f"{exc or 'exception'} message text",
                labels, line,
            )

    def _destructure(self, expr: list, count: int) -> list | None:
        """Per-target labels for ``a, b = ...`` when the right side is a
        literal tuple (or a literal iterable of same-arity tuples, the
        ``for k, v in ((..), (..))`` shape); ``None`` when opaque —
        callers then fall back to merging everything into every target.
        """
        if count < 2 or not expr or expr[0] != "many":
            return None
        parts = expr[1]
        if len(parts) == count:
            return [self._eval(part) for part in parts]
        if len(parts) == 1 and parts[0] and parts[0][0] == "many":
            items = parts[0][1]
            if items and all(
                    item and item[0] == "many" and len(item[1]) == count
                    for item in items):
                columns: list[Labels] = [{} for _ in range(count)]
                for item in items:
                    for index, sub in enumerate(item[1]):
                        _merge(columns[index], self._eval(sub))
                return columns
        return None

    def _track_type(self, target: str, expr: list) -> None:
        if expr and expr[0] == "call":
            resolved = self.engine.program.class_of_constructor(
                self.ir["module"], expr[1],
            )
            if resolved is not None:
                self.var_types[target] = resolved
            else:
                self.var_types.pop(target, None)
        elif expr and expr[0] != "name":
            self.var_types.pop(target, None)

    # -- expressions ----------------------------------------------------------

    def _eval(self, expr: list) -> Labels:
        kind = expr[0]
        if kind == "const":
            return {}
        if kind == "name":
            return dict(self.vars.get(expr[1], {}))
        if kind == "attr":
            return self._eval_attr(expr)
        if kind == "sub":
            return self._eval(expr[1])
        if kind == "many":
            labels: Labels = {}
            for part in expr[1]:
                _merge(labels, self._eval(part))
            return labels
        if kind == "call":
            return self._eval_call(expr)
        return {}

    def _eval_attr(self, expr: list) -> Labels:
        _, base, attr = expr
        labels = self._eval(base)
        if base[0] == "name":
            qualified = f"{base[1]}.{attr}"
            if qualified in self.vars:
                _merge(labels, self.vars[qualified])
            if base[1] == "self" and self.ir["cls"]:
                _merge(labels, self.engine.attr_labels(
                    self.ir["module"], self.ir["cls"], attr))
        hint = (base[1] if base[0] == "name"
                else base[2] if base[0] == "attr" else "").lower()
        if attr in spec.SECRET_ATTRS and any(
                token in hint for token in spec.SECRET_BASE_TOKENS):
            labels.setdefault(SECRET, f"key attribute .{attr}")
        return labels

    def _eval_call(self, expr: list) -> Labels:
        _, dotted, recv, args, kwargs, line = expr
        recv_labels = self._eval(recv) if recv is not None else {}
        arg_labels = [self._eval(a) for a in args]
        kw_labels = [(kw, self._eval(value)) for kw, value in kwargs]
        short = dotted.rsplit(".", 1)[-1]
        recv_hint = self._receiver_hint(recv, dotted)
        qname = self.engine.program.resolve(
            self.ir["module"], dotted, self.var_types, self.ir["cls"],
        )

        every: Labels = {}
        _merge(every, recv_labels)
        for labels in arg_labels:
            _merge(every, labels)
        for _, labels in kw_labels:
            _merge(every, labels)

        # 1. sinks fire on what flows in, before the result is shaped
        for sink in spec.SINKS:
            if sink.matches(short, recv_hint, qname):
                self._sink_hit(sink.kind, sink.origin, every, line)

        # 2. sanitizers clear their arguments and bless the result
        for sanitizer in spec.SANITIZERS:
            if sanitizer.matches(short, recv_hint, qname):
                self._sanitize_vars(recv, args)
                return {VERIFIED: sanitizer.origin}
        if qname in spec.TRUSTED_WRAPPERS:
            return {VERIFIED: f"trusted wrapper {short}"}

        # 3. interprocedural: consume the callee's summary
        result: Labels | None = None
        if qname is not None:
            result = self._apply_summary(
                qname, recv, recv_labels, arg_labels, kw_labels,
                every, line, short,
            )

        # 4. sources mint labels on the result
        for source in spec.SOURCES + spec.SECRET_SOURCES:
            if source.untrusted_module_only and not self.untrusted_module:
                continue
            if source.matches(short, recv_hint, qname):
                if result is None:
                    result = dict(every)
                for label in source.labels:
                    result.setdefault(label, source.origin)

        # 5. re-parsing verified content discards the proof
        if short in spec.PARSE_NAMES and VERIFIED in every:
            if result is None:
                result = dict(every)
            result.pop(VERIFIED, None)
            result.setdefault(UNTRUSTED, "re-parse of verified content")
            result.setdefault(REPARSED, "re-parse of verified content")

        if result is not None:
            return result
        if short in spec.TAINT_STOPPERS:
            return {}
        return every  # unknown callee: conservative pass-through

    def _receiver_hint(self, recv, dotted: str) -> str:
        if recv is None:
            return ""
        if recv[0] == "name":
            return recv[1]
        if recv[0] == "attr":
            return recv[2]
        if "." in dotted:
            return dotted.rsplit(".", 2)[-2]
        return ""

    def _sanitize_vars(self, recv, args) -> None:
        """A successful verification clears its operands in place."""
        for target in ([recv] if recv is not None else []) + list(args):
            name = None
            if target[0] == "name":
                name = target[1]
            elif target[0] == "attr" and target[1][0] == "name":
                name = f"{target[1][1]}.{target[2]}"
            if name is not None and name in self.vars:
                cleaned = {
                    label: origin
                    for label, origin in self.vars[name].items()
                    if label not in (UNTRUSTED, REPARSED)
                }
                cleaned[VERIFIED] = "sanitized in place"
                self.vars[name] = cleaned

    def _apply_summary(self, qname: str, recv, recv_labels: Labels,
                       arg_labels: list, kw_labels: list,
                       every: Labels, line: int,
                       short: str) -> Labels | None:
        functions = self.engine.program.functions
        ir = functions.get(qname)
        if ir is None and f"{qname}.__init__" in functions:
            ir = functions[f"{qname}.__init__"]
            qname = f"{qname}.__init__"
            recv_labels = {}
            recv = None
        if ir is None:
            return None
        summary = self.engine.summaries.get(qname)
        if summary is None:
            return dict(every)

        offset = 1 if (ir["params"] and ir["params"][0] in
                       ("self", "cls") and recv is not None) else 0
        positional: list[Labels] = []
        if offset:
            positional.append(recv_labels)
        positional.extend(arg_labels)
        by_index = dict(enumerate(positional))
        for kw, labels in kw_labels:
            if kw in ir["params"]:
                by_index[ir["params"].index(kw)] = labels

        result: Labels = {}
        for index in summary.returns_params:
            _merge(result, by_index.get(index, {}))
        for label, origin in summary.returns_labels:
            result.setdefault(label, origin)
        if summary.sanitizes_return:
            result.pop(UNTRUSTED, None)
            result.pop(REPARSED, None)
            result.setdefault(VERIFIED, f"verified inside {short}")

        for index, labels in by_index.items():
            for kind in summary.sinks_for(index):
                self._consume_hit(kind, qname, index, labels, line,
                                  short)
        return result

    def _consume_hit(self, kind: str, callee_qname: str, index: int,
                     labels: Labels, line: int, callee: str) -> None:
        """A callee summary says param *i* reaches a sink; our arg is i."""
        callee_chain = self.engine.chain_for(callee_qname, index, kind)
        if len(callee_chain) >= MAX_CHAIN:
            return
        chain = (self._site(line),) + callee_chain
        trigger = SINK_TRIGGERS[kind]
        suppressed = trigger == UNTRUSTED and VERIFIED in labels
        if trigger in labels and not suppressed and self.report:
            self.engine.mint(
                kind, f"sink inside {callee}", labels, self.path,
                line, chain=chain,
            )
        self._record_param_flows(kind, labels, chain)

    def _sink_hit(self, kind: str, sink_origin: str, labels: Labels,
                  line: int) -> None:
        trigger = SINK_TRIGGERS[kind]
        suppressed = trigger == UNTRUSTED and VERIFIED in labels
        if trigger in labels and not suppressed and self.report:
            self.engine.mint(kind, sink_origin, labels, self.path, line,
                             chain=(self._site(line),))
        self._record_param_flows(kind, labels, (self._site(line),))

    def _record_param_flows(self, kind: str, labels: Labels,
                            chain: tuple) -> None:
        for label in labels:
            if _is_param(label):
                index = int(label[1:])
                self.param_sinks.add((index, kind))
                self.engine.note_chain(self.ir["qname"], index, kind,
                                       chain)


class TaintEngine:
    """Whole-program fixpoint plus finding collection."""

    def __init__(self, program: Program, paths: dict):
        self.program = program
        self.paths = paths  # module name -> display path
        self.summaries: dict[str, FunctionSummary] = {}
        self._attr_labels: dict[tuple, Labels] = {}
        self._chains: dict[tuple, tuple] = {}
        self._findings: dict[str, object] = {}
        self.rounds = 0

    # -- shared state ---------------------------------------------------------

    def note_chain(self, qname: str, index: int, kind: str,
                   chain: tuple) -> None:
        """Remember one representative flow chain per summary entry.

        Shortest chain wins (ties keep the first seen) so the reported
        trace stays minimal and the fixpoint result is deterministic.
        """
        key = (qname, index, kind)
        current = self._chains.get(key)
        if current is None or len(chain) < len(current):
            self._chains[key] = chain[:MAX_CHAIN]

    def chain_for(self, qname: str, index: int, kind: str) -> tuple:
        return self._chains.get((qname, index, kind), ())

    def note_attr(self, module: str, cls: str | None, attr: str,
                  labels: Labels) -> None:
        if cls is None:
            return
        table = self._attr_labels.setdefault((module, cls, attr), {})
        _merge(table, {k: v for k, v in labels.items()
                       if not _is_param(k)})

    def attr_labels(self, module: str, cls: str, attr: str) -> Labels:
        return dict(self._attr_labels.get((module, cls, attr), {}))

    # -- findings -------------------------------------------------------------

    def mint(self, kind: str, sink_origin: str, labels: Labels,
             path: str, line: int, chain: tuple = ()) -> None:
        trigger = SINK_TRIGGERS[kind]
        origin = labels.get(trigger, "tainted value")
        if trigger == UNTRUSTED and REPARSED in labels:
            rule = TNT204
            message = (f"re-parsed content (verification proof "
                       f"discarded) reaches {sink_origin}")
        elif kind == SINK_SECRET_OUT:
            rule = TNT203
            message = f"secret material ({origin}) reaches {sink_origin}"
        else:
            rule = SINK_RULES[kind]
            message = f"untrusted input ({origin}) reaches {sink_origin}"
        detail = " -> ".join(chain) if len(chain) > 1 else ""
        finding = rule.finding(path, message, line=line, detail=detail)
        self._findings.setdefault(finding.fingerprint, finding)

    # -- analysis -------------------------------------------------------------

    def run(self) -> list:
        order = sorted(self.program.functions)
        for round_index in range(MAX_ROUNDS):
            self.rounds = round_index + 1
            changed = False
            for qname in order:
                summary = _FunctionAnalysis(
                    self, self.program.functions[qname], report=False,
                ).run()
                if summary != self.summaries.get(qname):
                    self.summaries[qname] = summary
                    changed = True
            if not changed:
                break
        for qname in order:
            _FunctionAnalysis(
                self, self.program.functions[qname], report=True,
            ).run()
        self._check_key_dataclasses()
        return sorted(self._findings.values(),
                      key=lambda f: (f.location, f.line, f.rule_id))

    def _check_key_dataclasses(self) -> None:
        """Generated dataclass ``__repr__`` leaking key fields.

        This is the one secret flow the dataflow pass cannot see — the
        leak is in synthesized code — so it is checked structurally:
        a key-hinted dataclass must exclude secret component fields
        from its repr (``field(repr=False)``) or define its own.
        """
        for info in self.program.modules.values():
            for cls_name, cls in sorted(info["classes"].items()):
                if not cls["dataclass"] or cls["defines_repr"]:
                    continue
                lowered = cls_name.lower()
                if not any(token in lowered
                           for token in spec.SECRET_BASE_TOKENS):
                    continue
                for field_name, line in cls["plain_repr_fields"]:
                    if field_name in spec.SECRET_ATTRS or \
                            "secret" in field_name.lower():
                        finding = TNT203.finding(
                            info["path"],
                            f"dataclass {cls_name}.{field_name} is key "
                            "material but participates in the generated "
                            "__repr__; use field(repr=False) or a "
                            "redacting __repr__",
                            line=line,
                        )
                        self._findings.setdefault(finding.fingerprint,
                                                  finding)


# -- entry points -------------------------------------------------------------


def analyze_modules(sources: dict) -> AnalysisResult:
    """Analyze in-memory ``{path: source}`` modules (tests, fixtures)."""
    infos = [extract_module(source, path)
             for path, source in sorted(sources.items())]
    return _analyze_extracted(infos)


def analyze_source(source: str,
                   path: str = "src/repro/example.py") -> list:
    """Single-module convenience mirroring :func:`lint_source`."""
    return analyze_modules({path: source}).findings


def _analyze_extracted(infos: list) -> AnalysisResult:
    program = Program(infos)
    paths = {info["module"]: info["path"] for info in infos}
    engine = TaintEngine(program, paths)
    result = AnalysisResult()
    result.findings = engine.run()
    result.scanned = len(infos)
    return result


def analyze_paths(paths, *, cache=None) -> AnalysisResult:
    """Analyze files/directories of ``.py`` files, optionally cached.

    *cache* is a :class:`repro.analysis.taintcache.TaintCache`; when
    given, unchanged modules skip AST extraction and a fully unchanged
    target set returns the memoized findings without re-running the
    fixpoint at all.
    """
    from repro.analysis.astlint import _iter_py_files
    from repro.analysis.taintcache import content_hash

    entries = []  # (display path, content hash, source)
    for target in _iter_py_files(paths):
        target = display_path(target)
        with open(target, "rb") as handle:
            raw = handle.read()
        entries.append((target, content_hash(raw),
                        raw.decode("utf-8")))

    if cache is not None:
        memoized = cache.run_result(entries)
        if memoized is not None:
            return memoized

    infos = []
    for path, digest, source in sorted(entries):
        info = cache.module_info(path, digest) if cache is not None \
            else None
        if info is None:
            info = extract_module(source, path)
            if cache is not None:
                cache.store_module(path, digest, info)
        infos.append(info)

    result = _analyze_extracted(infos)
    if cache is not None:
        cache.store_run(entries, result)
        cache.save()
    return result
