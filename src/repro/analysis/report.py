"""Reporters: render an :class:`AnalysisResult` as text or JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import get_rule
from repro.analysis.findings import AnalysisResult, Severity


def render_text(result: AnalysisResult, *, verbose: bool = False) -> str:
    """Human-readable report, findings grouped by rule."""
    lines: list[str] = []
    for coverage in result.coverage:
        lines.append(f"signature coverage — {coverage['artifact']}:")
        for entry in coverage["references"]:
            lines.append(
                f"  {entry['uri'] or '(whole document)'} -> "
                f"{entry['covers'] or '(nothing)'}"
            )
        unsigned = coverage.get("unsigned") or []
        if unsigned:
            lines.append(f"  unsigned nodes: {', '.join(unsigned)}")
    for rule_id, findings in sorted(result.by_rule().items()):
        rule = get_rule(rule_id)
        lines.append(f"{rule_id} ({rule.severity.name.lower()}) — "
                     f"{rule.title}: {len(findings)} finding(s)")
        for finding in findings:
            where = finding.location
            if finding.line:
                where = f"{where}:{finding.line}"
            lines.append(f"  {where}: {finding.message}")
            if verbose and finding.detail:
                for detail_line in finding.detail.splitlines():
                    lines.append(f"    | {detail_line}")
    lines.append(summary_line(result))
    return "\n".join(lines)


def summary_line(result: AnalysisResult) -> str:
    counts = {s: 0 for s in Severity}
    for finding in result.findings:
        counts[finding.severity] += 1
    parts = [
        f"{counts[s]} {s.name.lower()}" for s in
        (Severity.ERROR, Severity.WARNING, Severity.INFO) if counts[s]
    ]
    body = ", ".join(parts) if parts else "no findings"
    suffix = (f" ({len(result.suppressed)} baseline-suppressed)"
              if result.suppressed else "")
    return f"analysis: {body} in {result.scanned} target(s){suffix}"


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "coverage": result.coverage,
        "scanned": result.scanned,
        "worst": result.worst().name if result.worst() else None,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
