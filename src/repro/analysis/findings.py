"""The findings model shared by every analysis frontend.

A finding is one rule violation at one location.  Findings are plain
data: the engine produces them, reporters render them, and the
baseline layer suppresses known ones by *fingerprint* — a stable
identity that deliberately ignores line numbers, so unrelated edits
above a known finding do not resurrect it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import IntEnum


def display_path(path: str) -> str:
    """Normalize a scan target for findings and fingerprints.

    Paths inside the working directory are reported relative to it, so
    the same file yields the same fingerprint whether the scan was
    invoked with an absolute or a relative path (baselines depend on
    this).  Paths outside stay as given.
    """
    rel = os.path.relpath(path)
    return path if rel.startswith("..") else rel


class Severity(IntEnum):
    """Ordered severity levels; gating compares against a threshold."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; "
                f"expected one of {[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule_id: stable rule identifier (``SEC001``, ``LIN101``, ...).
        severity: the rule's severity.
        location: where it was found — ``path``, ``path:line`` or an
            artifact-internal locator such as ``cluster.xml#sub-1``.
        message: one-line human description.
        line: source line for code findings (0 when not applicable).
        detail: optional multi-line elaboration.
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    line: int = 0
    detail: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline suppression."""
        return f"{self.rule_id}|{self.location}|{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.name,
            "location": self.location,
            "line": self.line,
            "message": self.message,
            "detail": self.detail,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = self.location
        if self.line:
            where = f"{where}:{self.line}"
        return f"{self.rule_id} [{self.severity.name.lower()}] {where}: " \
               f"{self.message}"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced.

    ``findings`` is the post-baseline list the exit code is computed
    from; ``suppressed`` records what the baseline swallowed so reports
    can show the delta.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    coverage: list[dict] = field(default_factory=list)
    scanned: int = 0

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def exceeds(self, threshold: Severity) -> bool:
        """True when any finding is at or above *threshold*."""
        worst = self.worst()
        return worst is not None and worst >= threshold

    def by_rule(self) -> dict[str, list[Finding]]:
        grouped: dict[str, list[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule_id, []).append(finding)
        return grouped
