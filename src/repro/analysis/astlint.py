"""AST-based invariant linter for the repo's own code.

Machine-checks the contracts the test suite can only spot-check:

* ``LIN101`` — every mutator in the XML tree model propagates revision
  stamps (the ``perf.cache`` safety contract: a cached digest must
  never validate a tampered subtree).
* ``LIN102`` — HMAC verdicts are never memoized (secret-keyed results
  must not reach cache tables or ``lru_cache``).
* ``LIN103`` — digest/signature comparisons in crypto paths use the
  constant-time helper, not ``==``.
* ``LIN104`` — resilience code uses the injected clock, never the wall
  clock, so fault schedules stay deterministic.
* ``LIN105`` — raw crypto primitives are reached only through
  ``primitives.provider`` (so provider swaps cover every call site).
* ``LIN106`` — untrusted-input modules never parse XML without an
  explicit ``guard=`` resource quota (the DoS hardening contract:
  hostile documents must hit a :class:`ResourceGuard`, and the call
  site must say *which* one).
* ``LIN107`` — untrusted-input modules only let *typed* errors from
  :mod:`repro.errors` escape; a builtin exception raised at a trust
  boundary leaks implementation detail and dodges the containment
  contract callers rely on.
* ``LIN108`` — persistence modules never write files with a bare
  ``open(..., "w"/"wb")``: a power cut mid-write leaves a torn file.
  Durable bytes go through the durable layer's ``atomic_write`` (or a
  :class:`DurableStore`), which the rule exempts.

Rules are heuristic by design: they pattern-match the shapes this
codebase actually uses, and anything legitimately outside a rule goes
in the committed baseline file rather than weakening the rule.
"""

from __future__ import annotations

import ast
import builtins as _builtins
import os

from repro.analysis.engine import register
from repro.analysis.findings import AnalysisResult, Severity, display_path

LIN101 = register(
    "LIN101", "tree mutator must bump revision stamps", Severity.ERROR,
    "code",
    "A method that mutates tree state (children/attrs/ns_decls/text "
    "payload) never calls mark_mutated(); revision-keyed caches would "
    "serve stale digests for the mutated subtree.",
)
LIN102 = register(
    "LIN102", "HMAC verdict memoized", Severity.ERROR, "code",
    "A function computing or checking an HMAC stores results in a "
    "cache/memo structure or is wrapped in lru_cache; secret-keyed "
    "verdicts must always be recomputed.",
)
LIN103 = register(
    "LIN103", "non-constant-time digest comparison", Severity.ERROR,
    "code",
    "A digest/signature/MAC value is compared with ==/!= in a crypto "
    "path; use primitives.hmac.constant_time_equal.",
)
LIN104 = register(
    "LIN104", "wall clock in resilience code", Severity.ERROR, "code",
    "Resilience code calls time.time/monotonic/sleep or datetime.now "
    "directly instead of the injected clock object.",
)
LIN105 = register(
    "LIN105", "raw primitive reached outside provider", Severity.ERROR,
    "code",
    "A module outside repro.primitives imports a raw primitive "
    "(aes/des/rsa/sha/modes/keywrap/prime) instead of going through "
    "primitives.provider.",
)

LIN108 = register(
    "LIN108", "torn-write hazard in a persistence module",
    Severity.ERROR, "code",
    "A module that persists security state opens a file for writing "
    "directly; a crash mid-write leaves a torn file that recovery "
    "cannot distinguish from tampering.  Route the bytes through "
    "repro.resilience.durable.atomic_write or a DurableStore.",
)

LIN106 = register(
    "LIN106", "unguarded parse of untrusted input", Severity.WARNING,
    "code",
    "A module on an untrusted-input path (network, xkms, xmlenc, "
    "player, package/pipeline/disc-image/batch entry points) calls "
    "parse_document/parse_element without an explicit guard= keyword; "
    "pass the session's ResourceGuard, or ResourceGuard.default() to "
    "document that the CE-device default quota is intended.",
)
LIN107 = register(
    "LIN107", "builtin exception escapes an untrusted-input module",
    Severity.ERROR, "code",
    "A module that receives bytes from the other side of a trust "
    "boundary raises a builtin exception that is not caught in the "
    "same module; failures on untrusted paths must be typed errors "
    "from repro.errors so callers catch the contract, not the "
    "implementation (raises converted inside an enclosing try are "
    "fine).",
)

# LIN101: attributes whose direct mutation must be stamped.
_TREE_STATE = ("children", "attrs", "ns_decls", "_data")
_MUTATING_METHODS = ("append", "insert", "remove", "pop", "clear",
                     "extend", "update", "setdefault")

# LIN103: identifier-token heuristics.
_SECRET_TOKENS = {"digest", "mac", "hmac", "signature", "sig", "tag"}
_BENIGN_TOKENS = {"method", "methods", "name", "names", "algorithm",
                  "algorithms", "uri", "id", "el", "size", "kind",
                  "path", "local", "len"}

# LIN104: forbidden wall-clock calls.
_WALL_CLOCK = {("time", "time"), ("time", "monotonic"),
               ("time", "perf_counter"), ("time", "sleep"),
               ("datetime", "now"), ("datetime", "utcnow")}

# LIN105: primitive modules only the provider may touch.  keys,
# encoding, random, padding and the constant-time helper in hmac are
# data-model/utility surfaces, not raw algorithms.
_RAW_PRIMITIVES = {"aes", "des", "rsa", "sha", "modes", "keywrap",
                   "prime"}

# LIN106: where XML arrives from the other side of a trust boundary.
_UNTRUSTED_DIRS = ("/network/", "/xkms/", "/xmlenc/", "/player/")
_UNTRUSTED_FILES = ("core/package.py", "core/playback_pipeline.py",
                    "disc/image.py", "perf/batch.py",
                    # flash contents are attacker-reachable input
                    "resilience/durable.py")
_PARSE_ENTRY_POINTS = ("parse_document", "parse_element")

# LIN108: modules that put security state on disk.  The durable layer
# itself is the sanctioned implementation (its Filesystem abstraction
# and atomic_write are *how* everyone else avoids torn writes), so it
# is exempt by construction.
_PERSISTENCE_FILES = ("player/localstorage.py", "certs/store.py",
                      "xkms/server.py")
_DURABLE_LAYER_FILES = ("resilience/durable.py", "resilience/crashfs.py")
_WRITE_MODE_CHARS = ("w", "a", "x", "+")

# LIN107: builtin exception types (anything importable without an
# import is "builtin"); NotImplementedError is the protocol-stub idiom
# and deliberately exempt.
_BUILTIN_EXCEPTIONS = frozenset(
    name for name, obj in vars(_builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
) - {"NotImplementedError"}


def _name_hint(node: ast.expr) -> str:
    """The identifier a comparison operand 'is about'."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _name_hint(node.func)
    return ""


def _tokens(identifier: str) -> set[str]:
    return {t for t in identifier.lower().split("_") if t}


def _is_secret_hint(node: ast.expr) -> bool:
    hint = _name_hint(node)
    if hint.isupper():
        return False  # ALL_CAPS module constants (algorithm URIs etc.)
    tokens = _tokens(hint)
    return bool(tokens & _SECRET_TOKENS) and not (tokens & _BENIGN_TOKENS)


def _mentions_hmac(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Name, ast.Attribute, ast.FunctionDef)):
            hint = getattr(child, "id", None) or \
                getattr(child, "attr", None) or \
                getattr(child, "name", "")
            if "hmac" in hint.lower():
                return True
    return False


def _dotted(node: ast.expr) -> str:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts))


class _FileLint:
    """All code rules over one parsed module."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.findings = []
        normalized = path.replace(os.sep, "/")
        self.in_primitives = "/primitives/" in normalized
        self.in_resilience = ("/resilience/" in normalized
                              and not normalized.endswith("clock.py"))
        self.in_crypto_path = any(
            part in normalized for part in
            ("/dsig/", "/xmlenc/", "/primitives/", "/omadcf/")
        )
        self.in_untrusted_input = (
            any(part in normalized for part in _UNTRUSTED_DIRS)
            or normalized.endswith(_UNTRUSTED_FILES)
        )
        # LIN107 also covers markup handling: its input is parsed
        # content that originated on a disc or the network.
        self.in_typed_raise_scope = (self.in_untrusted_input
                                     or "/markup/" in normalized)
        # LIN108 applies to modules that persist security state, plus
        # all of /resilience/ except the durable layer itself.
        self.in_persistence = (
            normalized.endswith(_PERSISTENCE_FILES)
            or ("/resilience/" in normalized
                and not normalized.endswith(_DURABLE_LAYER_FILES))
        )
        # LIN101 applies to modules that define the revision protocol
        # (the tree model and anything shaped like it).
        self.defines_mark_mutated = any(
            isinstance(n, ast.FunctionDef) and n.name == "mark_mutated"
            for n in ast.walk(tree)
        )

    def run(self) -> list:
        self._lint_imports()
        self._lint_typed_raises()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self._lint_mutator(node, item)
            if isinstance(node, ast.FunctionDef):
                self._lint_hmac_memo(node)
            if isinstance(node, ast.Compare):
                self._lint_compare(node)
            if isinstance(node, ast.Call):
                self._lint_wall_clock(node)
                self._lint_unguarded_parse(node)
                self._lint_torn_write(node)
        return self.findings

    # -- LIN101 ----------------------------------------------------------------

    def _lint_mutator(self, cls: ast.ClassDef,
                      func: ast.FunctionDef) -> None:
        if not self.defines_mark_mutated:
            return
        if func.name in ("__init__", "mark_mutated"):
            return
        mutations = []
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if self._is_self_state(target):
                        mutations.append(node)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATING_METHODS and \
                    self._is_self_state(node.func.value):
                mutations.append(node)
        if not mutations:
            return
        calls_mark = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "mark_mutated"
            for n in ast.walk(func)
        )
        if not calls_mark:
            self.findings.append(LIN101.finding(
                self.path,
                f"{cls.name}.{func.name} mutates tree state without "
                "calling mark_mutated()",
                line=mutations[0].lineno,
            ))

    @staticmethod
    def _is_self_state(node: ast.expr) -> bool:
        """``self.children`` / ``self.attrs[i]`` / ``self._data`` ..."""
        if isinstance(node, ast.Subscript):
            node = node.value
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in _TREE_STATE)

    # -- LIN102 ----------------------------------------------------------------

    def _lint_hmac_memo(self, func: ast.FunctionDef) -> None:
        if not _mentions_hmac(func):
            return
        for decorator in func.decorator_list:
            name = _dotted(decorator.func
                           if isinstance(decorator, ast.Call)
                           else decorator)
            if name.rsplit(".", 1)[-1] in ("lru_cache", "cache"):
                self.findings.append(LIN102.finding(
                    self.path,
                    f"{func.name} touches HMAC material and is wrapped "
                    f"in {name}",
                    line=func.lineno,
                ))
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        store = _dotted(target.value).lower()
                        if "cache" in store or "memo" in store:
                            self.findings.append(LIN102.finding(
                                self.path,
                                f"{func.name} stores an HMAC-derived "
                                f"value into {_dotted(target.value)}",
                                line=node.lineno,
                            ))

    # -- LIN103 ----------------------------------------------------------------

    def _lint_compare(self, node: ast.Compare) -> None:
        if not self.in_crypto_path:
            return
        if len(node.ops) != 1 or \
                not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            return
        left, right = node.left, node.comparators[0]
        # Comparisons against literals/None are never secret-vs-secret.
        if isinstance(left, ast.Constant) or \
                isinstance(right, ast.Constant):
            return
        if _is_secret_hint(left) or _is_secret_hint(right):
            self.findings.append(LIN103.finding(
                self.path,
                f"comparison of "
                f"{_name_hint(left) or '<expr>'} and "
                f"{_name_hint(right) or '<expr>'} with ==/!=; use "
                "constant_time_equal",
                line=node.lineno,
            ))

    # -- LIN104 ----------------------------------------------------------------

    def _lint_wall_clock(self, node: ast.Call) -> None:
        if not self.in_resilience:
            return
        dotted = _dotted(node.func)
        if "." not in dotted:
            return
        base, _, attr = dotted.rpartition(".")
        if (base.rsplit(".", 1)[-1], attr) in _WALL_CLOCK:
            self.findings.append(LIN104.finding(
                self.path,
                f"wall-clock call {dotted}(); use the injected clock",
                line=node.lineno,
            ))

    # -- LIN106 ----------------------------------------------------------------

    def _lint_unguarded_parse(self, node: ast.Call) -> None:
        if not self.in_untrusted_input:
            return
        name = _dotted(node.func).rsplit(".", 1)[-1]
        if name not in _PARSE_ENTRY_POINTS:
            return
        if any(kw.arg == "guard" for kw in node.keywords):
            return
        self.findings.append(LIN106.finding(
            self.path,
            f"{name}() on an untrusted-input path without an explicit "
            "guard= resource quota",
            line=node.lineno,
        ))

    # -- LIN108 ----------------------------------------------------------------

    def _lint_torn_write(self, node: ast.Call) -> None:
        if not self.in_persistence:
            return
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "open"):
            return
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if not (isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)):
            return  # default mode "r" / dynamic mode: not a write
        if any(ch in mode.value for ch in _WRITE_MODE_CHARS):
            self.findings.append(LIN108.finding(
                self.path,
                f"open(..., {mode.value!r}) in a persistence module; "
                "a crash here leaves a torn file — use "
                "repro.resilience.durable.atomic_write",
                line=node.lineno,
            ))

    # -- LIN107 ----------------------------------------------------------------

    def _lint_typed_raises(self) -> None:
        if not self.in_typed_raise_scope:
            return
        # Raises lexically inside a try that has except handlers are
        # treated as converted-on-the-spot (the timing-parser idiom:
        # raise ValueError in a helper, catch and re-raise typed).
        handled: set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Try) and node.handlers:
                for stmt in node.body + node.orelse:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Raise):
                            handled.add(id(sub))
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Raise) or id(node) in handled:
                continue
            exc = node.exc
            if exc is None:
                continue  # bare re-raise keeps the active (typed) error
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = _dotted(exc).rsplit(".", 1)[-1]
            if name in _BUILTIN_EXCEPTIONS:
                self.findings.append(LIN107.finding(
                    self.path,
                    f"raises builtin {name} on an untrusted-input "
                    "path; raise a typed error from repro.errors",
                    line=node.lineno,
                ))

    # -- LIN105 ----------------------------------------------------------------

    def _lint_imports(self) -> None:
        if self.in_primitives:
            return
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                parts = node.module.split(".")
                if parts[:2] == ["repro", "primitives"]:
                    if len(parts) > 2 and parts[2] in _RAW_PRIMITIVES:
                        self._raw_import(node, node.module)
                    elif len(parts) == 2:
                        for alias in node.names:
                            if alias.name in _RAW_PRIMITIVES:
                                self._raw_import(
                                    node,
                                    f"repro.primitives.{alias.name}",
                                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if parts[:2] == ["repro", "primitives"] and \
                            len(parts) > 2 and \
                            parts[2] in _RAW_PRIMITIVES:
                        self._raw_import(node, alias.name)

    def _raw_import(self, node: ast.AST, module: str) -> None:
        self.findings.append(LIN105.finding(
            self.path,
            f"imports raw primitive {module}; route through "
            "primitives.provider",
            line=node.lineno,
        ))


def lint_source(source: str, path: str = "<string>") -> list:
    """Lint one source string; returns findings (for tests/snippets)."""
    tree = ast.parse(source, filename=path)
    return _FileLint(path, tree).run()


def lint_paths(paths) -> AnalysisResult:
    """Lint files and directory trees of ``.py`` files."""
    result = AnalysisResult()
    for target in _iter_py_files(paths):
        target = display_path(target)
        with open(target, "rb") as handle:
            source = handle.read().decode("utf-8")
        try:
            findings = lint_source(source, target)
        except SyntaxError as exc:
            findings = [LIN101.finding(
                target, f"file does not parse: {exc}", line=exc.lineno or 0,
            )]
        result.findings.extend(findings)
        result.scanned += 1
    return result


def _iter_py_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path
