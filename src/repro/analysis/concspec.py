"""Concurrency model catalog: roots, shared surface, locks, CON rules.

The paper's deployment (Fig 1/3) has many concurrent player sessions
hitting shared security state — trust anchors, digest caches, XKMS
bindings — and the ROADMAP's async multi-tenant XKMS service will
multiply the in-flight contexts.  This catalog is the machine-readable
form of the repo's concurrency model:

* **Roots** are entry points that execute concurrently: callables
  handed to ``ThreadPoolExecutor``/``ProcessPoolExecutor`` submits
  (the BatchVerifier worker paths), ``async def`` bodies, and the
  chaos-harness drivers that interleave whole pipelines.
* **The shared surface** is the explicit allowlist of modules/classes
  whose instances are expected to be visible from more than one
  execution context at once (the RacerD ``@ThreadSafe`` analogue).
  State outside the list — per-request parse trees, per-call locals,
  the single-owner durable stores — is owned by one context and never
  flagged, which is what keeps the analyzer's precision usable.
* **Lock discipline** is inferred from ``with <lock-named>:`` regions;
  :data:`LOCK_NAME_TOKENS` decides what counts as a lock.
* **Blocking calls** must not run while a lock is held (CON303) nor be
  reachable from an async root (CON304, the asyncio-readiness gate).

Bump :data:`SPEC_VERSION` whenever the catalog changes — it keys the
findings cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.engine import register
from repro.analysis.findings import Severity

SPEC_VERSION = 2

# -- rules --------------------------------------------------------------------

CON301 = register(
    "CON301", "shared state written outside any lock",
    Severity.ERROR, "code",
    "A field or module global on the shared surface is written from a "
    "concurrency root (or written while concurrent readers exist) "
    "without holding any lock; interleaved writers lose updates and "
    "readers observe torn state.",
)
CON302 = register(
    "CON302", "check-then-act on shared state without a common lock",
    Severity.ERROR, "code",
    "A branch reads shared state and a later write depends on that "
    "read, but no lock is held across both; the classic get-or-compute "
    "/ generation-bump race — two contexts pass the check and both "
    "act.",
)
CON303 = register(
    "CON303", "lock-discipline violation",
    Severity.WARNING, "code",
    "Shared state is guarded by inconsistent locks across its access "
    "sites, or a lock is held across a call that can block on I/O or "
    "re-enter the same non-reentrant lock.",
)
CON304 = register(
    "CON304", "blocking call reachable from an async root",
    Severity.ERROR, "code",
    "Blocking I/O or time.sleep is reachable from an async-marked "
    "entry point; one blocked coroutine stalls the whole event loop. "
    "This is the asyncio-readiness gate the XKMS service rewrite is "
    "held to.",
)

# -- roots --------------------------------------------------------------------

#: receiver-hint tokens that mark ``<recv>.submit(fn)`` / ``.map(fn)``
#: as an executor dispatch.
EXECUTOR_RECEIVER_TOKENS = ("pool", "executor")

SUBMIT_NAMES = frozenset({"submit"})
MAP_NAMES = frozenset({"map"})

#: constructors whose ``target=`` callable runs on its own thread.
THREAD_CONSTRUCTORS = frozenset({"Thread", "Timer"})

#: event-loop spawns: the coroutine handed to
#: ``asyncio.create_task(fn(...))`` / ``ensure_future(fn(...))`` runs
#: as its own concurrent task — a concurrency root like a thread,
#: just cooperatively scheduled.
TASK_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})

#: task-group spawns (``tg.start_soon(fn)`` / ``tg.create_task`` is
#: covered above): the callable argument becomes a concurrent task.
GROUP_SPAWN_NAMES = frozenset({"start_soon"})

#: ``loop.run_in_executor(executor, fn, *args)``: *fn* runs on an
#: executor thread while the loop keeps going — a thread root whose
#: shared-state writes race against every coroutine.
EXECUTOR_RUN_NAMES = frozenset({"run_in_executor"})

#: declared concurrency drivers: harnesses that interleave whole
#: pipelines, so everything they reach executes under contention in
#: the deployment model even when today's harness is single-threaded.
ROOT_QNAMES = {
    "repro.resilience.chaos:run_chaos": "chaos driver",
    "repro.resilience.durablechaos:run_crash_chaos": "crash-chaos driver",
}

# -- shared surface -----------------------------------------------------------

#: module -> None (every class + module globals) or a tuple of class
#: names.  Only state on this surface can mint CON301/CON302 findings.
#: Durable stores and localstorage are deliberately absent: they are
#: single-owner per store file (DESIGN §13 records the rationale).
SHARED_SURFACE: dict = {
    "repro.certs.store": None,
    "repro.dsig.signer": None,
    "repro.dsig.verifier": None,
    "repro.perf.batch": None,
    "repro.perf.cache": None,
    "repro.perf.metrics": None,
    "repro.primitives.provider": None,
    "repro.resilience.degradation": ("DegradationLog",),
    "repro.resilience.retry": ("CircuitBreaker",),
    "repro.xkms.server": None,
}


def in_shared_surface(field_key: tuple) -> bool:
    if field_key[0] == "attr":
        _, module, cls, _attr = field_key
        if module not in SHARED_SURFACE:
            return False
        classes = SHARED_SURFACE[module]
        return classes is None or cls in classes
    _, module, _name = field_key
    return SHARED_SURFACE.get(module, ()) is None


def field_label(field_key: tuple) -> str:
    if field_key[0] == "attr":
        _, module, cls, attr = field_key
        return f"{module}:{cls}.{attr}"
    _, module, name = field_key
    return f"{module}:{name}"


# -- locks --------------------------------------------------------------------

#: ``with <name>:`` counts as a lock region when the last name segment
#: contains one of these tokens.
LOCK_NAME_TOKENS = ("lock", "mutex")

#: constructor name suffixes that build re-entrant locks.
REENTRANT_CONSTRUCTORS = frozenset({"RLock"})

#: writes inside these methods happen before the object is published
#: to other contexts, so they never race.
CONSTRUCTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})

#: method calls that mutate their receiver in place.
MUTATOR_NAMES = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "remove", "setdefault", "update",
})

#: names too generic for the unique-method fallback — builtin container
#: / file / hash methods that would otherwise "resolve" to whatever
#: program function shares the name (``self._digests.clear()`` is dict
#: clear, not ``C14NDigestCache.clear``).
OPAQUE_METHOD_NAMES = MUTATOR_NAMES | frozenset({
    "close", "copy", "count", "decode", "digest", "encode", "format",
    "get", "hexdigest", "index", "items", "join", "keys", "map",
    "now", "open", "read", "result", "reverse", "shutdown", "sleep",
    "sort", "split", "start", "strip", "submit", "values", "write",
})

# -- blocking calls -----------------------------------------------------------


@dataclass(frozen=True)
class BlockingCall:
    """One blocking-call pattern.

    ``dotted`` matches the import-resolved dotted call name exactly
    (``time.sleep`` matches both ``time.sleep(..)`` and a bare
    ``sleep(..)`` imported from ``time``); otherwise the callee's last
    name segment must be in ``names`` and, when ``receiver_tokens`` is
    non-empty, some token must be a substring of the receiver hint.
    ``bare_only`` restricts to receiver-less builtins (``open``).
    """

    names: frozenset = frozenset()
    receiver_tokens: frozenset = frozenset()
    dotted: frozenset = frozenset()
    bare_only: bool = False
    origin: str = ""

    def matches(self, short: str, hint: str, full_dotted: str,
                bare: bool) -> bool:
        if full_dotted in self.dotted:
            return True
        if short not in self.names:
            return False
        if self.bare_only:
            return bare
        if not self.receiver_tokens:
            return True
        lowered = hint.lower()
        return any(token in lowered for token in self.receiver_tokens)


def _blocking(**kwargs) -> BlockingCall:
    for key in ("names", "receiver_tokens", "dotted"):
        if key in kwargs:
            kwargs[key] = frozenset(kwargs[key])
    return BlockingCall(**kwargs)


BLOCKING_CALLS = (
    _blocking(
        names={"sleep"}, receiver_tokens={"time"},
        dotted={"time.sleep"}, origin="time.sleep",
    ),
    _blocking(
        names={"open"}, bare_only=True, dotted={"io.open"},
        origin="file open",
    ),
    _blocking(
        dotted={"os.fsync", "os.fdatasync"}, names={"fsync", "fdatasync"},
        receiver_tokens={"os"}, origin="fsync",
    ),
    _blocking(
        names={"connect", "accept", "recv", "recv_into", "sendall"},
        receiver_tokens={"sock", "conn"},
        dotted={"socket.create_connection"}, origin="socket I/O",
    ),
    _blocking(
        dotted={"urllib.request.urlopen", "subprocess.run",
                "subprocess.check_output", "subprocess.check_call"},
        origin="external process / HTTP request",
    ),
)


def blocking_origin(short: str, hint: str, full_dotted: str,
                    bare: bool) -> str | None:
    """Human origin when the call matches a blocking pattern.

    ``asyncio.sleep`` (and injected-clock ``clock.sleep``) fall through
    every pattern: the receiver tokens are what keep the await-friendly
    variants out of CON303/CON304.
    """
    for pattern in BLOCKING_CALLS:
        if pattern.matches(short, hint, full_dotted, bare):
            return pattern.origin
    return None
