"""Program model for whole-repo dataflow: modules, functions, calls.

The taint engine needs three things the per-file AST linter never did:

* a **module graph** — which file is which dotted module, and what each
  module's imports resolve to (chasing package ``__init__`` re-exports);
* a **function table** — every function and method under a stable
  qualified name (``repro.xkms.server:TrustServer.handle_xml``);
* a **compact IR** per function — assignments, calls, returns and
  raises in source order, with expressions reduced to the few shapes
  taint propagation cares about.

The IR is deliberately JSON-serializable (nested lists of strings and
ints) so :mod:`repro.analysis.taintcache` can persist it keyed by
content hash and warm runs skip ``ast`` entirely.

IR expression forms::

    ["name", ident]
    ["const"]
    ["attr", expr, attrname]
    ["sub", expr, key_expr]
    ["many", [expr, ...]]              # unions: tuples, f-strings, binops
    ["call", dotted, recv_expr|None, [args], [[kw, expr], ...], line]

IR op forms::

    ["assign", [target, ...], expr, line]    # targets incl. "self.x"
    ["storesub", recv_hint, key_expr, value_expr, line]
    ["expr", expr, line]
    ["return", expr, line]
    ["raise", dotted, [arg exprs], line, in_handler_for]
    ["test", expr, line]                     # if/while condition reads
    ["lockenter", dotted, line]              # ``with <dotted>:`` region
    ["lockexit", dotted, line]
    ["alockenter", dotted, line]             # ``async with`` region
    ["alockexit", dotted, line]
    ["awaitpoint", line]                     # this statement awaits
    ["spawn", dotted, [target, ...], awaited, line]
    ["tryenter", [handler_meta, ...], has_finally, line]
    ["tryexit", line]                        # end of protected body
    ["finallyenter", line]
    ["finallyexit", line]

where ``handler_meta`` is ``[[caught names], bare_reraise, line]``
(``["*"]`` for a bare ``except``).  ``spawn`` marks task-spawn calls
(``create_task``/``ensure_future``/``gather``/``start_soon``) with the
assignment targets that retain the handle; it precedes the statement's
own ops.

Analyses ignore op kinds they don't know, so the v3 additions (branch
tests, with-region markers) were invisible to the taint engine and the
v4 additions (try/finally regions, await points, async-with regions,
spawn edges) are invisible to both taint and concurrency.
"""

from __future__ import annotations

import ast
import os

IR_VERSION = 4

#: Calls that put a coroutine in flight as a separate task.
SPAWN_CALL_NAMES = frozenset({
    "create_task", "ensure_future", "gather", "start_soon",
})

_BUILTIN_EXCEPTIONS = {
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BufferError", "EOFError", "Exception", "IOError", "IndexError",
    "KeyError", "LookupError", "MemoryError", "OSError", "OverflowError",
    "RecursionError", "RuntimeError", "StopIteration", "SystemError",
    "TypeError", "UnicodeDecodeError", "ValueError", "ZeroDivisionError",
}


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path (``src/`` layout aware)."""
    normalized = path.replace(os.sep, "/")
    parts = [p for p in normalized.split("/") if p and p != "."]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<anonymous>"


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


# -- expression lowering ------------------------------------------------------


def _expr(node: ast.expr | None):
    if node is None:
        return ["const"]
    if isinstance(node, ast.Name):
        return ["name", node.id]
    if isinstance(node, ast.Constant):
        return ["const"]
    if isinstance(node, ast.Attribute):
        return ["attr", _expr(node.value), node.attr]
    if isinstance(node, ast.Subscript):
        return ["sub", _expr(node.value), _expr(node.slice)]
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        recv = (_expr(node.func.value)
                if isinstance(node.func, ast.Attribute) else None)
        args = [_expr(a) for a in node.args]
        kwargs = [[kw.arg or "**", _expr(kw.value)] for kw in node.keywords]
        return ["call", dotted, recv, args, kwargs, node.lineno]
    if isinstance(node, ast.JoinedStr):
        parts = [_expr(v.value) for v in node.values
                 if isinstance(v, ast.FormattedValue)]
        return ["many", parts]
    if isinstance(node, ast.BinOp):
        return ["many", [_expr(node.left), _expr(node.right)]]
    if isinstance(node, ast.BoolOp):
        return ["many", [_expr(v) for v in node.values]]
    if isinstance(node, ast.Compare):
        return ["const"]  # comparisons yield booleans, not data
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return ["many", [_expr(e) for e in node.elts]]
    if isinstance(node, ast.Dict):
        parts = [_expr(k) for k in node.keys if k is not None]
        parts += [_expr(v) for v in node.values]
        return ["many", parts]
    if isinstance(node, ast.IfExp):
        return ["many", [_expr(node.body), _expr(node.orelse)]]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        parts = [_expr(node.elt)]
        parts += [_expr(gen.iter) for gen in node.generators]
        return ["many", parts]
    if isinstance(node, ast.DictComp):
        parts = [_expr(node.key), _expr(node.value)]
        parts += [_expr(gen.iter) for gen in node.generators]
        return ["many", parts]
    if isinstance(node, ast.Starred):
        return _expr(node.value)
    if isinstance(node, (ast.Await, ast.YieldFrom)):
        return _expr(node.value)
    if isinstance(node, ast.Yield):
        return _expr(node.value) if node.value else ["const"]
    if isinstance(node, ast.NamedExpr):
        return _expr(node.value)
    if isinstance(node, ast.Lambda):
        return ["const"]
    return ["const"]


def _test_expr(node: ast.expr):
    """Lower a branch condition with its *reads* kept visible.

    ``_expr`` folds comparisons to ``["const"]`` — their value is a
    boolean, not data, which is the right call for taint propagation.
    Check-then-act detection needs the operand reads instead, so
    ``test`` ops unwrap comparisons and boolean structure.
    """
    if isinstance(node, ast.Compare):
        parts = [node.left] + list(node.comparators)
        return ["many", [_test_expr(p) for p in parts]]
    if isinstance(node, ast.BoolOp):
        return ["many", [_test_expr(v) for v in node.values]]
    if isinstance(node, ast.UnaryOp):
        return _test_expr(node.operand)
    return _expr(node)


def _target_names(node: ast.expr) -> list[str]:
    """Assignment targets as flat variable names (``x``, ``self.x``)."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        return [dotted] if dotted.count(".") == 1 else []
    if isinstance(node, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in node.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(node, ast.Starred):
        return _target_names(node.value)
    return []


def _awaits_in(node: ast.AST | None) -> bool:
    """Does *node* itself await?  Nested defs are separate functions
    (extracted on their own) and do not count."""
    if node is None:
        return False
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Await):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def _collect_spawns(node: ast.AST | None, out: list,
                    under_await: bool = False) -> None:
    """Append ``(spawn_dotted, awaited)`` for task-spawn calls in *node*."""
    if node is None or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    if isinstance(node, ast.Await):
        _collect_spawns(node.value, out, True)
        return
    if isinstance(node, ast.Starred):
        _collect_spawns(node.value, out, under_await)
        return
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted.rsplit(".", 1)[-1] in SPAWN_CALL_NAMES:
            out.append((dotted, under_await))
    for child in ast.iter_child_nodes(node):
        _collect_spawns(child, out)


def _reraises(body: list[ast.stmt]) -> bool:
    """Does the handler body re-raise via a bare ``raise``?"""
    stack: list[ast.AST] = list(body)
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Raise) and current.exc is None:
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def _stmt_header(node: ast.stmt) -> tuple[list, list]:
    """A statement's own expressions (not nested statements) plus the
    names that retain values produced by them."""
    if isinstance(node, ast.Assign):
        targets: list[str] = []
        for target in node.targets:
            targets.extend(_target_names(target))
        return [node.value], targets
    if isinstance(node, ast.AnnAssign):
        headers = [node.value] if node.value is not None else []
        return headers, _target_names(node.target)
    if isinstance(node, ast.AugAssign):
        return [node.value], _target_names(node.target)
    if isinstance(node, ast.Return):
        headers = [node.value] if node.value is not None else []
        return headers, ["<return>"]
    if isinstance(node, ast.Expr):
        return [node.value], []
    if isinstance(node, ast.Raise):
        return [e for e in (node.exc, node.cause) if e is not None], []
    if isinstance(node, (ast.If, ast.While)):
        return [node.test], []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter], _target_names(node.target)
    if isinstance(node, (ast.With, ast.AsyncWith)):
        targets: list[str] = []
        for item in node.items:
            if item.optional_vars is not None:
                targets.extend(_target_names(item.optional_vars))
        return [item.context_expr for item in node.items], targets
    if isinstance(node, ast.Assert):
        return [node.test], []
    return [], []


# -- statement lowering -------------------------------------------------------


class _OpLowerer:
    """Flatten one function body into the op list (source order)."""

    def __init__(self):
        self.ops: list = []
        # Builtin exception names caught by an enclosing ``try`` —
        # raising those is internal control flow, not an escape.
        self._caught: list[set[str]] = []

    def lower_body(self, body: list[ast.stmt]) -> list:
        for stmt in body:
            self._stmt(stmt)
        return self.ops

    def _stmt(self, node: ast.stmt) -> None:
        line = getattr(node, "lineno", 0)
        headers, retainers = _stmt_header(node)
        if isinstance(node, (ast.AsyncFor, ast.AsyncWith)) or \
                any(_awaits_in(header) for header in headers):
            self.ops.append(["awaitpoint", line])
        spawns: list = []
        for header in headers:
            _collect_spawns(header, spawns)
        for spawn_dotted, awaited in spawns:
            self.ops.append(
                ["spawn", spawn_dotted, retainers, awaited, line])
        if isinstance(node, ast.Assign):
            targets: list[str] = []
            subs: list[ast.Subscript] = []
            for target in node.targets:
                targets.extend(_target_names(target))
                if isinstance(target, ast.Subscript):
                    subs.append(target)
            if targets:
                self.ops.append(["assign", targets, _expr(node.value), line])
            for sub in subs:
                self.ops.append([
                    "storesub", dotted_name(sub.value),
                    _expr(sub.slice), _expr(node.value), line,
                ])
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = _target_names(node.target)
            if targets:
                self.ops.append(["assign", targets, _expr(node.value), line])
        elif isinstance(node, ast.AugAssign):
            targets = _target_names(node.target)
            if targets:
                union = ["many", [_expr(node.target), _expr(node.value)]]
                self.ops.append(["assign", targets, union, line])
        elif isinstance(node, ast.Return):
            self.ops.append(["return", _expr(node.value), line])
        elif isinstance(node, ast.Raise):
            self._raise(node, line)
        elif isinstance(node, ast.Expr):
            self.ops.append(["expr", _expr(node.value), line])
        elif isinstance(node, (ast.If, ast.While)):
            self.ops.append(["test", _test_expr(node.test), line])
            self.lower_body(node.body)
            self.lower_body(node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = _target_names(node.target)
            if targets:
                self.ops.append([
                    "assign", targets, ["many", [_expr(node.iter)]], line,
                ])
            else:
                self.ops.append(["expr", _expr(node.iter), line])
            self.lower_body(node.body)
            self.lower_body(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            is_async = isinstance(node, ast.AsyncWith)
            enter = "alockenter" if is_async else "lockenter"
            leave = "alockexit" if is_async else "lockexit"
            entered: list[str] = []
            for item in node.items:
                lowered = False
                if item.optional_vars is not None:
                    targets = _target_names(item.optional_vars)
                    if targets:
                        self.ops.append([
                            "assign", targets,
                            _expr(item.context_expr), line,
                        ])
                        lowered = True
                if not lowered:
                    self.ops.append(
                        ["expr", _expr(item.context_expr), line])
                dotted = dotted_name(item.context_expr)
                self.ops.append([enter, dotted, line])
                entered.append(dotted)
            self.lower_body(node.body)
            for dotted in reversed(entered):
                self.ops.append([leave, dotted, line])
        elif isinstance(node, ast.Try):
            caught: set[str] = set()
            for handler in node.handlers:
                caught.update(self._handler_names(handler.type))
            self.ops.append([
                "tryenter",
                [self._handler_meta(h) for h in node.handlers],
                bool(node.finalbody), line,
            ])
            self._caught.append(caught)
            self.lower_body(node.body)
            self._caught.pop()
            self.ops.append(["tryexit", line])
            for handler in node.handlers:
                if handler.name:
                    # The caught object's payload is opaque to us.
                    self.ops.append([
                        "assign", [handler.name], ["const"],
                        handler.lineno,
                    ])
                self.lower_body(handler.body)
            self.lower_body(node.orelse)
            if node.finalbody:
                self.ops.append(["finallyenter", line])
                self.lower_body(node.finalbody)
                self.ops.append(["finallyexit", line])
        elif isinstance(node, ast.Match):
            for case in node.cases:
                self.lower_body(case.body)
        # Nested defs/classes are lowered as their own functions by the
        # module extractor; pass/import/global/etc. carry no dataflow.

    @staticmethod
    def _handler_meta(handler: ast.ExceptHandler) -> list:
        """``[[caught names], bare_reraise, line]`` for a handler."""
        if handler.type is None:
            names = ["*"]
        else:
            parts = (handler.type.elts
                     if isinstance(handler.type, ast.Tuple)
                     else [handler.type])
            names = sorted({dotted_name(p).rsplit(".", 1)[-1]
                            for p in parts if dotted_name(p)})
        return [names, _reraises(handler.body), handler.lineno]

    @staticmethod
    def _handler_names(node: ast.expr | None) -> set[str]:
        if node is None:
            return set(_BUILTIN_EXCEPTIONS)  # bare except catches all
        names = set()
        for part in (node.elts if isinstance(node, ast.Tuple) else [node]):
            dotted = dotted_name(part)
            if dotted:
                names.add(dotted.rsplit(".", 1)[-1])
        return names

    def _raise(self, node: ast.Raise, line: int) -> None:
        if node.exc is None:
            return  # bare re-raise
        exc = node.exc
        dotted = ""
        args: list = []
        if isinstance(exc, ast.Call):
            dotted = dotted_name(exc.func)
            args = [_expr(a) for a in exc.args]
            args += [_expr(kw.value) for kw in exc.keywords]
        else:
            dotted = dotted_name(exc)
        short = dotted.rsplit(".", 1)[-1]
        handled = any(short in caught or "Exception" in caught
                      or "BaseException" in caught
                      for caught in self._caught)
        self.ops.append(["raise", dotted, args, line, handled])


# -- module extraction --------------------------------------------------------


def _annotation_name(node: ast.expr | None) -> str:
    """Best-effort dotted class name of a parameter/field annotation.

    ``X``, ``mod.X`` and the optional forms ``X | None`` /
    ``Optional[X]`` reduce to ``X``; anything fancier is opaque.
    """
    if node is None:
        return ""
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = dotted_name(node)
        return "" if dotted == "None" else dotted
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left) or _annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        if dotted_name(node.value).rsplit(".", 1)[-1] == "Optional":
            return _annotation_name(node.slice)
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotation, verbatim
    return ""


def _function_ir(func: ast.FunctionDef | ast.AsyncFunctionDef,
                 module: str, cls: str | None) -> dict:
    # Keyword-only params come after the positional ones, so positional
    # argument-to-param mapping by index is unaffected.
    arg_nodes = (func.args.posonlyargs + func.args.args
                 + func.args.kwonlyargs)
    params = [a.arg for a in arg_nodes]
    annotations = {}
    for arg in arg_nodes:
        ann = _annotation_name(arg.annotation)
        if ann:
            annotations[arg.arg] = ann
    qname = (f"{module}:{cls}.{func.name}" if cls
             else f"{module}:{func.name}")
    declared_global = sorted({
        name for node in ast.walk(func)
        if isinstance(node, ast.Global) for name in node.names
    })
    return {
        "qname": qname,
        "module": module,
        "cls": cls,
        "name": func.name,
        "params": params,
        "param_annotations": annotations,
        "line": func.lineno,
        "is_async": isinstance(func, ast.AsyncFunctionDef),
        "globals": declared_global,
        "ops": _OpLowerer().lower_body(func.body),
    }


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = (decorator.func if isinstance(decorator, ast.Call)
                  else decorator)
        if dotted_name(target).rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _plain_repr_fields(node: ast.ClassDef) -> list:
    """Dataclass fields that participate in the generated ``__repr__``.

    A field escapes the repr only via ``field(repr=False)``; everything
    else (plain annotation, default value, ``field(...)`` without
    ``repr=False``) is listed with its line number.
    """
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or \
                not isinstance(stmt.target, ast.Name):
            continue
        value = stmt.value
        if isinstance(value, ast.Call) and \
                dotted_name(value.func).rsplit(".", 1)[-1] == "field":
            if any(kw.arg == "repr"
                   and isinstance(kw.value, ast.Constant)
                   and kw.value.value is False
                   for kw in value.keywords):
                continue
        fields.append([stmt.target.id, stmt.lineno])
    return fields


def _field_types(node: ast.ClassDef) -> list:
    """Dataclass field annotations as ``[name, dotted_type]`` pairs."""
    out = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or \
                not isinstance(stmt.target, ast.Name):
            continue
        ann = _annotation_name(stmt.annotation)
        if ann:
            out.append([stmt.target.id, ann])
    return out


def extract_module(source: str, path: str) -> dict:
    """Parse one module into its cacheable program-model entry."""
    tree = ast.parse(source, filename=path)
    module = module_name_for_path(path)
    imports: dict[str, str] = {}
    functions: list[dict] = []
    classes: dict[str, dict] = {}

    # Imports anywhere in the file (function-local ones included —
    # scoping is flattened, which only ever *adds* resolvable names).
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]

    module_vars: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                module_vars.update(
                    n for n in _target_names(target) if "." not in n)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            module_vars.update(
                n for n in _target_names(node.target) if "." not in n)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_function_ir(node, module, None))
            _extract_nested(node, module, None, functions)
        elif isinstance(node, ast.ClassDef):
            methods = []
            defines_repr = False
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    if item.name in ("__repr__", "__str__"):
                        defines_repr = True
                    functions.append(_function_ir(item, module, node.name))
                    _extract_nested(item, module, node.name, functions)
            is_dataclass = _is_dataclass_decorated(node)
            classes[node.name] = {
                "methods": methods,
                "line": node.lineno,
                "dataclass": is_dataclass,
                "defines_repr": defines_repr,
                "plain_repr_fields": _plain_repr_fields(node)
                if is_dataclass else [],
                "field_types": _field_types(node)
                if is_dataclass else [],
            }

    return {
        "ir_version": IR_VERSION,
        "path": path,
        "module": module,
        "imports": imports,
        "module_vars": sorted(module_vars),
        "functions": functions,
        "classes": classes,
    }


def _extract_nested(func, module: str, cls: str | None,
                    out: list[dict]) -> None:
    """Nested defs become standalone functions (closures are opaque)."""
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(_function_ir(node, module, cls))


# -- the resolved program -----------------------------------------------------


class Program:
    """All extracted modules plus name-resolution over them."""

    def __init__(self, modules: list[dict]):
        self.modules = {m["module"]: m for m in modules}
        self.functions: dict[str, dict] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        for info in modules:
            for func in info["functions"]:
                self.functions[func["qname"]] = func
                self.methods_by_name.setdefault(
                    func["name"], []).append(func["qname"])

    def class_info(self, module: str, cls: str) -> dict | None:
        info = self.modules.get(module)
        if info is None:
            return None
        return info["classes"].get(cls)

    def _chase(self, dotted: str, depth: int = 0) -> str:
        """Follow package re-exports (``repro.xmlcore.parse_element`` →
        ``repro.xmlcore.parser.parse_element``)."""
        if depth > 4:
            return dotted
        head, _, tail = dotted.rpartition(".")
        info = self.modules.get(head)
        if info is not None and tail in info["imports"]:
            return self._chase(info["imports"][tail], depth + 1)
        return dotted

    def resolve(self, module: str, dotted: str,
                var_types: dict[str, tuple] | None = None,
                current_class: str | None = None) -> str | None:
        """Resolve a call's dotted name to a function qname, if we can."""
        if not dotted:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        var_types = var_types or {}

        if head in ("self", "cls") and current_class and len(rest) == 1:
            return self._method(module, current_class, rest[0])
        if head in var_types and len(rest) == 1:
            type_module, type_class = var_types[head]
            return self._method(type_module, type_class, rest[0])

        info = self.modules.get(module)
        full = None
        if info is not None and head in info["imports"]:
            full = self._chase(".".join([info["imports"][head]] + rest))
        elif info is not None and (
                f"{module}:{head}" in self.functions
                or head in info["classes"]):
            full = ".".join([module, head])
            if rest:
                full += "." + ".".join(rest)
        if full is None:
            return None

        # Longest module prefix wins: "repro.xmlcore.parser.parse_element"
        # splits into module + (Class.)?callable.
        segments = full.split(".")
        for cut in range(len(segments) - 1, 0, -1):
            candidate_module = ".".join(segments[:cut])
            if candidate_module not in self.modules:
                continue
            remainder = segments[cut:]
            if len(remainder) == 1:
                qname = f"{candidate_module}:{remainder[0]}"
                if qname in self.functions or \
                        remainder[0] in self.modules[
                            candidate_module]["classes"]:
                    return self._constructor_or_function(
                        candidate_module, remainder[0])
            elif len(remainder) == 2:
                resolved = self._method(candidate_module, remainder[0],
                                        remainder[1])
                if resolved:
                    return resolved
        return None

    def _constructor_or_function(self, module: str, name: str) -> str:
        """A class name resolves to its ``__init__`` qname if present,
        else a synthetic constructor qname ``module:Class``."""
        info = self.modules[module]
        if name in info["classes"]:
            return f"{module}:{name}"
        return f"{module}:{name}"

    def _method(self, module: str, cls: str, name: str) -> str | None:
        info = self.class_info(module, cls)
        if info is not None and name in info["methods"]:
            return f"{module}:{cls}.{name}"
        return None

    def unique_method(self, name: str) -> str | None:
        """The only definition of *name* across the program, if unique."""
        qnames = self.methods_by_name.get(name, [])
        return qnames[0] if len(qnames) == 1 else None

    def class_of_constructor(self, module: str, dotted: str
                             ) -> tuple | None:
        """(module, class) when *dotted* names a program class."""
        if not dotted or "." in dotted:
            resolved = None
            info = self.modules.get(module)
            if info is not None and dotted and \
                    dotted.split(".")[0] in info["imports"]:
                resolved = self._chase(
                    info["imports"][dotted.split(".")[0]]
                    + dotted[len(dotted.split(".")[0]):])
            if resolved is None:
                return None
            head, _, tail = resolved.rpartition(".")
            if head in self.modules and tail in \
                    self.modules[head]["classes"]:
                return (head, tail)
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if dotted in info["classes"]:
            return (module, dotted)
        if dotted in info["imports"]:
            chased = self._chase(info["imports"][dotted])
            head, _, tail = chased.rpartition(".")
            if head in self.modules and tail in \
                    self.modules[head]["classes"]:
                return (head, tail)
        return None
