"""Incremental cache for the lifecycle analyzer.

Same two-level machinery as the taint cache (module IR keyed by source
hash, whole-run findings memo keyed by the (path, hash) set plus
versions) — see :mod:`repro.analysis.taintcache` — but with its own
file and spec version so the analyzers never cross-invalidate.
"""

from __future__ import annotations

from repro.analysis.lifespec import SPEC_VERSION
from repro.analysis.taintcache import AnalysisCache

DEFAULT_CACHE_PATH = ".lifecycle-cache.json"


class LifecycleCache(AnalysisCache):
    """The lifecycle analyzer's cache (``.lifecycle-cache.json``)."""

    default_path = DEFAULT_CACHE_PATH
    spec_version = SPEC_VERSION
