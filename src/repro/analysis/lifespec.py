"""Async lifecycle facts: spawn/shutdown, cancellation, deadlines.

The LIF4xx catalog covers the failure class PR 9's async service layer
introduced and that SEC0xx/LIN1xx/TNT2xx/CON3xx cannot see: leaked
tasks, swallowed ``CancelledError``, awaits parked while holding locks
or admission slots, async call chains that drop the propagated
:class:`~repro.resilience.service.Deadline`, and acquired resources
with escape paths that skip their release.

Like :mod:`repro.analysis.concspec`, this is vocabulary only — names
and shapes that :mod:`repro.analysis.lifecycle` interprets over the
v4 callgraph IR.  Bump :data:`SPEC_VERSION` on any semantic change so
:class:`~repro.analysis.lifecache.LifecycleCache` discards stale runs.
"""

from __future__ import annotations

from repro.analysis.callgraph import SPAWN_CALL_NAMES
from repro.analysis.concspec import LOCK_NAME_TOKENS, OPAQUE_METHOD_NAMES
from repro.analysis.engine import Severity, register

#: Invalidates memoized LifecycleCache runs on rule-semantics changes.
SPEC_VERSION = 1

LIF401 = register(
    "LIF401", "task spawned without a retained, shut-down handle",
    Severity.ERROR, "code",
    "A create_task/ensure_future/gather/start_soon handle that is "
    "neither awaited nor retained — or is parked on the owner object "
    "without a shutdown path that cancels/awaits it — outlives its "
    "spawner as an orphan: exceptions vanish and close() returns with "
    "work still in flight.",
)
LIF402 = register(
    "LIF402", "broad except around await swallows CancelledError",
    Severity.ERROR, "code",
    "A bare/except-Exception region enclosing an await that does not "
    "re-raise CancelledError turns cooperative cancellation into a "
    "normal-looking answer; the canceller hangs waiting for a task "
    "that already 'handled' its own cancellation.",
)
LIF403 = register(
    "LIF403", "await while holding a threading lock",
    Severity.ERROR, "code",
    "Awaiting inside a ``with <lock>:`` region parks the event loop "
    "with the lock held: every other coroutine (and thread) needing "
    "it stalls for the full await, and a deadline-expired awaiter "
    "leaves no one to release the lock promptly.",
)
LIF404 = register(
    "LIF404", "async call chain drops the propagated Deadline",
    Severity.ERROR, "code",
    "A deadline-carrying caller reaches a wire/sleep/wait operation "
    "through a callee without threading its Deadline into the "
    "callee's deadline slot — the static twin of the runtime "
    "checkpoints: past the drop, nothing bounds the wait.",
)
LIF405 = register(
    "LIF405", "acquired resource released on an escapable path",
    Severity.ERROR, "code",
    "An admission/limiter slot or constructed async resource whose "
    "release/close is missing or sits outside any ``finally`` region "
    "leaks on the exception path: slots starve the bulkhead, "
    "channels strand their readers.",
)

#: Task-spawn call short names (shared with the IR lowerer).
TASK_SPAWN_NAMES = frozenset(SPAWN_CALL_NAMES)

#: Handler name sets that catch ``CancelledError`` too broadly.
BROAD_HANDLER_NAMES = frozenset({"*", "BaseException", "Exception"})
CANCELLED_NAMES = frozenset({"CancelledError"})

#: Methods that constitute an owner's shutdown path: a handle parked
#: on ``self`` must be referenced by one of these to count as managed.
SHUTDOWN_METHOD_NAMES = frozenset({
    "close", "aclose", "shutdown", "stop", "__aexit__", "__del__",
})

#: Container mutators that transfer a task handle into a field.
HANDLE_STORE_NAMES = frozenset({"add", "append", "setdefault"})

#: Parameters that carry a deadline (or an object owning one, like the
#: per-request context) through an async call chain.
DEADLINE_PARAM_NAMES = frozenset({
    "deadline", "context", "until", "at", "deadline_at",
})

#: Attribute reads that derive a deadline from a carrier object
#: (``context.deadline``, ``deadline.at``, ``frame.deadline_at``).
DEADLINE_ATTR_NAMES = frozenset({"deadline", "at", "deadline_at"})

#: Call names (last dotted segment) that mint or derive a Deadline.
DEADLINE_FACTORY_NAMES = frozenset({"deadline", "_attempt_deadline"})
DEADLINE_CLASS_NAME = "Deadline"

#: Wait sinks: short name -> (receiver token, deadline param name,
#: positional index of that param in a bound call).  ``None`` deadline
#: param marks a primitive that is exempt from LIF404 demand (its
#: bound, caller-clipped sleeps — ``asleep``/backoff — are how the
#: deadline protocol is *implemented*, not where it is dropped).
WAIT_SINKS = {
    "wait_until": ("clock", "at", 1),
    "asleep": ("clock", None, None),
    "sleep": ("asyncio", None, None),
}

#: Admission/limiter acquire calls and the release name that must
#: appear later inside a ``finally`` region on the same receiver.
ACQUIRE_RELEASE_PAIRS = {
    "admit": "release",
    "try_acquire": "release",
}

#: Constructors whose instances must be closed before an async
#: function's locals can escape (close name candidates per class).
RESOURCE_CONSTRUCTORS = {
    "AsyncChannel": ("close", "aclose"),
    "VQueue": ("close",),
}

#: Service entry points (qname suffixes): the deadline protocol's
#: roots, called out in findings for orientation.
ENTRY_QNAME_SUFFIXES = (
    "AsyncServiceServer._dispatch",
    "OverloadShield.run",
    "AsyncTrustService.handle_request",
    "AsyncXKMSClient._roundtrip",
    "AsyncXKMSClient._transfer",
)

#: Method names too generic for the unique-definition fallback, over
#: and above the concurrency analyzer's list (wire/future verbs and
#: injected-callable slots that would otherwise mis-bind to an
#: unrelated unique definition).
OPAQUE_LIFECYCLE_NAMES = frozenset(OPAQUE_METHOD_NAMES) | frozenset({
    "send", "recv", "call", "check", "cancel", "result", "done",
    "handler",
})


def is_entry(qname: str) -> bool:
    """Is *qname* one of the documented service entry points?"""
    name = qname.replace(":", ".")
    return any(name.endswith(suffix) for suffix in ENTRY_QNAME_SUFFIXES)


def is_lockish(dotted: str) -> bool:
    """Does a ``with`` context expression look like a threading lock?"""
    if not dotted:
        return False
    last = dotted.rsplit(".", 1)[-1].lower()
    return any(token in last for token in LOCK_NAME_TOKENS)
