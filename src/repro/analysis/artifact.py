"""Static security auditor for disc artifacts — no key material needed.

Walks signed manifests, encrypted packages and whole disc images and
reports what a *reviewer* needs to know before mastering: what each
``ds:Reference`` actually covers after transforms, which markup/code
nodes are unsigned, whether the Id landscape is wrapping-susceptible,
which algorithms are weak, whether encrypted-then-signed content is
missing the Decryption Transform, and whether permission-request
claims are consistent with the shipped XACML policy.

Everything here is structural: signatures are not cryptographically
verified (that is the player's job, with keys); the auditor instead
answers the paper's harder question — *what was actually signed?*
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.engine import register
from repro.analysis.findings import AnalysisResult, Severity, display_path
from repro.dsig.transforms import (
    DECRYPT_BINARY, DECRYPT_XML, ENVELOPED_SIGNATURE,
)
from repro.errors import ReproError
from repro.xacml.model import Policy, Request
from repro.xacml.pdp import PDP
from repro.xmlcore import (
    DSIG_NS, MHP_PERMISSION_NS, XACML_NS, XMLENC_NS, parse_element,
)
from repro.xmlcore.c14n import ALL_C14N_ALGORITHMS
from repro.xmlcore.tree import Element

# Algorithm strength policy (the auditor's stance, not the player's).
WEAK_DIGESTS = {
    "http://www.w3.org/2000/09/xmldsig#sha1": "SHA-1",
}
WEAK_SIGNATURES = {
    "http://www.w3.org/2000/09/xmldsig#rsa-sha1": "RSA-SHA1",
    "http://www.w3.org/2000/09/xmldsig#hmac-sha1": "HMAC-SHA1",
}
WEAK_CIPHERS = {
    "http://www.w3.org/2001/04/xmlenc#tripledes-cbc": "Triple-DES-CBC",
    "http://www.w3.org/2001/04/xmlenc#des-cbc": "DES-CBC",
}
LEGACY_KEY_TRANSPORT = {
    "http://www.w3.org/2001/04/xmlenc#rsa-1_5": "RSA PKCS#1 v1.5",
}
MIN_RSA_BITS = 2048

# Node kinds the coverage pass treats as *must-sign* / *should-sign*.
EXECUTABLE_LOCALS = ("script", "code")
MARKUP_LOCALS = ("markup", "submarkup")

SEC001 = register(
    "SEC001", "duplicate Id attributes", Severity.ERROR, "artifact",
    "Two elements carry the same Id value; ID-based references are "
    "ambiguous — the classic signature-wrapping precondition.",
)
SEC002 = register(
    "SEC002", "ID reference not bound to position", Severity.WARNING,
    "artifact",
    "A same-document #id reference is resolved by Id scan only; the "
    "signed subtree can be relocated without breaking the digest.",
)
SEC003 = register(
    "SEC003", "enveloped-transform anomaly", Severity.ERROR, "artifact",
    "An enveloped-signature transform appears on a reference whose "
    "target does not contain the signature, so the transform cannot "
    "remove it; the signed octets are not what they appear to be.",
)
SEC004 = register(
    "SEC004", "dangling same-document reference", Severity.ERROR,
    "artifact",
    "A #id reference names an Id that no element in the document "
    "carries; the signature can never validate as authored.",
)
SEC010 = register(
    "SEC010", "weak digest algorithm", Severity.WARNING, "artifact",
    "A ds:DigestMethod uses a deprecated hash (SHA-1).",
)
SEC011 = register(
    "SEC011", "weak signature algorithm", Severity.WARNING, "artifact",
    "A ds:SignatureMethod uses a deprecated primitive (SHA-1 family).",
)
SEC012 = register(
    "SEC012", "short RSA key", Severity.ERROR, "artifact",
    f"KeyInfo carries an RSA key shorter than {MIN_RSA_BITS} bits.",
)
SEC013 = register(
    "SEC013", "deprecated block cipher", Severity.WARNING, "artifact",
    "An xenc:EncryptionMethod uses DES/Triple-DES.",
)
SEC014 = register(
    "SEC014", "legacy key transport", Severity.INFO, "artifact",
    "EncryptedKey uses RSA PKCS#1 v1.5 key transport "
    "(padding-oracle-prone; acceptable only inside a closed profile).",
)
SEC020 = register(
    "SEC020", "unsigned executable content", Severity.ERROR, "artifact",
    "A script/code node in a signed document is covered by no "
    "ds:Reference; the player would execute unauthenticated code.",
)
SEC021 = register(
    "SEC021", "unsigned markup node", Severity.WARNING, "artifact",
    "A markup/submarkup node in a signed document is covered by no "
    "ds:Reference.",
)
SEC022 = register(
    "SEC022", "encrypted-then-signed without Decryption Transform",
    Severity.WARNING, "artifact",
    "A reference covers EncryptedData but its transform chain has no "
    "Decryption Transform; after decryption the digest cannot be "
    "checked against what was signed.",
)
SEC030 = register(
    "SEC030", "permission request not granted by policy",
    Severity.ERROR, "artifact",
    "The permission request file claims a permission the shipped "
    "XACML policy does not Permit.",
)
SEC040 = register(
    "SEC040", "unsigned interactive cluster", Severity.WARNING,
    "artifact",
    "The disc's cluster markup carries no signature at all.",
)
SEC041 = register(
    "SEC041", "disc structure inconsistent", Severity.ERROR, "artifact",
    "The disc image fails structural validation (missing streams or "
    "clip information for referenced clips).",
)


def _node_locator(root: Element, node: Element) -> str:
    """A stable human locator: ``#id`` when available, else a path."""
    for attr in node.attrs:
        if attr.local in ("Id", "ID", "id"):
            return f"#{attr.value}"
    segments: list[str] = []
    current: Element | None = node
    while isinstance(current, Element):
        parent = current.parent
        if isinstance(parent, Element):
            same = [c for c in parent.child_elements()
                    if c.local == current.local]
            index = same.index(current) + 1
            segments.append(f"{current.local}[{index}]"
                            if len(same) > 1 else current.local)
            current = parent
        else:
            segments.append(current.local)
            break
    return "/" + "/".join(reversed(segments))


def _is_descendant(node: Element, ancestor: Element) -> bool:
    current = node
    while isinstance(current, Element):
        if current is ancestor:
            return True
        current = current.parent  # type: ignore[assignment]
    return False


@dataclass
class ReferenceShape:
    """The auditor's lenient view of one ds:Reference."""

    uri: str | None
    transforms: list[str]
    digest_method: str
    element: Element


@dataclass
class _DocumentAudit:
    """Per-document working state for one artifact."""

    name: str
    root: Element
    id_map: dict[str, list[Element]] = field(default_factory=dict)
    signatures: list[Element] = field(default_factory=list)


class ArtifactAuditor:
    """Audits artifacts and accumulates an :class:`AnalysisResult`.

    One auditor instance is one run: documents audited together share
    the cross-document checks (permission request vs. XACML policy).
    """

    def __init__(self, *, min_rsa_bits: int = MIN_RSA_BITS):
        self.min_rsa_bits = min_rsa_bits
        self.result = AnalysisResult()
        self._requests: list[tuple[str, Element]] = []
        self._policies: list[tuple[str, Policy]] = []

    # -- entry points ---------------------------------------------------------

    def audit_element(self, root: Element, name: str) -> None:
        """Audit one parsed document."""
        self.result.scanned += 1
        doc = _DocumentAudit(name=name, root=root)
        for node in root.iter():
            for attr in node.attrs:
                if attr.local in ("Id", "ID", "id"):
                    doc.id_map.setdefault(attr.value, []).append(node)
        doc.signatures = list(root.iter("Signature", DSIG_NS))
        self._audit_ids(doc)
        self._audit_algorithms(doc)
        covered = self._audit_references(doc)
        self._audit_coverage(doc, covered)
        self._collect_policy_material(doc)

    def audit_bytes(self, data: bytes, name: str) -> None:
        """Audit raw bytes: an XML document or a zipped disc image."""
        if data[:2] == b"PK":
            from repro.disc.image import DiscImage
            import io
            import zipfile
            image = DiscImage()
            with zipfile.ZipFile(io.BytesIO(data)) as archive:
                for member in archive.namelist():
                    image.write(member, archive.read(member))
            self.audit_disc_image(image, name)
            return
        try:
            root = parse_element(data)
        except ReproError as exc:
            self.result.findings.append(SEC041.finding(
                name, f"artifact does not parse as XML: {exc}"
            ))
            self.result.scanned += 1
            return
        self.audit_element(root, name)

    def audit_disc_image(self, image, name: str) -> None:
        """Audit a :class:`~repro.disc.image.DiscImage`."""
        for problem in image.validate_structure():
            self.result.findings.append(SEC041.finding(name, problem))
        cluster_path = image.cluster_path()
        had_signature = False
        for path in image.paths():
            if not path.endswith(".xml"):
                continue
            member = f"{name}!{path}"
            try:
                root = parse_element(image.read(path))
            except ReproError as exc:
                self.result.findings.append(SEC041.finding(
                    member, f"does not parse: {exc}"
                ))
                continue
            if path == cluster_path and \
                    root.find("Signature", DSIG_NS) is not None:
                had_signature = True
            self.audit_element(root, member)
        if image.exists(cluster_path) and not had_signature:
            self.result.findings.append(SEC040.finding(
                f"{name}!{cluster_path}",
                "cluster markup carries no ds:Signature",
            ))

    def audit_path(self, path: str) -> None:
        """Audit a file (XML or zipped image) or a directory tree."""
        path = display_path(path)
        if os.path.isdir(path):
            if os.path.isdir(os.path.join(path, "BDMV")):
                from repro.disc.image import DiscImage
                self.audit_disc_image(
                    DiscImage.load_from_directory(path), path,
                )
                return
            # Recurse so nested BDMV trees are audited as whole images,
            # and loose XML/zip artifacts individually.
            for entry in sorted(os.listdir(path)):
                full = os.path.join(path, entry)
                if os.path.isdir(full):
                    self.audit_path(full)
                elif entry.endswith((".xml", ".zip", ".disc")):
                    self.audit_path(full)
            return
        with open(path, "rb") as handle:
            self.audit_bytes(handle.read(), path)

    def finish(self) -> AnalysisResult:
        """Run cross-document checks and return the result."""
        self._audit_permissions()
        return self.result

    # -- per-document passes ---------------------------------------------------

    def _audit_ids(self, doc: _DocumentAudit) -> None:
        for value, nodes in sorted(doc.id_map.items()):
            if len(nodes) > 1:
                self.result.findings.append(SEC001.finding(
                    doc.name,
                    f"Id {value!r} appears on {len(nodes)} elements",
                    detail="\n".join(
                        _node_locator(doc.root, n) for n in nodes
                    ),
                ))

    def _audit_algorithms(self, doc: _DocumentAudit) -> None:
        for signature in doc.signatures:
            for method in signature.findall("SignatureMethod", DSIG_NS):
                algorithm = method.get("Algorithm") or ""
                if algorithm in WEAK_SIGNATURES:
                    self.result.findings.append(SEC011.finding(
                        doc.name,
                        f"SignatureMethod {WEAK_SIGNATURES[algorithm]} "
                        "is deprecated",
                    ))
            self._audit_key_info(doc, signature)
        for method in doc.root.iter("EncryptionMethod", XMLENC_NS):
            algorithm = method.get("Algorithm") or ""
            if algorithm in WEAK_CIPHERS:
                self.result.findings.append(SEC013.finding(
                    doc.name,
                    f"EncryptionMethod {WEAK_CIPHERS[algorithm]} "
                    "is deprecated",
                ))
            elif algorithm in LEGACY_KEY_TRANSPORT:
                self.result.findings.append(SEC014.finding(
                    doc.name,
                    f"key transport {LEGACY_KEY_TRANSPORT[algorithm]}",
                ))

    def _audit_key_info(self, doc: _DocumentAudit,
                        signature: Element) -> None:
        key_info_el = signature.first_child("KeyInfo", DSIG_NS)
        if key_info_el is None:
            return
        try:
            from repro.dsig.keyinfo import KeyInfo
            key_info = KeyInfo.from_element(key_info_el)
        except ReproError:
            return
        keys = []
        if key_info.key_value is not None:
            keys.append(("KeyValue", key_info.key_value))
        for certificate in key_info.certificates:
            keys.append((f"certificate {certificate.subject!r}",
                         certificate.public_key))
        for origin, key in keys:
            bits = getattr(key, "bit_length", 0)
            if 0 < bits < self.min_rsa_bits:
                self.result.findings.append(SEC012.finding(
                    doc.name,
                    f"{origin}: {bits}-bit RSA key "
                    f"(< {self.min_rsa_bits})",
                ))

    # -- reference / coverage passes ------------------------------------------

    def _reference_shapes(self, signature: Element) -> list[ReferenceShape]:
        shapes = []
        signed_info = signature.first_child("SignedInfo", DSIG_NS)
        if signed_info is None:
            return shapes
        for ref_el in signed_info.findall("Reference", DSIG_NS):
            transforms = [
                t.get("Algorithm") or ""
                for t in ref_el.findall("Transform", DSIG_NS)
            ]
            digest_el = ref_el.first_child("DigestMethod", DSIG_NS)
            shapes.append(ReferenceShape(
                uri=ref_el.get("URI"),
                transforms=transforms,
                digest_method=(digest_el.get("Algorithm") or ""
                               if digest_el is not None else ""),
                element=ref_el,
            ))
        return shapes

    def _resolve_target(self, doc: _DocumentAudit,
                        shape: ReferenceShape) -> Element | None:
        if shape.uri == "":
            return doc.root
        if shape.uri and shape.uri.startswith("#"):
            matches = doc.id_map.get(shape.uri[1:], [])
            # Duplicates are already SEC001; resolving the first keeps
            # the coverage map useful for the rest of the audit.
            return matches[0] if matches else None
        return None

    def _audit_references(self, doc: _DocumentAudit
                          ) -> dict[int, set[int]]:
        """Audit every reference; return per-signature covered node ids."""
        covered: dict[int, set[int]] = {}
        for sig_index, signature in enumerate(doc.signatures):
            sig_name = signature.get("Id") or f"signature[{sig_index + 1}]"
            entries = []
            covered_ids: set[int] = set()
            for shape in self._reference_shapes(signature):
                entry = self._audit_one_reference(
                    doc, signature, sig_name, shape, covered_ids,
                )
                entries.append(entry)
            covered[id(signature)] = covered_ids
            self.result.coverage.append({
                "artifact": f"{doc.name} {sig_name}",
                "references": entries,
            })
        return covered

    def _audit_one_reference(self, doc: _DocumentAudit,
                             signature: Element, sig_name: str,
                             shape: ReferenceShape,
                             covered_ids: set[int]) -> dict:
        where = f"{doc.name} {sig_name}"
        enveloped = ENVELOPED_SIGNATURE in shape.transforms
        decrypting = any(t in (DECRYPT_XML, DECRYPT_BINARY)
                         for t in shape.transforms)
        if shape.digest_method in WEAK_DIGESTS:
            self.result.findings.append(SEC010.finding(
                where,
                f"reference {shape.uri!r} digests with "
                f"{WEAK_DIGESTS[shape.digest_method]}",
            ))
        target = self._resolve_target(doc, shape)
        entry = {"uri": shape.uri, "covers": None, "elements": 0}
        if shape.uri is not None and shape.uri.startswith("#"):
            if target is None:
                self.result.findings.append(SEC004.finding(
                    where,
                    f"reference {shape.uri!r} matches no element",
                ))
            elif not enveloped and \
                    not _is_descendant(signature, target):
                self.result.findings.append(SEC002.finding(
                    where,
                    f"reference {shape.uri!r} is resolved by Id only; "
                    "its subtree is not position-bound",
                    detail=f"target {_node_locator(doc.root, target)}",
                ))
        if shape.uri not in (None, "") and \
                not shape.uri.startswith("#"):
            entry["covers"] = shape.uri  # external resource
        if enveloped and (target is None or
                          not _is_descendant(signature, target)):
            self.result.findings.append(SEC003.finding(
                where,
                f"enveloped-signature transform on {shape.uri!r} but "
                "the signature is not inside the referenced subtree",
            ))
        unknown = [
            t for t in shape.transforms
            if t and t not in ALL_C14N_ALGORITHMS
            and t not in (ENVELOPED_SIGNATURE, DECRYPT_XML,
                          DECRYPT_BINARY)
        ]
        if target is not None:
            subtree = [el for el in target.iter()
                       if not (enveloped
                               and _is_descendant(el, signature))]
            # Unknown transforms (XPath, base64, ...) may shrink the
            # covered set arbitrarily, so claim nothing for them.
            if not unknown:
                covered_ids.update(id(el) for el in subtree)
                entry["covers"] = _node_locator(doc.root, target)
                entry["elements"] = len(subtree)
            if not decrypting and any(
                el.matches("EncryptedData", XMLENC_NS)
                for el in subtree
            ):
                self.result.findings.append(SEC022.finding(
                    where,
                    f"reference {shape.uri!r} covers EncryptedData "
                    "without a Decryption Transform",
                ))
        return entry

    def _audit_coverage(self, doc: _DocumentAudit,
                        covered: dict[int, set[int]]) -> None:
        if not doc.signatures:
            return
        all_covered: set[int] = set()
        for ids in covered.values():
            all_covered.update(ids)
        unsigned: list[str] = []
        for node in doc.root.iter():
            if id(node) in all_covered:
                continue
            if any(_is_descendant(node, s) for s in doc.signatures):
                continue  # signature-internal markup
            if any(a.matches("EncryptedData", XMLENC_NS)
                   for a in self._ancestors(node)):
                continue  # opaque ciphertext internals
            locator = _node_locator(doc.root, node)
            if node.local in EXECUTABLE_LOCALS:
                self.result.findings.append(SEC020.finding(
                    doc.name,
                    f"executable node {locator} is not covered by any "
                    "signature reference",
                ))
                unsigned.append(locator)
            elif node.local in MARKUP_LOCALS:
                self.result.findings.append(SEC021.finding(
                    doc.name,
                    f"markup node {locator} is not covered by any "
                    "signature reference",
                ))
                unsigned.append(locator)
        if self.result.coverage and unsigned:
            self.result.coverage[-1]["unsigned"] = unsigned

    @staticmethod
    def _ancestors(node: Element):
        current = node.parent
        while isinstance(current, Element):
            yield current
            current = current.parent

    # -- permission / policy consistency --------------------------------------

    def _collect_policy_material(self, doc: _DocumentAudit) -> None:
        for node in doc.root.iter("permissionrequestfile",
                                  MHP_PERMISSION_NS):
            self._requests.append((doc.name, node))
        for node in doc.root.iter("Policy", XACML_NS):
            try:
                self._policies.append((doc.name, Policy.from_element(node)))
            except ReproError:
                pass

    def _audit_permissions(self) -> None:
        """Cross-check request files against shipped XACML policies.

        Convention (shared with the fixtures and DESIGN.md §8): a
        permission grant is a Permit rule matching
        ``Resource/permission = <name>`` and
        ``Subject/app-id = <appid>`` (or an empty target).  Requests
        are only auditable when at least one policy ships alongside.
        """
        if not self._requests or not self._policies:
            return
        pdp = PDP()
        for name, node in self._requests:
            app_id = node.get("appid") or ""
            for child in node.child_elements():
                if child.get("value") != "true":
                    continue
                request = Request(
                    subject={"app-id": [app_id]},
                    resource={"permission": [child.local]},
                    action={"action-id": ["use"]},
                )
                granted = any(
                    pdp.evaluate_policy(policy, request).value == "Permit"
                    for _source, policy in self._policies
                )
                if not granted:
                    self.result.findings.append(SEC030.finding(
                        name,
                        f"application {app_id!r} requests "
                        f"{child.local!r} but no shipped policy "
                        "permits it",
                    ))


def audit_paths(paths, *, min_rsa_bits: int = MIN_RSA_BITS
                ) -> AnalysisResult:
    """Audit files/directories/images and return the combined result."""
    auditor = ArtifactAuditor(min_rsa_bits=min_rsa_bits)
    for path in paths:
        auditor.audit_path(path)
    return auditor.finish()
