"""Content-hash-keyed persistence for the whole-program analyzers.

Two cache levels, one JSON file:

* **module level** — the extracted IR of every module, keyed by the
  SHA-256 of its source bytes.  An edited file misses; everything else
  skips ``ast`` parsing and IR lowering on the next run.
* **run level** — the full findings list, keyed by a digest over the
  sorted ``(path, hash)`` set plus the spec/IR format versions.  A
  completely unchanged tree returns memoized findings without running
  the fixpoint at all — this is what makes the warm CI/pre-commit path
  near-free.

The file is an implementation detail (gitignored); deleting it only
costs one cold run.  Version bumps in the IR or the analyzer's spec
invalidate everything at load time.

:class:`AnalysisCache` is the shared machinery; each analyzer pins its
own file and spec version in a subclass (:class:`TaintCache` here,
``ConcurrencyCache`` in :mod:`repro.analysis.conccache`) so the two
never cross-invalidate.
"""

from __future__ import annotations

import json
import os

from repro.analysis.callgraph import IR_VERSION
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.taintspec import SPEC_VERSION

CACHE_FORMAT = 1
DEFAULT_CACHE_PATH = ".taint-cache.json"
_MAX_RUNS = 8  # keep the file bounded across branch switches


def content_hash(data: bytes) -> str:
    import hashlib

    return hashlib.sha256(data).hexdigest()


class AnalysisCache:
    """One on-disk cache instance (load once, save once)."""

    default_path: str = DEFAULT_CACHE_PATH
    spec_version: int = SPEC_VERSION

    def __init__(self, path: str | None = None):
        self.path = path or self.default_path
        self.hits = 0
        self.misses = 0
        self.run_hit = False
        self._modules: dict[str, dict] = {}
        self._runs: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if payload.get("format") != CACHE_FORMAT or \
                payload.get("ir_version") != IR_VERSION or \
                payload.get("spec_version") != self.spec_version:
            return
        self._modules = payload.get("modules", {})
        self._runs = payload.get("runs", {})

    def save(self) -> None:
        runs = dict(sorted(self._runs.items(),
                           key=lambda kv: kv[1].get("stamp", 0))
                    [-_MAX_RUNS:])
        payload = {
            "format": CACHE_FORMAT,
            "ir_version": IR_VERSION,
            "spec_version": self.spec_version,
            "modules": self._modules,
            "runs": runs,
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, self.path)

    # -- module level ---------------------------------------------------------

    def module_info(self, path: str, digest: str) -> dict | None:
        entry = self._modules.get(path)
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry["info"]
        self.misses += 1
        return None

    def store_module(self, path: str, digest: str, info: dict) -> None:
        self._modules[path] = {"hash": digest, "info": info}

    # -- run level ------------------------------------------------------------

    def _run_key(self, entries) -> str:
        material = json.dumps(
            sorted((path, digest) for path, digest, _ in entries)
        )
        return content_hash(
            f"{IR_VERSION}|{self.spec_version}|{material}".encode()
        )

    def run_result(self, entries) -> AnalysisResult | None:
        entry = self._runs.get(self._run_key(entries))
        if entry is None:
            return None
        self.run_hit = True
        self.hits += len(entries)
        result = AnalysisResult()
        result.scanned = entry["scanned"]
        result.findings = [
            Finding(
                rule_id=item["rule_id"],
                severity=Severity[item["severity"]],
                location=item["location"],
                message=item["message"],
                line=item["line"],
                detail=item["detail"],
            )
            for item in entry["findings"]
        ]
        return result

    def store_run(self, entries, result: AnalysisResult) -> None:
        stamps = [run.get("stamp", 0) for run in self._runs.values()]
        self._runs[self._run_key(entries)] = {
            "scanned": result.scanned,
            "stamp": max(stamps, default=0) + 1,
            "findings": [
                {
                    "rule_id": f.rule_id,
                    "severity": f.severity.name,
                    "location": f.location,
                    "message": f.message,
                    "line": f.line,
                    "detail": f.detail,
                }
                for f in result.findings
            ],
        }


class TaintCache(AnalysisCache):
    """The taint analyzer's cache (``.taint-cache.json``)."""

    default_path = DEFAULT_CACHE_PATH
    spec_version = SPEC_VERSION
