"""The shared rule engine: registry, stable IDs, severities.

Both frontends — the artifact auditor and the codebase linter —
declare their rules here.  A rule is metadata plus an ID; the check
logic lives with the frontend, which asks its :class:`Rule` to mint
findings so ID/severity can never drift from the catalog.

Rule ID conventions::

    SEC0xx   artifact structure / wrapping susceptibility
    SEC01x   artifact algorithm strength
    SEC02x   artifact signature coverage / ordering
    SEC03x   artifact permission / policy consistency
    SEC04x   disc-image level checks
    LIN1xx   codebase invariants (AST linter)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Finding, Severity


@dataclass(frozen=True)
class Rule:
    """One registered rule (identity + metadata, no check logic)."""

    rule_id: str
    title: str
    severity: Severity
    domain: str  # "artifact" | "code"
    description: str

    def finding(self, location: str, message: str, *, line: int = 0,
                detail: str = "") -> Finding:
        """Mint a finding carrying this rule's ID and severity."""
        return Finding(
            rule_id=self.rule_id, severity=self.severity,
            location=location, message=message, line=line, detail=detail,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_id: str, title: str, severity: Severity, domain: str,
             description: str) -> Rule:
    """Register a rule; IDs are unique across both frontends."""
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    if domain not in ("artifact", "code"):
        raise ValueError(f"unknown rule domain {domain!r}")
    rule = Rule(rule_id, title, severity, domain, description)
    _REGISTRY[rule_id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ValueError(f"unknown rule {rule_id!r}") from None


def all_rules(domain: str | None = None) -> list[Rule]:
    """The catalog, sorted by ID (optionally one domain)."""
    rules = sorted(_REGISTRY.values(), key=lambda r: r.rule_id)
    if domain is not None:
        rules = [r for r in rules if r.domain == domain]
    return rules


def catalog_lines(domain: str | None = None) -> list[str]:
    """Human-readable rule catalog (the ``--rules`` listing)."""
    lines = []
    for rule in all_rules(domain):
        lines.append(f"{rule.rule_id}  {rule.severity.name.lower():8s} "
                     f"{rule.title}")
        lines.append(f"         {rule.description}")
    return lines
