"""Interprocedural concurrency-safety analysis over the repo's source.

RacerD-style, over the same per-function IR the taint analyzer uses
(:mod:`repro.analysis.callgraph`, IR v3 adds branch-test reads and
``with``-region markers):

1. **Root discovery** — callables handed to executor ``submit``/
   ``map`` sites, ``threading.Thread(target=...)`` constructors,
   ``async def`` bodies, and the declared chaos drivers
   (:data:`repro.analysis.concspec.ROOT_QNAMES`).
2. **Context walk** — from each root, walk the call graph carrying the
   set of held locks (lock regions come from ``with <lock-named>:``
   markers; lock identity is ``module:Class.attr`` for instance locks
   and ``module:name`` for module-level locks).  Every read/write of a
   ``self.<attr>`` field or module global is recorded with the held
   set, the originating root, and whether the read sat in a branch
   test.  Functions no root reaches are walked once under the ``main``
   context so main-thread writers of root-read state are visible.
3. **Rules** — findings mint only for state on the explicit shared
   surface (:data:`repro.analysis.concspec.SHARED_SURFACE`); a field
   is *shared* when a concurrency root writes it, or a root reads it
   and anyone writes it.  Constructor writes are pre-publication and
   never count.

   * CON301 — shared field written while holding no lock.
   * CON302 — branch test reads a field (directly or through a local
     bound to it) and a later write in the same function has no lock
     in common with the test.
   * CON303 — inconsistent guarded-by sets across a field's access
     sites; a held lock spanning a blocking call; a held non-reentrant
     lock spanning a call that can re-acquire it.
   * CON304 — a blocking call (transitively) reachable from an async
     root.

Soundness caveats (DESIGN §13): lock identity is name-based per class
(two instances of one class are assumed to alias, separate locks with
one name are merged), the walk is context-insensitive beyond the held
set, and sharedness is an allowlist — state outside the surface is
assumed context-owned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import concspec as spec
from repro.analysis.callgraph import Program, extract_module
from repro.analysis.findings import AnalysisResult, display_path

MAIN_CONTEXT = "main"


def _expr_dotted(expr) -> str:
    """Rebuild ``a.b.c`` from a lowered name/attr chain (else ``""``)."""
    parts: list[str] = []
    current = expr
    while current and current[0] == "attr":
        parts.append(current[2])
        current = current[1]
    if current and current[0] == "name":
        parts.append(current[1])
        return ".".join(reversed(parts))
    return ""


@dataclass
class _Access:
    kind: str            # "read" | "write"
    held: frozenset
    context: str         # root qname or MAIN_CONTEXT
    func: str            # accessing function qname
    path: str
    line: int


class _FunctionScan:
    """One linear pass over a function's IR: the event list the walk
    replays, plus local lock/blocking facts for transitive summaries.

    Events (source order)::

        ("acquire", lock_id, line)
        ("release", lock_id, line)
        ("read", field_key, line, in_test)
        ("write", field_key, line)
        ("call", short, hint, resolved_qname|None, full_dotted,
         bare, line)
    """

    def __init__(self, program: Program, ir: dict, path: str):
        self.program = program
        self.ir = ir
        self.module = ir["module"]
        self.cls = ir["cls"]
        self.path = path
        info = program.modules.get(self.module, {})
        self.module_vars = set(info.get("module_vars", ()))
        self.imports = dict(info.get("imports", {}))
        self.declared_globals = set(ir.get("globals", ()))
        self.locals: set[str] = set(ir["params"])
        self.var_types: dict[str, tuple] = {}
        if ir["cls"] and ir["params"] and \
                ir["params"][0] in ("self", "cls"):
            self.var_types[ir["params"][0]] = (self.module, ir["cls"])
        #: local name -> field keys its defining expression read
        #: (check-then-act through a temporary: ``v = self._memo.get(k)``)
        self.bindings: dict[str, frozenset] = {}
        self.events: list[tuple] = []
        self.acquires: set[str] = set()
        self.blocking: list[tuple] = []       # (origin, line)
        self.callees: set[str] = set()
        self.submitted: list[str] = []        # root qnames dispatched here
        for op in ir["ops"]:
            self._op(op)

    # -- ops ------------------------------------------------------------------

    def _op(self, op: list) -> None:
        kind = op[0]
        if kind == "assign":
            _, targets, expr, line = op
            reads = self._expr(expr, line)
            for target in targets:
                self._write_target(target, line, reads, expr)
        elif kind == "storesub":
            _, recv_hint, key_expr, value_expr, line = op
            self._expr(key_expr, line)
            self._expr(value_expr, line)
            field = self._hint_field(recv_hint)
            if field is not None:
                self.events.append(("write", field, line))
        elif kind in ("expr", "return"):
            self._expr(op[1], op[2])
        elif kind == "test":
            self._expr(op[1], op[2], in_test=True)
        elif kind == "raise":
            _, _exc, args, line, _handled = op
            for arg in args:
                self._expr(arg, line)
        elif kind == "lockenter":
            _, dotted, line = op
            lock = self._lock_id(dotted)
            if lock is not None:
                self.acquires.add(lock)
                self.events.append(("acquire", lock, line))
        elif kind == "lockexit":
            _, dotted, line = op
            lock = self._lock_id(dotted)
            if lock is not None:
                self.events.append(("release", lock, line))

    def _write_target(self, target: str, line: int, reads: set,
                      expr: list) -> None:
        if "." in target:
            base, attr = target.split(".", 1)
            if base == "self" and self.cls and "." not in attr:
                self.events.append(
                    ("write", ("attr", self.module, self.cls, attr),
                     line))
            return
        if target in self.declared_globals:
            self.events.append(
                ("write", ("global", self.module, target), line))
            return
        self.locals.add(target)
        if reads:
            self.bindings[target] = frozenset(reads)
        else:
            self.bindings.pop(target, None)
        self._track_type(target, expr)

    def _track_type(self, target: str, expr: list) -> None:
        if expr and expr[0] == "call":
            resolved = self.program.class_of_constructor(
                self.module, expr[1])
            if resolved is not None:
                self.var_types[target] = resolved
            else:
                self.var_types.pop(target, None)
        elif expr and expr[0] != "name":
            self.var_types.pop(target, None)

    def _hint_field(self, recv_hint: str) -> tuple | None:
        """Field key for a subscript-store receiver hint."""
        if not recv_hint:
            return None
        parts = recv_hint.split(".")
        if parts[0] == "self" and self.cls and len(parts) >= 2:
            return ("attr", self.module, self.cls, parts[1])
        if len(parts) == 1 and parts[0] in self.module_vars and \
                parts[0] not in self.locals:
            return ("global", self.module, parts[0])
        return None

    def _lock_id(self, dotted: str) -> str | None:
        if not dotted:
            return None
        last = dotted.rsplit(".", 1)[-1].lower()
        if not any(token in last for token in spec.LOCK_NAME_TOKENS):
            return None
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and self.cls and len(parts) == 2:
            return f"{self.module}:{self.cls}.{parts[1]}"
        return f"{self.module}:{dotted}"

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr, line: int, in_test: bool = False) -> set:
        """Emit read/call events; return the field keys read."""
        reads: set = set()
        if not expr:
            return reads
        kind = expr[0]
        if kind == "name":
            name = expr[1]
            if in_test and name in self.bindings:
                for field in self.bindings[name]:
                    reads.add(field)
                    self.events.append(("read", field, line, True))
            if name in self.declared_globals or (
                    name in self.module_vars
                    and name not in self.locals):
                field = ("global", self.module, name)
                reads.add(field)
                self.events.append(("read", field, line, in_test))
        elif kind == "attr":
            base = expr[1]
            if base and base[0] == "name" and base[1] == "self" and \
                    self.cls:
                method = self._own_method(expr[2])
                if method is not None:
                    # Property getters (and methods used as values)
                    # execute code: traverse instead of recording a
                    # data read, so the lazy-provider pattern is
                    # visible through its property.
                    self.events.append(
                        ("call", expr[2], "self", method,
                         f"self.{expr[2]}", False, line))
                    self.callees.add(method)
                else:
                    field = ("attr", self.module, self.cls, expr[2])
                    reads.add(field)
                    self.events.append(("read", field, line, in_test))
            else:
                reads |= self._expr(base, line, in_test)
        elif kind == "sub":
            reads |= self._expr(expr[1], line, in_test)
            reads |= self._expr(expr[2], line, in_test)
        elif kind == "many":
            for part in expr[1]:
                reads |= self._expr(part, line, in_test)
        elif kind == "call":
            reads |= self._call(expr, in_test)
        return reads

    def _call(self, expr, in_test: bool) -> set:
        _, dotted, recv, args, kwargs, line = expr
        reads: set = set()
        short = dotted.rsplit(".", 1)[-1] if dotted else ""
        if recv is not None:
            reads |= self._expr(recv, line, in_test)
            if short in spec.MUTATOR_NAMES:
                field = self._recv_field(recv)
                if field is not None:
                    self.events.append(("write", field, line))
        for arg in args:
            reads |= self._expr(arg, line, in_test)
        for _kw, value in kwargs:
            reads |= self._expr(value, line, in_test)

        hint = self._receiver_hint(recv, dotted)
        qname = self._resolve(dotted)
        full_dotted = self._import_resolved(dotted)
        self.events.append(
            ("call", short, hint, qname, full_dotted,
             recv is None, line))
        if qname is not None:
            self.callees.add(qname)
        origin = spec.blocking_origin(short, hint, full_dotted,
                                      recv is None)
        if origin is not None:
            self.blocking.append((origin, line))
        self._note_dispatch(short, hint, args, kwargs)
        return reads

    def _note_dispatch(self, short: str, hint: str, args,
                       kwargs) -> None:
        """Record callables dispatched onto another execution context."""
        target = None
        lowered = hint.lower()
        executorish = any(token in lowered
                          for token in spec.EXECUTOR_RECEIVER_TOKENS)
        if short in spec.SUBMIT_NAMES and executorish and args:
            target = args[0]
        elif short in spec.MAP_NAMES and executorish and args:
            target = args[0]
        elif short in spec.THREAD_CONSTRUCTORS:
            for kw, value in kwargs:
                if kw == "target":
                    target = value
        elif short in spec.TASK_SPAWN_NAMES and args:
            target = args[0]
        elif short in spec.GROUP_SPAWN_NAMES and args:
            target = args[0]
        elif short in spec.EXECUTOR_RUN_NAMES and len(args) >= 2:
            # run_in_executor(executor, fn, *args): the callable is the
            # second argument, and it runs on a *thread*.
            target = args[1]
        if target is None:
            return
        # asyncio spawns usually wrap a call — create_task(self._f())
        # — so the spawned callee is the call's own dotted name.
        if target[0] == "call":
            dotted = target[1]
        else:
            dotted = _expr_dotted(target)
        qname = self._resolve(dotted)
        if qname is not None:
            self.submitted.append(qname)

    def _own_method(self, name: str) -> str | None:
        if not self.cls:
            return None
        info = self.program.class_info(self.module, self.cls)
        if info is not None and name in info["methods"]:
            return f"{self.module}:{self.cls}.{name}"
        return None

    def _receiver_hint(self, recv, dotted: str) -> str:
        if recv is None:
            return ""
        if recv[0] == "name":
            return recv[1]
        if recv[0] == "attr":
            return recv[2]
        if "." in dotted:
            return dotted.rsplit(".", 2)[-2]
        return ""

    def _recv_field(self, recv) -> tuple | None:
        if recv[0] == "attr" and recv[1] and recv[1][0] == "name" and \
                recv[1][1] == "self" and self.cls:
            return ("attr", self.module, self.cls, recv[2])
        if recv[0] == "name" and recv[1] in self.module_vars and \
                recv[1] not in self.locals:
            return ("global", self.module, recv[1])
        return None

    def _import_resolved(self, dotted: str) -> str:
        """Dotted name with its head import-expanded (``sleep`` →
        ``time.sleep`` after ``from time import sleep``)."""
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        full = self.imports.get(head)
        if full is None:
            return dotted
        return f"{full}.{rest}" if rest else full

    def _resolve(self, dotted: str) -> str | None:
        """Callee qname: Program resolution first, then a unique-name
        fallback filtered to modules this module imports (how
        ``self.verifier.verify`` finds ``Verifier.verify``)."""
        if not dotted:
            return None
        program = self.program
        qname = program.resolve(self.module, dotted, self.var_types,
                                self.cls)
        if qname is not None:
            if qname in program.functions:
                return qname
            init = f"{qname}.__init__"
            return init if init in program.functions else None
        short = dotted.rsplit(".", 1)[-1]
        if short in spec.OPAQUE_METHOD_NAMES:
            return None
        candidates = program.methods_by_name.get(short, [])
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            visible = {self.module}
            for full in self.imports.values():
                visible.add(full)
                visible.add(full.rsplit(".", 1)[0])
            filtered = [q for q in candidates
                        if q.split(":", 1)[0] in visible]
            if len(filtered) == 1:
                return filtered[0]
        return None


class ConcurrencyEngine:
    """Root walk, guarded-by inference, CON301–CON304 minting."""

    def __init__(self, program: Program, paths: dict):
        self.program = program
        self.paths = paths
        self.scans = {
            qname: _FunctionScan(program, ir, paths[ir["module"]])
            for qname, ir in program.functions.items()
        }
        self.reentrant = self._collect_reentrant_locks()
        self._closures: dict[str, tuple] = {}
        self.accesses: dict[tuple, list] = {}
        self._con302: dict[tuple, tuple] = {}
        self._findings: dict[str, object] = {}
        self._visited: set[str] = set()
        self.roots: list[tuple] = []          # (qname, kind)

    # -- setup ----------------------------------------------------------------

    def _collect_reentrant_locks(self) -> set:
        reentrant = set()
        for qname, ir in self.program.functions.items():
            for op in ir["ops"]:
                if op[0] != "assign" or not op[2] or op[2][0] != "call":
                    continue
                ctor = op[2][1].rsplit(".", 1)[-1]
                if ctor not in spec.REENTRANT_CONSTRUCTORS:
                    continue
                for target in op[1]:
                    if target.startswith("self.") and ir["cls"]:
                        attr = target.split(".", 1)[1]
                        reentrant.add(
                            f"{ir['module']}:{ir['cls']}.{attr}")
                    elif "." not in target:
                        reentrant.add(f"{ir['module']}:{target}")
        return reentrant

    def _discover_roots(self) -> list:
        roots: list[tuple] = []
        for qname, scan in sorted(self.scans.items()):
            for submitted in scan.submitted:
                roots.append((submitted, "task"))
            if scan.ir.get("is_async"):
                roots.append((qname, "async"))
            if qname in spec.ROOT_QNAMES:
                roots.append((qname, "driver"))
        seen = set()
        unique = []
        for root in roots:
            if root not in seen:
                seen.add(root)
                unique.append(root)
        return unique

    # -- transitive call facts ------------------------------------------------

    def _closure(self, qname: str, _stack: frozenset = frozenset()
                 ) -> tuple:
        """(acquired lock ids, blocking-call origin or None) for the
        whole call tree under *qname* (cycles contribute nothing new)."""
        cached = self._closures.get(qname)
        if cached is not None:
            return cached
        if qname in _stack:
            return (frozenset(), None)
        scan = self.scans.get(qname)
        if scan is None:
            return (frozenset(), None)
        acquires = set(scan.acquires)
        blocking = scan.blocking[0][0] if scan.blocking else None
        nested = _stack | {qname}
        for callee in sorted(scan.callees):
            sub_acquires, sub_blocking = self._closure(callee, nested)
            acquires |= sub_acquires
            if blocking is None and sub_blocking is not None:
                blocking = f"{sub_blocking} via " \
                           f"{callee.rsplit(':', 1)[-1]}"
        result = (frozenset(acquires), blocking)
        if not _stack:
            self._closures[qname] = result
        return result

    # -- the walk -------------------------------------------------------------

    def _walk(self, root_qname: str, root_kind: str) -> None:
        stack = [(root_qname, frozenset())]
        if root_kind == "driver":
            # Harness drivers dispatch their co-located generators
            # through module-level tables the IR cannot see; every
            # top-level function of the driver's module runs under the
            # driver's context.
            driver_module = root_qname.split(":", 1)[0]
            stack.extend(
                (qname, frozenset()) for qname in sorted(self.scans)
                if qname.split(":", 1)[0] == driver_module
            )
        seen: set[tuple] = set()
        while stack:
            qname, held = stack.pop()
            if (qname, held) in seen:
                continue
            seen.add((qname, held))
            self._visited.add(qname)
            scan = self.scans.get(qname)
            if scan is None:
                continue
            for callee, callee_held in self._replay(
                    scan, qname, held, root_qname, root_kind):
                stack.append((callee, callee_held))

    def _replay(self, scan: _FunctionScan, qname: str,
                entry_held: frozenset, context: str,
                root_kind: str) -> list:
        """Replay one function's events under *entry_held*; returns the
        (callee, held) continuations."""
        held = set(entry_held)
        last_test: dict[tuple, tuple] = {}
        out: list[tuple] = []
        in_ctor = qname.rsplit(".", 1)[-1] in spec.CONSTRUCTOR_NAMES
        for event in scan.events:
            kind = event[0]
            if kind == "acquire":
                held.add(event[1])
            elif kind == "release":
                held.discard(event[1])
            elif kind == "read":
                _, field, line, in_test = event
                self._record(field, "read", frozenset(held), context,
                             qname, scan.path, line)
                if in_test:
                    last_test[field] = (line, frozenset(held))
            elif kind == "write":
                _, field, line = event
                now = frozenset(held)
                self._record(field, "write", now, context, qname,
                             scan.path, line)
                test = last_test.get(field)
                if test is not None and not in_ctor and \
                        not (test[1] & now):
                    key = (field, qname)
                    self._con302.setdefault(
                        key, (scan.path, test[0], line, context))
            elif kind == "call":
                _, short, _hint, callee, _full, _bare, line = event
                now = frozenset(held)
                self._call_checks(scan, qname, short, callee, now,
                                  event, root_kind, context, line)
                if callee is not None:
                    out.append((callee, now))
        return out

    def _call_checks(self, scan: _FunctionScan, qname: str, short: str,
                     callee: str | None, held: frozenset, event: tuple,
                     root_kind: str, context: str, line: int) -> None:
        origin = spec.blocking_origin(short, event[2], event[4],
                                      event[5])
        sub_acquires: frozenset = frozenset()
        sub_blocking = None
        if callee is not None:
            sub_acquires, sub_blocking = self._closure(callee)
        effective = origin or sub_blocking
        if held and effective is not None:
            lock = sorted(held)[0]
            self._mint(
                spec.CON303, scan.path, line,
                f"lock {lock.rsplit(':', 1)[-1]} held across a "
                f"blocking call ({effective}) in "
                f"{qname.rsplit(':', 1)[-1]}",
                detail=f"reachable from {context}",
            )
        if held:
            for lock in sorted(held & sub_acquires):
                if lock in self.reentrant:
                    continue
                self._mint(
                    spec.CON303, scan.path, line,
                    f"non-reentrant lock {lock.rsplit(':', 1)[-1]} "
                    f"may be re-acquired while held via "
                    f"{short or callee} in {qname.rsplit(':', 1)[-1]}",
                    detail=f"reachable from {context}",
                )
        if root_kind == "async" and effective is not None:
            self._mint(
                spec.CON304, scan.path, line,
                f"blocking call ({effective}) reachable from async "
                f"root {context.rsplit(':', 1)[-1]} in "
                f"{qname.rsplit(':', 1)[-1]}",
            )

    def _record(self, field: tuple, kind: str, held: frozenset,
                context: str, func: str, path: str, line: int) -> None:
        if not spec.in_shared_surface(field):
            return
        self.accesses.setdefault(field, []).append(
            _Access(kind, held, context, func, path, line))

    # -- rules ----------------------------------------------------------------

    def _mint(self, rule, path: str, line: int, message: str,
              detail: str = "") -> None:
        finding = rule.finding(path, message, line=line, detail=detail)
        self._findings.setdefault(finding.fingerprint, finding)

    @staticmethod
    def _is_ctor_access(access: _Access) -> bool:
        return access.func.rsplit(".", 1)[-1] in spec.CONSTRUCTOR_NAMES

    def _eligible(self, field: tuple) -> bool:
        accesses = self.accesses.get(field, [])
        rooted = [a for a in accesses if a.context != MAIN_CONTEXT
                  and not self._is_ctor_access(a)]
        if not rooted:
            return False
        writes = [a for a in accesses if a.kind == "write"
                  and not self._is_ctor_access(a)]
        if not writes:
            return False
        if any(a.context != MAIN_CONTEXT for a in writes):
            return True
        return any(a.kind == "read" for a in rooted)

    def _field_rules(self) -> None:
        for field in sorted(self.accesses):
            if not self._eligible(field):
                continue
            label = spec.field_label(field).rsplit(":", 1)[-1]
            accesses = [a for a in self.accesses[field]
                        if not self._is_ctor_access(a)]
            writes = [a for a in accesses if a.kind == "write"]
            unlocked = [a for a in writes if not a.held]
            per_func: dict[str, _Access] = {}
            for access in unlocked:
                current = per_func.get(access.func)
                if current is None or access.line < current.line:
                    per_func[access.func] = access
            guards = sorted({
                lock.rsplit(":", 1)[-1]
                for a in accesses for lock in a.held
            })
            for func in sorted(per_func):
                access = per_func[func]
                roots = sorted({a.context for a in accesses
                                if a.context != MAIN_CONTEXT})
                suffix = (f" (guarded elsewhere by "
                          f"{', '.join(guards)})" if guards else "")
                self._mint(
                    spec.CON301, access.path, access.line,
                    f"shared {label} written without a lock in "
                    f"{func.rsplit(':', 1)[-1]}{suffix}",
                    detail="concurrent contexts: "
                           + ", ".join(roots[:4]),
                )
            if writes and not unlocked:
                held_sets = {a.held for a in writes if a.held}
                if len(held_sets) > 1 and \
                        not frozenset.intersection(*held_sets):
                    names = sorted({
                        lock.rsplit(":", 1)[-1]
                        for locks in held_sets for lock in locks
                    })
                    first = min(writes, key=lambda a: a.line)
                    self._mint(
                        spec.CON303, first.path, first.line,
                        f"shared {label} guarded by inconsistent "
                        f"locks ({', '.join(names)})",
                    )
            for key, info in sorted(self._con302.items()):
                c_field, func = key
                if c_field != field:
                    continue
                path, test_line, write_line, _context = info
                self._mint(
                    spec.CON302, path, write_line,
                    f"check-then-act on shared {label} in "
                    f"{func.rsplit(':', 1)[-1]}: the branch test and "
                    f"the dependent write share no lock",
                    detail=f"test at line {test_line}, write at line "
                           f"{write_line}",
                )

    # -- driver ---------------------------------------------------------------

    def run(self) -> list:
        self.roots = self._discover_roots()
        for qname, kind in self.roots:
            self._walk(qname, kind)
        for qname in sorted(self.scans):
            if qname not in self._visited:
                # The main pass records accesses but does not traverse:
                # anything a main-only function calls that matters was
                # either visited by a root or is itself walked here.
                self._replay(self.scans[qname], qname, frozenset(),
                             MAIN_CONTEXT, MAIN_CONTEXT)
        self._field_rules()
        return sorted(self._findings.values(),
                      key=lambda f: (f.location, f.line, f.rule_id))


# -- entry points -------------------------------------------------------------


def analyze_modules(sources: dict) -> AnalysisResult:
    """Analyze in-memory ``{path: source}`` modules (tests, fixtures)."""
    infos = [extract_module(source, path)
             for path, source in sorted(sources.items())]
    return _analyze_extracted(infos)


def analyze_source(source: str,
                   path: str = "src/repro/example.py") -> list:
    """Single-module convenience mirroring :func:`taint.analyze_source`."""
    return analyze_modules({path: source}).findings


def _analyze_extracted(infos: list) -> AnalysisResult:
    program = Program(infos)
    paths = {info["module"]: info["path"] for info in infos}
    engine = ConcurrencyEngine(program, paths)
    result = AnalysisResult()
    result.findings = engine.run()
    result.scanned = len(infos)
    return result


def analyze_paths(paths, *, cache=None) -> AnalysisResult:
    """Analyze files/directories of ``.py`` files, optionally cached.

    *cache* is a :class:`repro.analysis.conccache.ConcurrencyCache`;
    unchanged modules skip AST extraction, and a fully unchanged target
    set returns the memoized findings without re-running the walk.
    """
    from repro.analysis.astlint import _iter_py_files
    from repro.analysis.taintcache import content_hash

    entries = []  # (display path, content hash, source)
    for target in _iter_py_files(paths):
        target = display_path(target)
        with open(target, "rb") as handle:
            raw = handle.read()
        entries.append((target, content_hash(raw),
                        raw.decode("utf-8")))

    if cache is not None:
        memoized = cache.run_result(entries)
        if memoized is not None:
            return memoized

    infos = []
    for path, digest, source in sorted(entries):
        info = cache.module_info(path, digest) if cache is not None \
            else None
        if info is None:
            info = extract_module(source, path)
            if cache is not None:
                cache.store_module(path, digest, info)
        infos.append(info)

    result = _analyze_extracted(infos)
    if cache is not None:
        cache.store_run(entries, result)
        cache.save()
    return result
