"""Baseline suppression: accept today's findings, gate tomorrow's.

A baseline file is a JSON list of finding fingerprints (plus enough
context to stay reviewable in a diff).  Runs subtract the baseline
before computing their exit code, so pre-existing debt does not block
CI while every *new* finding does.  ``--update-baseline`` rewrites the
file from the current findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import AnalysisResult, Finding

FORMAT_VERSION = 1


@dataclass
class Baseline:
    """A set of accepted finding fingerprints."""

    fingerprints: set[str] = field(default_factory=set)
    path: str = ""

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"baseline {path!r}: unsupported version "
                f"{payload.get('version')!r}"
            )
        return cls(
            fingerprints={
                entry["fingerprint"] for entry in payload["findings"]
            },
            path=path,
        )

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(fingerprints={f.fingerprint for f in findings})

    def save(self, path: str, findings: list[Finding]) -> None:
        """Write *findings* as the new accepted set (sorted, reviewable)."""
        entries = sorted(
            (
                {
                    "fingerprint": f.fingerprint,
                    "rule_id": f.rule_id,
                    "location": f.location,
                    "message": f.message,
                }
                for f in findings
            ),
            key=lambda e: e["fingerprint"],
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": FORMAT_VERSION, "findings": entries},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

    def apply(self, result: AnalysisResult) -> AnalysisResult:
        """Split findings into kept vs. suppressed, in place."""
        kept, suppressed = [], []
        for finding in result.findings:
            if finding.fingerprint in self.fingerprints:
                suppressed.append(finding)
            else:
                kept.append(finding)
        result.findings = kept
        result.suppressed.extend(suppressed)
        return result
