"""The taint lattice: labels, sources, sanitizers, sinks, TNT rules.

The paper's trust model is a flow property — disc and network bytes
are untrusted until an XMLDSig verification succeeds, and key material
must never leave the crypto layer — so the catalog below is the
machine-readable form of that model:

* **Sources** attach ``UNTRUSTED`` (payloads from the channel, disc
  image reads, XKMS request bodies, parses on untrusted paths) or
  ``SECRET`` (key constructors, key-file loads).
* **Sanitizers** (successful ``dsig`` verification, XACML enforcement)
  clear ``UNTRUSTED`` and stamp ``VERIFIED``.
* **Sinks** are where a label must not arrive: script execution and
  playback/render for ``UNTRUSTED``; logs, ``repr``, exception text
  and cache keys for ``SECRET``.

Matching is two-tier: by resolved qualified name when the call graph
can resolve the callee, falling back to (callee name, receiver hint)
patterns so the rules still fire on duck-typed call sites and on test
fixtures outside the repo tree.  Bump :data:`SPEC_VERSION` whenever the
catalog changes — it keys the findings cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.astlint import _UNTRUSTED_DIRS, _UNTRUSTED_FILES
from repro.analysis.engine import register
from repro.analysis.findings import Severity

SPEC_VERSION = 1

# -- labels -------------------------------------------------------------------

UNTRUSTED = "untrusted"   # content authenticity not established
SECRET = "secret"         # key material / derived secrets
VERIFIED = "verified"     # passed a sanitizer (dsig verify, XACML)
REPARSED = "reparsed"     # re-parsed after verification (proof discarded)

#: labels that participate in interprocedural summaries (``P0``..``Pn``
#: parameter markers are added dynamically).
CONCRETE_LABELS = (UNTRUSTED, SECRET, VERIFIED, REPARSED)

# -- rules --------------------------------------------------------------------

TNT201 = register(
    "TNT201", "untrusted bytes reach script execution unverified",
    Severity.ERROR, "code",
    "A value derived from network/disc/XKMS input flows into the "
    "ECMAScript interpreter without passing XMLDSig verification; a "
    "hostile disc or peer gets arbitrary script execution.",
)
TNT202 = register(
    "TNT202", "unverified markup reaches playback or output path",
    Severity.ERROR, "code",
    "Parsed-but-unverified markup flows into a playback/render entry "
    "point or back out onto the network; presentation must only ever "
    "consume signature-checked content.",
)
TNT203 = register(
    "TNT203", "secret key material reaches a logging/repr/error sink",
    Severity.ERROR, "code",
    "Key material (or a value derived from it) flows into a log line, "
    "printed output, exception message, findings report or cache key; "
    "secrets must stay inside the crypto layer.",
)
TNT204 = register(
    "TNT204", "verified content re-parsed before use (proof discarded)",
    Severity.WARNING, "code",
    "A value that passed verification was serialized and re-parsed "
    "before reaching its sink; the re-parse severs the connection to "
    "the verified octets (the classic signature-wrapping enabler).",
)

# -- catalog types ------------------------------------------------------------


@dataclass(frozen=True)
class CallPattern:
    """One source/sanitizer/sink entry.

    ``qnames`` match resolved callees exactly; otherwise the callee's
    last name segment must be in ``names`` and, when
    ``receiver_tokens`` is non-empty, some token must be a substring of
    the receiver hint (the identifier the call is made on).
    """

    names: frozenset = frozenset()
    receiver_tokens: frozenset = frozenset()
    qnames: frozenset = frozenset()
    labels: frozenset = frozenset()        # sources only
    kind: str = ""                         # sinks only
    untrusted_module_only: bool = False    # sources only
    origin: str = ""                       # human description

    def matches(self, name: str, receiver_hint: str,
                qname: str | None) -> bool:
        if qname is not None and qname in self.qnames:
            return True
        if name not in self.names:
            return False
        if not self.receiver_tokens:
            return True
        hint = receiver_hint.lower()
        return any(token in hint for token in self.receiver_tokens)


def _pattern(**kwargs) -> CallPattern:
    for key in ("names", "receiver_tokens", "qnames", "labels"):
        if key in kwargs:
            kwargs[key] = frozenset(kwargs[key])
    return CallPattern(**kwargs)


# -- sources ------------------------------------------------------------------

SOURCES = (
    _pattern(
        names={"transfer"}, receiver_tokens={"channel", "chan"},
        qnames={"repro.network.channel:Channel.transfer"},
        labels={UNTRUSTED}, origin="network channel transfer",
    ),
    _pattern(
        names={"fetch", "call"},
        receiver_tokens={"client", "download"},
        qnames={"repro.network.server:DownloadClient.fetch",
                "repro.network.server:DownloadClient.call"},
        labels={UNTRUSTED}, origin="download client payload",
    ),
    _pattern(
        names={"fetch", "completed", "receive"},
        receiver_tokens={"receiver", "carousel"},
        qnames={"repro.network.broadcast:CarouselReceiver.fetch",
                "repro.network.broadcast:CarouselReceiver.completed"},
        labels={UNTRUSTED}, origin="broadcast carousel payload",
    ),
    _pattern(
        names={"read", "stream", "resolver"},
        receiver_tokens={"image", "disc"},
        qnames={"repro.disc.image:DiscImage.read",
                "repro.disc.image:DiscImage.stream"},
        labels={UNTRUSTED}, origin="disc image bytes",
    ),
    _pattern(
        names={"from_xml"},
        receiver_tokens={"request", "result", "xkms"},
        qnames={"repro.xkms.messages:XKMSRequest.from_xml",
                "repro.xkms.messages:XKMSResult.from_xml"},
        labels={UNTRUSTED}, origin="XKMS message body",
    ),
    # Parses on untrusted paths are sources in their own right: even a
    # locally-produced byte string is untrusted once it crossed a
    # trust-boundary module (LIN106's path list).
    _pattern(
        names={"parse_document", "parse_element"},
        labels={UNTRUSTED}, untrusted_module_only=True,
        origin="parse on untrusted path",
    ),
)

SECRET_SOURCES = (
    _pattern(
        names={"generate_keypair"},
        qnames={"repro.primitives.rsa:generate_keypair"},
        labels={SECRET}, origin="generated RSA key pair",
    ),
    _pattern(
        names={"private_key_from_xml"},
        qnames={"repro.tools.keystore:private_key_from_xml"},
        labels={SECRET}, origin="private key file",
    ),
    _pattern(
        names={"SymmetricKey", "RSAPrivateKey"},
        qnames={"repro.primitives.keys:SymmetricKey",
                "repro.primitives.keys:RSAPrivateKey"},
        labels={SECRET}, origin="key object construction",
    ),
)

#: attribute reads that mint SECRET: ``<key-hinted>.data``, ``key.d`` …
SECRET_ATTRS = frozenset({"d", "p", "q", "data"})
SECRET_BASE_TOKENS = frozenset({"key", "secret", "hmac", "private"})

# -- sanitizers ---------------------------------------------------------------

SANITIZERS = (
    _pattern(
        names={"verify", "verify_or_raise", "verify_all",
               "raise_if_invalid", "verify_signatures"},
        receiver_tokens={"verifier", "batch", "report", "engine",
                         "outcome"},
        qnames={"repro.dsig.verifier:Verifier.verify",
                "repro.dsig.verifier:Verifier.verify_or_raise",
                "repro.perf.batch:BatchVerifier.verify_all"},
        origin="XMLDSig verification",
    ),
    _pattern(
        names={"verify_signatures"},
        origin="XMLDSig verification helper",
    ),
    _pattern(
        names={"enforce", "is_permitted", "evaluate"},
        receiver_tokens={"pdp", "pep"},
        qnames={"repro.xacml.pdp:PDP.evaluate",
                "repro.xacml.pdp:PEP.enforce",
                "repro.xacml.pdp:PEP.is_permitted"},
        origin="XACML permission decision",
    ),
    # Grant evaluation over a permission request file is the platform's
    # PDP: only grantable permissions survive and trusted-only ones
    # require a verified signature, so the resulting GrantSet is policy
    # output, not attacker-controlled markup.
    _pattern(
        names={"decide"},
        receiver_tokens={"policy", "pdp", "pep"},
        qnames={"repro.permissions.request_file:"
                "PlatformPermissionPolicy.decide"},
        origin="permission grant decision",
    ),
)

#: Verify-then-release wrappers whose whole contract is "only verified
#: content comes back" (each is covered by tier-1 tests).  Their return
#: value is VERIFIED even though the summary cannot prove the internal
#: reference-coverage argument; DESIGN.md §10 records the rationale.
TRUSTED_WRAPPERS = frozenset({
    "repro.core.playback_pipeline:PlaybackPipeline.open_package",
    "repro.player.engine:InteractiveApplicationEngine.load_package",
})

#: Callables whose results carry no payload data (guards, lengths,
#: constant-time verdicts) or are one-way crypto outputs (signatures,
#: digests, MACs are public by construction even when computed *with*
#: key material) — taint stops here.
TAINT_STOPPERS = frozenset({
    "len", "bool", "int", "float", "isinstance", "hasattr", "id",
    "type", "constant_time_equal", "fingerprint",
    "rsa_sign_digest", "rsassa_sign", "sign", "sign_digest",
    "digest", "hexdigest", "hmac_sha1", "hmac_sha256",
    "public_key",  # the public half of a keypair is public
})

#: Parse entry points (re-parse detection + untrusted-path sources).
PARSE_NAMES = frozenset({"parse_document", "parse_element"})

# -- sinks --------------------------------------------------------------------

SINK_SCRIPT = "script-exec"
SINK_PLAYBACK = "playback"
SINK_NET_OUT = "net-out"
SINK_SECRET_OUT = "secret-out"

#: sink kind -> label that must not arrive there
SINK_TRIGGERS = {
    SINK_SCRIPT: UNTRUSTED,
    SINK_PLAYBACK: UNTRUSTED,
    SINK_NET_OUT: UNTRUSTED,
    SINK_SECRET_OUT: SECRET,
}

#: sink kind -> rule minted when the trigger label arrives
SINK_RULES = {
    SINK_SCRIPT: TNT201,
    SINK_PLAYBACK: TNT202,
    SINK_NET_OUT: TNT202,
    SINK_SECRET_OUT: TNT203,
}

SINKS = (
    _pattern(
        kind=SINK_SCRIPT,
        names={"run", "call_function"},
        receiver_tokens={"interp"},
        qnames={"repro.markup.script_interp:Interpreter.run",
                "repro.markup.script_interp:Interpreter.call_function"},
        origin="script interpreter",
    ),
    _pattern(
        kind=SINK_PLAYBACK,
        names={"execute", "build_presentation", "run_application",
               "play_title", "launch_disc_application"},
        receiver_tokens={"engine", "player"},
        qnames={
            "repro.player.engine:"
            "InteractiveApplicationEngine.execute",
            "repro.player.engine:"
            "InteractiveApplicationEngine.build_presentation",
            "repro.player.player:DiscPlayer.run_application",
            "repro.player.player:DiscPlayer.play_title",
        },
        origin="playback engine",
    ),
    _pattern(
        kind=SINK_NET_OUT,
        names={"send", "respond", "reply", "broadcast", "publish"},
        receiver_tokens={"channel", "server", "carousel", "peer",
                         "socket"},
        origin="network output",
    ),
    _pattern(
        kind=SINK_SECRET_OUT,
        names={"print"},
        origin="printed output",
    ),
    _pattern(
        kind=SINK_SECRET_OUT,
        names={"append", "info", "debug", "warning", "error",
               "exception", "log", "write"},
        receiver_tokens={"log", "audit", "logger"},
        origin="log line",
    ),
    _pattern(
        kind=SINK_SECRET_OUT,
        names={"finding"},
        origin="findings report",
    ),
)

#: receiver hints whose subscript *keys* are secret-out sinks
CACHE_STORE_TOKENS = frozenset({"cache", "memo"})


def module_is_untrusted(path: str) -> bool:
    """Same trust-boundary path list LIN106 uses, plus fixtures that
    place themselves on an untrusted path by directory name."""
    normalized = path.replace("\\", "/")
    return (any(part in normalized for part in _UNTRUSTED_DIRS)
            or normalized.endswith(tuple(_UNTRUSTED_FILES))
            or "/untrusted/" in normalized)
