"""Static security analysis: artifact auditor + codebase linter.

Two frontends over one rule engine (stable IDs, severities, baseline
suppression, text/JSON reporters):

* :mod:`repro.analysis.artifact` — audits signed/encrypted disc
  artifacts *without key material*: signature-coverage maps, wrapping
  susceptibility, weak algorithms, sign/encrypt ordering, permission
  claims vs. XACML policy.
* :mod:`repro.analysis.astlint` — enforces repo invariants over the
  Python AST: revision-stamp propagation, no HMAC memoization,
  constant-time comparisons, injected clocks, provider-only
  primitives.

CLI: ``python -m repro.tools audit ...`` and ``... lint ...``.
"""

from repro.analysis.artifact import ArtifactAuditor, audit_paths
from repro.analysis.astlint import lint_paths, lint_source
from repro.analysis.baseline import Baseline
from repro.analysis.engine import Rule, all_rules, catalog_lines, get_rule
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.report import render_json, render_text, summary_line

__all__ = [
    "AnalysisResult", "ArtifactAuditor", "Baseline", "Finding", "Rule",
    "Severity", "all_rules", "audit_paths", "catalog_lines", "get_rule",
    "lint_paths", "lint_source", "render_json", "render_text",
    "summary_line",
]
