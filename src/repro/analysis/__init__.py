"""Static security analysis: artifact auditor + codebase linter.

Two frontends over one rule engine (stable IDs, severities, baseline
suppression, text/JSON reporters):

* :mod:`repro.analysis.artifact` — audits signed/encrypted disc
  artifacts *without key material*: signature-coverage maps, wrapping
  susceptibility, weak algorithms, sign/encrypt ordering, permission
  claims vs. XACML policy.
* :mod:`repro.analysis.astlint` — enforces repo invariants over the
  Python AST: revision-stamp propagation, no HMAC memoization,
  constant-time comparisons, injected clocks, provider-only
  primitives, typed-errors-only on untrusted paths.
* :mod:`repro.analysis.taint` — interprocedural taint-flow analysis
  over the call graph: untrusted bytes must not reach script
  execution/playback/network unverified, and key material must not
  reach logs, ``repr`` output, exception text or cache keys
  (TNT2xx rules), with content-hash-keyed incremental caching.
* :mod:`repro.analysis.concurrency` — interprocedural concurrency
  safety over the same call graph: guarded-by inference for the shared
  security state (TrustStore, caches, provider registry, breaker/
  degradation state), check-then-act atomicity, lock discipline, and
  the asyncio-readiness gate (CON3xx rules), with its own incremental
  cache.
* :mod:`repro.analysis.lifecycle` — interprocedural async lifecycle
  and exception-flow analysis over the v4 call graph: orphaned task
  handles, broad excepts swallowing ``CancelledError``, awaits under
  threading locks, deadline-propagation proofs along the async service
  chain, and exception-unsafe resource/slot releases (LIF4xx rules),
  with its own incremental cache.

CLI: ``python -m repro.tools audit|lint|taint|concurrency|lifecycle``.
"""

from repro.analysis.artifact import ArtifactAuditor, audit_paths
from repro.analysis.astlint import lint_paths, lint_source
from repro.analysis.baseline import Baseline
from repro.analysis.concurrency import (
    analyze_modules as analyze_concurrency_modules,
    analyze_paths as analyze_concurrency_paths,
    analyze_source as analyze_concurrency_source,
)
from repro.analysis.conccache import ConcurrencyCache
from repro.analysis.engine import Rule, all_rules, catalog_lines, get_rule
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.lifecycle import (
    analyze_modules as analyze_lifecycle_modules,
    analyze_paths as analyze_lifecycle_paths,
    analyze_source as analyze_lifecycle_source,
)
from repro.analysis.lifecache import LifecycleCache
from repro.analysis.report import render_json, render_text, summary_line
from repro.analysis.taint import (
    analyze_modules, analyze_paths, analyze_source,
)
from repro.analysis.taintcache import TaintCache

__all__ = [
    "AnalysisResult", "ArtifactAuditor", "Baseline", "ConcurrencyCache",
    "Finding", "LifecycleCache", "Rule", "Severity", "TaintCache",
    "all_rules", "analyze_concurrency_modules",
    "analyze_concurrency_paths", "analyze_concurrency_source",
    "analyze_lifecycle_modules", "analyze_lifecycle_paths",
    "analyze_lifecycle_source", "analyze_modules", "analyze_paths",
    "analyze_source", "audit_paths", "catalog_lines", "get_rule",
    "lint_paths", "lint_source", "render_json", "render_text",
    "summary_line",
]
