"""Interprocedural async lifecycle & exception-flow analysis (LIF4xx).

Runs over the v4 callgraph IR (:mod:`repro.analysis.callgraph`) and
checks the service layer's lifecycle contracts:

* **LIF401** — every spawned task handle is awaited, retained, or
  parked on an owner that cancels/awaits it on its shutdown path;
* **LIF402** — no broad ``except`` region around an ``await``
  swallows ``CancelledError`` (a handler must re-raise it);
* **LIF403** — no ``await`` while holding a ``threading`` lock;
* **LIF404** — a deadline-carrying async function threads its
  :class:`~repro.resilience.service.Deadline` into every waiting
  callee's deadline slot (``deadline=``/``context=``/``until=``/
  ``at=``) and into ``wait_until`` itself;
* **LIF405** — admission/limiter slots and constructed async
  resources are released inside a ``finally`` region (or a context
  manager), so no exception path can skip the release.

Deadline flow is *compositional*: an entry point holds a deadline and
each hop is checked locally, so proving every deadline-carrying
function forwards its deadline proves the whole chain from
``OverloadShield`` down to the wire never drops it.

Soundness caveats (documented in DESIGN §15): opaque callables
(lambdas, injected handlers) are not followed; receiver types come
from constructor assignments, parameter annotations and dataclass
field annotations only; passing a resource as a call argument does
not count as an ownership transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import lifespec as spec
from repro.analysis.callgraph import Program, extract_module
from repro.analysis.findings import AnalysisResult, display_path


def _derived(expr, names: set) -> bool:
    """Is *expr* deadline-derived under the known derived *names*?"""
    if not expr:
        return False
    kind = expr[0]
    if kind == "name":
        return expr[1] in names
    if kind == "attr":
        return expr[2] in spec.DEADLINE_ATTR_NAMES or \
            _derived(expr[1], names)
    if kind == "sub":
        return _derived(expr[1], names)
    if kind == "many":
        return any(_derived(part, names) for part in expr[1])
    if kind == "call":
        dotted = expr[1] or ""
        if spec.DEADLINE_CLASS_NAME in dotted.split("."):
            return True
        return dotted.rsplit(".", 1)[-1] in spec.DEADLINE_FACTORY_NAMES
    return False


def _escaping_names(expr, out: set) -> None:
    """Names whose *value* escapes via this expression (aliasing,
    returning, storing) — receiver/argument use does not count."""
    if not expr:
        return
    kind = expr[0]
    if kind == "name":
        out.add(expr[1])
    elif kind in ("attr", "sub"):
        _escaping_names(expr[1], out)
    elif kind == "many":
        for part in expr[1]:
            _escaping_names(part, out)


@dataclass
class _Call:
    """One call site with everything the rules need to judge it."""

    index: int
    short: str
    hint: str
    dotted: str
    qname: str | None
    has_recv: bool
    args: list
    kwargs: dict
    line: int
    fdepth: int


class _FunctionScan:
    """One pass over a function's ops: regions, calls, spawns, names."""

    def __init__(self, program: Program, ir: dict, path: str,
                 attr_types: dict):
        self.program = program
        self.ir = ir
        self.module = ir["module"]
        self.cls = ir["cls"]
        self.path = path
        self.attr_types = attr_types
        info = program.modules.get(self.module, {})
        self.imports = dict(info.get("imports", {}))
        self.var_types: dict[str, tuple] = {}
        if self.cls and ir["params"] and \
                ir["params"][0] in ("self", "cls"):
            self.var_types[ir["params"][0]] = (self.module, self.cls)
        for param, ann in ir.get("param_annotations", {}).items():
            resolved = program.class_of_constructor(self.module, ann)
            if resolved is not None:
                self.var_types[param] = resolved

        self.deadline_names: set[str] = {
            p for p in ir["params"] if p in spec.DEADLINE_PARAM_NAMES}
        self.calls: list[_Call] = []
        self.spawns: list[tuple] = []     # (idx, dotted, targets, aw, ln)
        self.awaits: list[tuple] = []     # (line, locks, try_snapshot)
        self.reads: dict[str, list[int]] = {}
        self.escaped: set[str] = set()
        self.self_attrs: set[str] = set()
        self.handle_stores: list[tuple] = []   # (idx, attr, arg names)
        self.resources: dict[str, tuple] = {}  # local -> (ctor, line, i)
        self.releases: list[tuple] = []   # (idx, local, short, fdepth)
        self.acquires: list[tuple] = []   # (idx, short, hint, ln, fdep)
        self.pair_releases: list[tuple] = []   # (idx, hint, fdepth)
        self.ctx_managed: set[str] = set()
        self.callees: set[str] = set()
        self.direct_wait = False

        self._index = 0
        self._locks: list[str] = []
        self._tries: list[tuple] = []
        self._fdepth = 0
        for op in ir["ops"]:
            self._op(op)
            self._index += 1

    # -- ops ------------------------------------------------------------------

    def _op(self, op: list) -> None:
        kind = op[0]
        if kind == "assign":
            _, targets, expr, line = op
            self._expr(expr, line)
            escaping: set[str] = set()
            _escaping_names(expr, escaping)
            self.escaped |= escaping
            self._note_deadline(targets, expr)
            self._note_resource(targets, expr, line)
            for target in targets:
                if target.startswith("self.") and target.count(".") == 1:
                    attr = target.split(".", 1)[1]
                    self.self_attrs.add(attr)
                    if escaping:
                        self.handle_stores.append(
                            (self._index, attr, frozenset(escaping)))
        elif kind == "storesub":
            _, _recv_hint, key_expr, value_expr, line = op
            self._expr(key_expr, line)
            self._expr(value_expr, line)
            _escaping_names(value_expr, self.escaped)
        elif kind in ("expr", "test"):
            self._expr(op[1], op[2])
        elif kind == "return":
            self._expr(op[1], op[2])
            _escaping_names(op[1], self.escaped)
        elif kind == "raise":
            _, _exc, args, line, _handled = op
            for arg in args:
                self._expr(arg, line)
        elif kind == "lockenter":
            _, dotted, _line = op
            if spec.is_lockish(dotted):
                self._locks.append(dotted)
            self.ctx_managed.add(dotted)
        elif kind == "lockexit":
            _, dotted, _line = op
            if spec.is_lockish(dotted) and dotted in self._locks:
                self._locks.remove(dotted)
        elif kind == "alockenter":
            self.ctx_managed.add(op[1])
        elif kind == "awaitpoint":
            self.awaits.append(
                (op[1], tuple(self._locks), tuple(self._tries)))
        elif kind == "spawn":
            _, dotted, targets, awaited, line = op
            self.spawns.append(
                (self._index, dotted, list(targets), awaited, line))
        elif kind == "tryenter":
            _, handlers, _has_finally, _line = op
            self._tries.append(tuple(
                (frozenset(names), bool(reraises), hline)
                for names, reraises, hline in handlers))
        elif kind == "tryexit":
            if self._tries:
                self._tries.pop()
        elif kind == "finallyenter":
            self._fdepth += 1
        elif kind == "finallyexit":
            self._fdepth -= 1

    def _note_deadline(self, targets: list, expr) -> None:
        if _derived(expr, self.deadline_names):
            self.deadline_names.update(
                t for t in targets if "." not in t)

    def _note_resource(self, targets: list, expr, line: int) -> None:
        if not self.ir["is_async"] or not expr or expr[0] != "call":
            return
        ctor = (expr[1] or "").rsplit(".", 1)[-1]
        if ctor not in spec.RESOURCE_CONSTRUCTORS:
            return
        for target in targets:
            if "." not in target:
                self.resources[target] = (ctor, line, self._index)

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr, line: int) -> None:
        if not expr:
            return
        kind = expr[0]
        if kind == "name":
            self.reads.setdefault(expr[1], []).append(self._index)
        elif kind == "attr":
            base = expr[1]
            if base and base[0] == "name" and base[1] == "self":
                self.self_attrs.add(expr[2])
            self._expr(base, line)
        elif kind == "sub":
            self._expr(expr[1], line)
            self._expr(expr[2], line)
        elif kind == "many":
            for part in expr[1]:
                self._expr(part, line)
        elif kind == "call":
            self._call(expr)

    def _call(self, expr) -> None:
        _, dotted, recv, args, kwargs, line = expr
        dotted = dotted or ""
        short = dotted.rsplit(".", 1)[-1]
        hint = self._receiver_hint(recv, dotted)
        qname = self._resolve(dotted)
        if qname is not None:
            self.callees.add(qname)
        if spec.WAIT_SINKS.get(short) is not None and \
                _sink_applies(short, hint, dotted):
            self.direct_wait = True
        call = _Call(self._index, short, hint, dotted, qname,
                     recv is not None, args,
                     {kw: value for kw, value in kwargs
                      if kw != "**"},
                     line, self._fdepth)
        self.calls.append(call)
        if recv is not None and recv[0] == "attr" and recv[1] and \
                recv[1][0] == "name" and recv[1][1] == "self":
            self.self_attrs.add(recv[2])
            if short in spec.HANDLE_STORE_NAMES:
                stored = {a[1] for a in args
                          if a and a[0] == "name"}
                if stored:
                    self.handle_stores.append(
                        (self._index, recv[2], frozenset(stored)))
        if recv is not None and recv[0] == "name":
            self.releases.append(
                (self._index, recv[1], short, self._fdepth))
        if short in spec.ACQUIRE_RELEASE_PAIRS:
            self.acquires.append(
                (self._index, short, hint, line, self._fdepth))
        if short == "release":
            self.pair_releases.append(
                (self._index, hint, self._fdepth))
        self._expr(recv, line)
        for arg in args:
            self._expr(arg, line)
        for _kw, value in kwargs:
            self._expr(value, line)

    def read_after(self, name: str, index: int) -> bool:
        return any(i > index for i in self.reads.get(name, ()))

    # -- resolution -----------------------------------------------------------

    def _receiver_hint(self, recv, dotted: str) -> str:
        if recv is None:
            return ""
        if recv[0] == "name":
            return recv[1]
        if recv[0] == "attr":
            return recv[2]
        if "." in dotted:
            return dotted.rsplit(".", 2)[-2]
        return ""

    def _resolve(self, dotted: str) -> str | None:
        """Callee qname: Program resolution, then attribute types from
        annotations, then the unique-name fallback (as CON3xx does)."""
        if not dotted:
            return None
        program = self.program
        qname = program.resolve(self.module, dotted, self.var_types,
                                self.cls)
        if qname is not None:
            if qname in program.functions:
                return qname
            init = f"{qname}.__init__"
            return init if init in program.functions else None
        parts = dotted.split(".")
        if len(parts) == 3 and parts[0] == "self" and self.cls:
            typed = self.attr_types.get(
                (self.module, self.cls, parts[1]))
            if typed is not None:
                type_module, type_class = typed
                info = program.class_info(type_module, type_class)
                if info is not None and parts[2] in info["methods"]:
                    return f"{type_module}:{type_class}.{parts[2]}"
        short = parts[-1]
        if short in spec.OPAQUE_LIFECYCLE_NAMES:
            return None
        candidates = program.methods_by_name.get(short, [])
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            visible = {self.module}
            for full in self.imports.values():
                visible.add(full)
                visible.add(full.rsplit(".", 1)[0])
            filtered = [q for q in candidates
                        if q.split(":", 1)[0] in visible]
            if len(filtered) == 1:
                return filtered[0]
        return None


def _sink_applies(short: str, hint: str, dotted: str) -> bool:
    token = spec.WAIT_SINKS[short][0]
    if token in (hint or "").lower():
        return True
    if short == "asleep":
        return True  # bare alias (``asleep = getattr(clock, ...)``)
    return dotted.startswith("asyncio.")


class LifecycleEngine:
    """Per-function scans plus the interprocedural waits closure."""

    def __init__(self, program: Program, paths: dict):
        self.program = program
        self.paths = paths
        self.attr_types = self._collect_attr_types()
        self.scans = {
            qname: _FunctionScan(program, ir, paths[ir["module"]],
                                 self.attr_types)
            for qname, ir in program.functions.items()
        }
        self.findings: list = []
        self._seen: set[str] = set()
        self._waits_memo: dict[str, bool] = {}

    # -- receiver typing ------------------------------------------------------

    def _collect_attr_types(self) -> dict:
        """(module, class, attr) -> (module, class) of the attribute,
        from dataclass field annotations and constructor assignments
        of annotated parameters / constructed instances."""
        types: dict = {}
        for module, info in self.program.modules.items():
            for cls, centry in info["classes"].items():
                for fname, ann in centry.get("field_types", ()):
                    resolved = self.program.class_of_constructor(
                        module, ann)
                    if resolved is not None:
                        types[(module, cls, fname)] = resolved
        for ir in self.program.functions.values():
            if not ir["cls"] or ir["name"] not in (
                    "__init__", "__post_init__"):
                continue
            annotations = ir.get("param_annotations", {})
            for op in ir["ops"]:
                if op[0] != "assign":
                    continue
                _, targets, expr, _line = op
                resolved = self._value_type(
                    ir["module"], expr, annotations)
                if resolved is None:
                    continue
                for target in targets:
                    if target.startswith("self.") and \
                            target.count(".") == 1:
                        attr = target.split(".", 1)[1]
                        types[(ir["module"], ir["cls"], attr)] = resolved
        return types

    def _value_type(self, module: str, expr, annotations: dict):
        if not expr:
            return None
        if expr[0] == "name":
            ann = annotations.get(expr[1])
            if ann:
                return self.program.class_of_constructor(module, ann)
            return None
        if expr[0] == "call":
            return self.program.class_of_constructor(module, expr[1])
        if expr[0] == "many":
            for part in expr[1]:
                found = self._value_type(module, part, annotations)
                if found is not None:
                    return found
        return None

    # -- the waits closure ----------------------------------------------------

    def _waits(self, qname: str,
               _stack: frozenset = frozenset()) -> bool:
        """Does *qname* transitively reach a wait/sleep/wire sink?"""
        memoized = self._waits_memo.get(qname)
        if memoized is not None:
            return memoized
        scan = self.scans.get(qname)
        if scan is None:
            return False
        if scan.direct_wait:
            self._waits_memo[qname] = True
            return True
        result = False
        for callee in scan.callees:
            if callee == qname or callee in _stack:
                continue
            if callee in self.scans and \
                    self._waits(callee, _stack | {qname}):
                result = True
                break
        if not _stack:
            self._waits_memo[qname] = result
        return result

    # -- rules ----------------------------------------------------------------

    def run(self) -> list:
        for qname in sorted(self.scans):
            scan = self.scans[qname]
            self._orphan_tasks(qname, scan)       # LIF401
            self._cancellation(qname, scan)       # LIF402 + LIF403
            if scan.ir["is_async"] and scan.deadline_names:
                self._deadline_flow(qname, scan)  # LIF404
            if scan.ir["is_async"]:
                self._releases(qname, scan)       # LIF405
        self.findings.sort(
            key=lambda f: (f.location, f.line or 0, f.rule_id))
        return self.findings

    def _mint(self, rule, path: str, line: int, message: str,
              detail: str = "") -> None:
        finding = rule.finding(path, message, line=line, detail=detail)
        if finding.fingerprint in self._seen:
            return
        self._seen.add(finding.fingerprint)
        self.findings.append(finding)

    # LIF401 ------------------------------------------------------------------

    def _orphan_tasks(self, qname: str, scan: _FunctionScan) -> None:
        fname = qname.split(":", 1)[1]
        for index, dotted, targets, awaited, line in scan.spawns:
            if awaited or "<return>" in targets:
                continue
            local_targets = [t for t in targets if "." not in t]
            owned = [t.split(".", 1)[1] for t in targets
                     if t.startswith("self.") and t.count(".") == 1]
            retained = False
            for target in local_targets:
                stored = [attr for sidx, attr, names
                          in scan.handle_stores
                          if sidx > index and target in names]
                if stored:
                    owned.extend(stored)
                elif scan.read_after(target, index):
                    retained = True
            if owned and scan.cls:
                missing = sorted(
                    attr for attr in owned
                    if not self._shutdown_covers(scan.module,
                                                 scan.cls, attr))
                for attr in missing:
                    self._mint(
                        spec.LIF401, scan.path, line,
                        f"{fname} parks a {dotted} handle on "
                        f"self.{attr} but no shutdown path "
                        f"({'/'.join(sorted(spec.SHUTDOWN_METHOD_NAMES))})"
                        " of the owner cancels or awaits it",
                    )
                continue
            if owned or retained:
                continue
            if local_targets:
                held = "/".join(local_targets)
                message = (f"{fname} spawns via {dotted} but the "
                           f"handle '{held}' is never awaited, "
                           "cancelled or stored afterwards")
            else:
                message = (f"{fname} spawns via {dotted} without "
                           "retaining the task handle")
            self._mint(spec.LIF401, scan.path, line, message)

    def _shutdown_covers(self, module: str, cls: str,
                         attr: str) -> bool:
        info = self.program.class_info(module, cls)
        if info is None:
            return False
        for method in info["methods"]:
            if method not in spec.SHUTDOWN_METHOD_NAMES:
                continue
            scan = self.scans.get(f"{module}:{cls}.{method}")
            if scan is not None and attr in scan.self_attrs:
                return True
        return False

    # LIF402 + LIF403 ---------------------------------------------------------

    def _cancellation(self, qname: str, scan: _FunctionScan) -> None:
        fname = qname.split(":", 1)[1]
        for line, locks, tries in scan.awaits:
            for lock in locks:
                self._mint(
                    spec.LIF403, scan.path, line,
                    f"{fname} awaits at line {line} while holding "
                    f"threading lock '{lock}' — the event loop parks "
                    "with the lock held",
                )
            for handlers in tries:
                rescues = any(
                    names & spec.CANCELLED_NAMES and reraises
                    for names, reraises, _hline in handlers)
                if rescues:
                    continue
                for names, reraises, hline in handlers:
                    if reraises or not (
                            names & spec.BROAD_HANDLER_NAMES):
                        continue
                    caught = "/".join(sorted(names))
                    self._mint(
                        spec.LIF402, scan.path, hline,
                        f"broad handler (except {caught}) in {fname} "
                        f"encloses the await at line {line} without "
                        "re-raising CancelledError",
                    )

    # LIF404 ------------------------------------------------------------------

    def _deadline_flow(self, qname: str, scan: _FunctionScan) -> None:
        fname = qname.split(":", 1)[1]
        entry = " (service entry point)" if spec.is_entry(qname) else ""
        for call in scan.calls:
            sink = spec.WAIT_SINKS.get(call.short)
            if sink is not None and _sink_applies(
                    call.short, call.hint, call.dotted):
                _token, dparam, didx = sink
                if dparam is None:
                    continue  # bounded primitive: exempt from demand
                arg = call.kwargs.get(dparam)
                if arg is None and didx is not None and \
                        len(call.args) > didx:
                    arg = call.args[didx]
                if arg is None or not _derived(
                        arg, scan.deadline_names):
                    self._mint(
                        spec.LIF404, scan.path, call.line,
                        f"deadline-carrying {fname}{entry} reaches "
                        f"{call.short} without a deadline-derived "
                        f"'{dparam}' argument",
                    )
                continue
            if call.qname is None or call.qname == qname:
                continue
            callee_ir = self.program.functions.get(call.qname)
            if callee_ir is None or not callee_ir["is_async"]:
                continue
            if not self._waits(call.qname):
                continue
            slot = self._deadline_param(callee_ir)
            if slot is None:
                continue
            pindex, pname = slot
            arg = call.kwargs.get(pname)
            if arg is None:
                bound = (call.has_recv and callee_ir["cls"]
                         and callee_ir["params"]
                         and callee_ir["params"][0] in ("self", "cls"))
                aindex = pindex - 1 if bound else pindex
                if 0 <= aindex < len(call.args):
                    arg = call.args[aindex]
            if arg is None or not _derived(arg, scan.deadline_names):
                callee_name = call.qname.split(":", 1)[1]
                self._mint(
                    spec.LIF404, scan.path, call.line,
                    f"deadline-carrying {fname}{entry} calls waiting "
                    f"{callee_name} without threading its deadline "
                    f"into '{pname}'",
                )

    @staticmethod
    def _deadline_param(callee_ir: dict) -> tuple | None:
        params = callee_ir["params"]
        for pindex, pname in enumerate(params):
            if pindex == 0 and pname in ("self", "cls"):
                continue
            if pname in spec.DEADLINE_PARAM_NAMES:
                return pindex, pname
        return None

    # LIF405 ------------------------------------------------------------------

    def _releases(self, qname: str, scan: _FunctionScan) -> None:
        fname = qname.split(":", 1)[1]
        for index, short, hint, line, _fdepth in scan.acquires:
            release = spec.ACQUIRE_RELEASE_PAIRS[short]
            later = [fdepth for ridx, rhint, fdepth
                     in scan.pair_releases
                     if ridx > index and rhint == hint]
            if not later:
                self._mint(
                    spec.LIF405, scan.path, line,
                    f"{fname} acquires a slot via {hint}.{short}() "
                    f"but never calls {hint}.{release}()",
                )
            elif not any(fdepth > 0 for fdepth in later):
                self._mint(
                    spec.LIF405, scan.path, line,
                    f"{fname} releases the {hint}.{short}() slot "
                    "outside any finally region — an exception path "
                    "skips the release",
                )
        for local, (ctor, line, index) in sorted(scan.resources.items()):
            if local in scan.escaped or local in scan.ctx_managed:
                continue
            close_names = spec.RESOURCE_CONSTRUCTORS[ctor]
            closes = [fdepth for ridx, rlocal, rshort, fdepth
                      in scan.releases
                      if ridx > index and rlocal == local
                      and rshort in close_names]
            if closes and any(fdepth > 0 for fdepth in closes):
                continue
            if closes:
                message = (f"{fname} closes {ctor} '{local}' outside "
                           "any finally region — an exception path "
                           "skips the close")
            else:
                message = (f"{fname} acquires {ctor} '{local}' with "
                           "no close on any path")
            self._mint(spec.LIF405, scan.path, line, message)


# -- entry points -------------------------------------------------------------


def analyze_modules(sources: dict) -> AnalysisResult:
    """Analyze in-memory ``{path: source}`` modules (tests, fixtures)."""
    infos = [extract_module(source, path)
             for path, source in sorted(sources.items())]
    return _analyze_extracted(infos)


def analyze_source(source: str,
                   path: str = "src/repro/example.py") -> list:
    """Single-module convenience mirroring the other analyzers."""
    return analyze_modules({path: source}).findings


def _analyze_extracted(infos: list) -> AnalysisResult:
    program = Program(infos)
    paths = {info["module"]: info["path"] for info in infos}
    engine = LifecycleEngine(program, paths)
    result = AnalysisResult()
    result.findings = engine.run()
    result.scanned = len(infos)
    return result


def analyze_paths(paths, *, cache=None) -> AnalysisResult:
    """Analyze files/directories of ``.py`` files, optionally cached.

    *cache* is a :class:`repro.analysis.lifecache.LifecycleCache`;
    unchanged modules skip AST extraction, and a fully unchanged
    target set returns the memoized findings without re-running.
    """
    from repro.analysis.astlint import _iter_py_files
    from repro.analysis.taintcache import content_hash

    entries = []  # (display path, content hash, source)
    for target in _iter_py_files(paths):
        target = display_path(target)
        with open(target, "rb") as handle:
            raw = handle.read()
        entries.append((target, content_hash(raw),
                        raw.decode("utf-8")))

    if cache is not None:
        memoized = cache.run_result(entries)
        if memoized is not None:
            return memoized

    infos = []
    for path, digest, source in sorted(entries):
        info = cache.module_info(path, digest) if cache is not None \
            else None
        if info is None:
            info = extract_module(source, path)
            if cache is not None:
                cache.store_module(path, digest, info)
        infos.append(info)

    result = _analyze_extracted(infos)
    if cache is not None:
        cache.store_run(entries, result)
        cache.save()
    return result
