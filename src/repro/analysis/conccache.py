"""Incremental cache for the concurrency analyzer.

Same two-level machinery as the taint cache (module IR keyed by source
hash, whole-run findings memo keyed by the (path, hash) set plus
versions) — see :mod:`repro.analysis.taintcache` — but with its own
file and spec version so the analyzers never cross-invalidate.
"""

from __future__ import annotations

from repro.analysis.concspec import SPEC_VERSION
from repro.analysis.taintcache import AnalysisCache

DEFAULT_CACHE_PATH = ".concurrency-cache.json"


class ConcurrencyCache(AnalysisCache):
    """The concurrency analyzer's cache (``.concurrency-cache.json``)."""

    default_path = DEFAULT_CACHE_PATH
    spec_version = SPEC_VERSION
