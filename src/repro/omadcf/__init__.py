"""Binary OMA-DCF-style container — the baseline of the paper's ref [37]."""

from repro.omadcf.container import (
    ENC_AES_128_CBC, ENC_AES_128_CTR, ENC_NULL, DCFPackage,
    container_overhead, package, parse, unpack,
)

__all__ = [
    "package", "unpack", "parse", "DCFPackage", "container_overhead",
    "ENC_NULL", "ENC_AES_128_CTR", "ENC_AES_128_CBC",
]
