"""A binary DRM Content Format container (OMA DCF v2-style baseline).

The paper (§4) cites a 3GPP comparison [37] between XML-based security
and the binary OMA DRM Content Format: "XML based security incurs 2.5
to 5.1 times more overhead as compared to OMA DCF and performance wise
the text based XML takes a back seat."  To regenerate that comparison
(TAB-OVH in DESIGN.md) this module implements a faithful *shape* of
DCF: a compact binary box structure with length-prefixed fields, AES
content encryption (CTR or CBC, mirroring OMA's AES_128_CTR /
AES_128_CBC), and an HMAC integrity tag standing in for the DCF hash.

Wire layout (big-endian)::

    magic        4  b"ODCF"
    version      1
    enc_method   1  (0=null, 1=AES_128_CTR, 2=AES_128_CBC)
    ct_len       1  content-type length     + bytes
    cid_len      2  content-id length       + bytes
    iv           16 (zero for null encryption)
    data_len     4  ciphertext length       + bytes
    mac          32 HMAC-SHA256 over everything above
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CryptoError, DecryptionError
from repro.primitives.hmac import constant_time_equal
from repro.primitives.padding import pkcs7_pad, pkcs7_unpad
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random

MAGIC = b"ODCF"
VERSION = 2

ENC_NULL = 0
ENC_AES_128_CTR = 1
ENC_AES_128_CBC = 2

_ENC_METHODS = (ENC_NULL, ENC_AES_128_CTR, ENC_AES_128_CBC)
_MAC_SIZE = 32
_IV_SIZE = 16


@dataclass
class DCFPackage:
    """A parsed DCF container."""

    content_type: str
    content_id: str
    enc_method: int
    iv: bytes
    ciphertext: bytes

    @property
    def overhead_bytes(self) -> int:
        """Container bytes beyond the raw ciphertext."""
        return (4 + 1 + 1 + 1 + len(self.content_type.encode())
                + 2 + len(self.content_id.encode()) + _IV_SIZE + 4
                + _MAC_SIZE)


def package(content: bytes, key: bytes, *,
            content_type: str = "application/xml",
            content_id: str = "cid:content@disc",
            enc_method: int = ENC_AES_128_CTR,
            mac_key: bytes | None = None,
            provider: CryptoProvider | None = None,
            rng: RandomSource | None = None) -> bytes:
    """Package *content* into a DCF container under *key*.

    *mac_key* defaults to *key* (a simplification of the DCF
    rights-object MAC derivation).
    """
    if enc_method not in _ENC_METHODS:
        raise CryptoError(f"unknown DCF encryption method {enc_method}")
    provider = provider or get_provider()
    rng = rng or default_random()
    mac_key = mac_key if mac_key is not None else key

    if enc_method == ENC_NULL:
        iv = b"\x00" * _IV_SIZE
        ciphertext = content
    elif enc_method == ENC_AES_128_CTR:
        iv = rng.read(_IV_SIZE)
        ciphertext = provider.aes_ctr(key, iv[:8], content)
    else:  # CBC
        iv = rng.read(_IV_SIZE)
        ciphertext = provider.aes_cbc_encrypt(
            key, iv, pkcs7_pad(content, 16),
        )

    ct_bytes = content_type.encode("utf-8")
    cid_bytes = content_id.encode("utf-8")
    if len(ct_bytes) > 255 or len(cid_bytes) > 65535:
        raise CryptoError("content-type or content-id too long for DCF")
    body = b"".join([
        MAGIC,
        struct.pack(">BB", VERSION, enc_method),
        struct.pack(">B", len(ct_bytes)), ct_bytes,
        struct.pack(">H", len(cid_bytes)), cid_bytes,
        iv,
        struct.pack(">I", len(ciphertext)), ciphertext,
    ])
    mac = provider.hmac("sha256", mac_key, body)
    return body + mac


def parse(container: bytes) -> DCFPackage:
    """Parse a container *without* checking its MAC (see :func:`unpack`)."""
    try:
        if container[:4] != MAGIC:
            raise DecryptionError("not a DCF container (bad magic)")
        version, enc_method = struct.unpack_from(">BB", container, 4)
        if version != VERSION:
            raise DecryptionError(f"unsupported DCF version {version}")
        offset = 6
        (ct_len,) = struct.unpack_from(">B", container, offset)
        offset += 1
        content_type = container[offset:offset + ct_len].decode("utf-8")
        offset += ct_len
        (cid_len,) = struct.unpack_from(">H", container, offset)
        offset += 2
        content_id = container[offset:offset + cid_len].decode("utf-8")
        offset += cid_len
        iv = container[offset:offset + _IV_SIZE]
        offset += _IV_SIZE
        (data_len,) = struct.unpack_from(">I", container, offset)
        offset += 4
        ciphertext = container[offset:offset + data_len]
        if len(ciphertext) != data_len:
            raise DecryptionError("truncated DCF container")
        offset += data_len
        if len(container) != offset + _MAC_SIZE:
            raise DecryptionError("DCF container has trailing garbage")
    except (struct.error, UnicodeDecodeError, IndexError) as exc:
        raise DecryptionError(f"malformed DCF container: {exc}") from None
    return DCFPackage(
        content_type=content_type, content_id=content_id,
        enc_method=enc_method, iv=iv, ciphertext=ciphertext,
    )


def unpack(container: bytes, key: bytes, *,
           mac_key: bytes | None = None,
           provider: CryptoProvider | None = None
           ) -> tuple[bytes, DCFPackage]:
    """Verify the MAC and decrypt; returns ``(content, metadata)``.

    Raises:
        DecryptionError: bad MAC (tampering) or undecryptable payload.
    """
    provider = provider or get_provider()
    mac_key = mac_key if mac_key is not None else key
    if len(container) < _MAC_SIZE + 10:
        raise DecryptionError("DCF container too short")
    body, mac = container[:-_MAC_SIZE], container[-_MAC_SIZE:]
    expected = provider.hmac("sha256", mac_key, body)
    if not constant_time_equal(mac, expected):
        raise DecryptionError("DCF integrity check failed (tampered?)")
    metadata = parse(container)
    if metadata.enc_method == ENC_NULL:
        return metadata.ciphertext, metadata
    if metadata.enc_method == ENC_AES_128_CTR:
        return provider.aes_ctr(key, metadata.iv[:8],
                                metadata.ciphertext), metadata
    padded = provider.aes_cbc_decrypt(key, metadata.iv,
                                      metadata.ciphertext)
    return pkcs7_unpad(padded, 16), metadata


def container_overhead(content: bytes, container: bytes) -> int:
    """Bytes of container beyond the raw content (header + MAC + padding)."""
    return len(container) - len(content)
