"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the player can catch a single base class.  The
hierarchy mirrors the subsystems: XML processing, cryptographic
primitives, signature processing, encryption processing, key management,
access control, disc/content handling and the player engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# XML substrate
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Base class for XML processing errors."""


class XMLSyntaxError(XMLError):
    """Raised when a document is not well-formed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(message + location)
        self.line = line
        self.column = column


class NamespaceError(XMLError):
    """Raised for undeclared prefixes or illegal namespace bindings."""


class XPathError(XMLError):
    """Raised when an XPath-lite expression cannot be parsed or evaluated."""


class CanonicalizationError(XMLError):
    """Raised when a node-set cannot be canonicalized."""


# ---------------------------------------------------------------------------
# Resource governance
# ---------------------------------------------------------------------------

class ResourceLimitExceeded(ReproError):
    """Raised when untrusted input exceeds a :class:`ResourceGuard` quota.

    This is the typed containment signal for resource-exhaustion
    attacks (deep nesting, attribute floods, giant text nodes,
    reference bombs, decompression blow-ups, oversized frames): the
    pipeline converts what would otherwise be a ``RecursionError`` or
    ``MemoryError`` into a catchable, classifiable failure.

    Carries the ``limit_name`` (the :class:`ResourceLimits` field that
    tripped), the configured ``limit`` and the offending ``actual``
    value.
    """

    def __init__(self, limit_name: str, *, limit: float | None = None,
                 actual: float | None = None, detail: str = ""):
        message = f"resource limit {limit_name} exceeded"
        if limit is not None and actual is not None:
            message += f" ({actual:g} > {limit:g})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.limit_name = limit_name
        self.limit = limit
        self.actual = actual
        self.detail = detail


# ---------------------------------------------------------------------------
# Cryptographic primitives
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """Raised for malformed, mismatched or unusable key material."""


class PaddingError(CryptoError):
    """Raised when a padded plaintext fails to unpad (tampering or wrong key)."""


class UnknownAlgorithmError(CryptoError):
    """Raised when an algorithm URI or name is not registered."""


class ProviderError(CryptoError):
    """Raised when a crypto provider cannot satisfy a request."""


# ---------------------------------------------------------------------------
# XML Digital Signature
# ---------------------------------------------------------------------------

class SignatureError(ReproError):
    """Base class for XMLDSig processing errors."""


class SignatureFormatError(SignatureError):
    """Raised when Signature markup is structurally invalid."""


class ReferenceError_(SignatureError):
    """Raised when a ds:Reference cannot be dereferenced."""


class VerificationError(SignatureError):
    """Raised (or reported) when signature verification fails."""


# ---------------------------------------------------------------------------
# XML Encryption
# ---------------------------------------------------------------------------

class EncryptionError(ReproError):
    """Base class for XMLEnc processing errors."""


class EncryptedDataFormatError(EncryptionError):
    """Raised when EncryptedData/EncryptedKey markup is invalid."""


class DecryptionError(EncryptionError):
    """Raised when decryption fails (wrong key, tampered ciphertext)."""


# ---------------------------------------------------------------------------
# Certificates and key management
# ---------------------------------------------------------------------------

class CertificateError(ReproError):
    """Base class for certificate processing errors."""


class CertificateVerificationError(CertificateError):
    """Raised when a certificate or chain does not verify."""


class CertificateExpiredError(CertificateVerificationError):
    """Raised when a certificate is outside its validity window."""


class CertificateRevokedError(CertificateVerificationError):
    """Raised when a certificate appears on a revocation list."""


class UntrustedRootError(CertificateVerificationError):
    """Raised when a chain does not terminate at a trusted root."""


class XKMSError(ReproError):
    """Raised for XKMS protocol failures."""


# ---------------------------------------------------------------------------
# Access control
# ---------------------------------------------------------------------------

class PolicyError(ReproError):
    """Raised for malformed XACML policies or evaluation failures."""


class PermissionDeniedError(ReproError):
    """Raised when the platform denies a permission-gated operation."""


# ---------------------------------------------------------------------------
# Disc / content hierarchy
# ---------------------------------------------------------------------------

class DiscError(ReproError):
    """Base class for disc image / content hierarchy errors."""


class AuthoringError(DiscError):
    """Raised when a disc cannot be authored from the given content."""


class DiscFormatError(DiscError):
    """Raised when a disc image is structurally invalid."""


# ---------------------------------------------------------------------------
# Markup runtimes
# ---------------------------------------------------------------------------

class MarkupError(ReproError):
    """Base class for SMIL-lite / presentation errors."""


class ScriptError(ReproError):
    """Base class for ECMAScript-subset interpreter errors."""


class ScriptSyntaxError(ScriptError):
    """Raised when a script fails to parse."""


class ScriptRuntimeError(ScriptError):
    """Raised when a script fails at run time."""


# ---------------------------------------------------------------------------
# Network / player
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Raised for simulated network failures."""


class ChannelSecurityError(NetworkError):
    """Raised when the TLS-like secure channel detects tampering."""


class TimeoutError(NetworkError):  # noqa: A001 - deliberate shadow
    """Raised when an operation exceeds its time budget.

    Carries how many ``attempts`` were made and the simulated
    ``elapsed`` seconds when the budget ran out.
    """

    def __init__(self, message: str, *, attempts: int = 1,
                 elapsed: float = 0.0):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed


class ChannelClosedError(NetworkError):
    """Raised when transferring over a closed (dead) channel."""


class RetryExhaustedError(NetworkError):
    """Raised when a :class:`repro.resilience.RetryPolicy` gives up.

    Carries the number of ``attempts`` made, the simulated ``elapsed``
    seconds, and the ``last_error`` that caused the final failure.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 elapsed: float = 0.0,
                 last_error: BaseException | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_error = last_error


class CircuitOpenError(NetworkError):
    """Raised when a :class:`repro.resilience.CircuitBreaker` is open.

    Short-circuits calls without touching the wire.  Carries the
    consecutive-failure count that tripped the breaker (``attempts``)
    and ``retry_after`` — simulated seconds until the breaker half-opens.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 retry_after: float = 0.0):
        super().__init__(message)
        self.attempts = attempts
        self.retry_after = retry_after


class ServiceOverloadError(NetworkError):
    """Raised when a service sheds load instead of serving a request.

    The structured-busy signal of the overload-protection layer
    (admission queues full, bulkhead saturated, concurrency limiter
    refusing): the request was *answered*, not dropped.  ``reason``
    names the shedding mechanism (``"queue-full"``, ``"bulkhead"``,
    ``"limiter"``, ``"busy-fault"``); ``tenant`` the admission class it
    was accounted against.
    """

    def __init__(self, message: str, *, reason: str = "busy",
                 tenant: str = ""):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class PlayerError(ReproError):
    """Base class for player engine errors."""


class ApplicationRejectedError(PlayerError):
    """Raised when the engine bars an application from executing."""


class LocalStorageError(PlayerError):
    """Raised for player local-storage failures (quota, missing slot)."""


# ---------------------------------------------------------------------------
# Durable state (crash-safe persistence)
# ---------------------------------------------------------------------------

class DurableStateError(ReproError):
    """Raised when persisted security state fails its integrity checks.

    The durable layer distinguishes *torn* tails (power loss mid-write
    — silently truncated back to the last acknowledged commit) from
    everything it must refuse to repair.  ``kind`` classifies the
    refusal:

    * ``"tamper"`` — a complete journal frame or snapshot whose
      checksum/HMAC does not verify, a sequence regression, or a
      record that does not decode: acknowledged history has been
      altered.
    * ``"format"`` — the file is not a journal/snapshot at all
      (foreign header).
    * ``"protocol"`` — the caller misused the store API (e.g.
      compacting with uncommitted mutations).
    """

    def __init__(self, message: str, *, kind: str = "tamper"):
        super().__init__(message)
        self.kind = kind
