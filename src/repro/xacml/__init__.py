"""XACML 2.0 access control: policies, PDP/PEP, combining algorithms."""

from repro.xacml.combining import (
    ALGORITHMS, DENY_OVERRIDES, FIRST_APPLICABLE, PERMIT_OVERRIDES, combine,
)
from repro.xacml.model import (
    ACTION, CATEGORIES, ENVIRONMENT, FUNC_ANYURI_EQUAL, FUNC_REGEXP_MATCH,
    FUNC_STRING_EQUAL, RESOURCE, SUBJECT, Decision, Effect, Match, Policy,
    Request, Rule, Target,
)
from repro.xacml.pdp import PDP, PEP
from repro.xacml.rights import (
    ALL_RIGHTS, License, RIGHT_COPY, RIGHT_EXECUTE, RIGHT_PLAY,
    RIGHT_STORE, RightsEngine, RightsGrant,
)

__all__ = [
    "PDP", "PEP", "Policy", "Rule", "Target", "Match", "Request",
    "Decision", "Effect",
    "SUBJECT", "RESOURCE", "ACTION", "ENVIRONMENT", "CATEGORIES",
    "FUNC_STRING_EQUAL", "FUNC_REGEXP_MATCH", "FUNC_ANYURI_EQUAL",
    "DENY_OVERRIDES", "PERMIT_OVERRIDES", "FIRST_APPLICABLE",
    "ALGORITHMS", "combine",
    "License", "RightsGrant", "RightsEngine", "ALL_RIGHTS",
    "RIGHT_PLAY", "RIGHT_COPY", "RIGHT_EXECUTE", "RIGHT_STORE",
]
