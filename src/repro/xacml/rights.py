"""A rights-expression extension (the paper's XRML future work, §9).

"In lieu of future work ... we envision that XRML, an XML based rights
management language proposed by OASIS, to express digital rights for
the usage of markup-based applications and resources, can be
investigated for digital rights management in the next generation disc
player context."

This module is that investigation, scoped to the player: a small
rights-expression vocabulary (*licenses* granting *rights* over
*resources* to *principals*, with validity and play-count conditions)
that compiles down to the XACML engine already in the player — the
rights language is surface syntax; the PDP stays the single decision
point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.xacml.combining import PERMIT_OVERRIDES
from repro.xacml.model import (
    ACTION, Decision, Effect, Match, Policy, Request, RESOURCE, Rule,
    SUBJECT, Target,
)
from repro.xacml.pdp import PDP
from repro.xmlcore import element, parse_element, serialize
from repro.xmlcore.tree import Element

RIGHTS_NS = "urn:repro:rights:1.0"

# The rights vocabulary (XrML/ODRL-flavoured verbs).
RIGHT_PLAY = "play"
RIGHT_COPY = "copy"
RIGHT_EXECUTE = "execute"
RIGHT_STORE = "store"

ALL_RIGHTS = (RIGHT_PLAY, RIGHT_COPY, RIGHT_EXECUTE, RIGHT_STORE)


@dataclass(frozen=True)
class RightsGrant:
    """One grant inside a license.

    Attributes:
        right: the verb (play/copy/execute/store).
        resource: the resource URI (clip, application, storage slot).
        principal: who may exercise it (``"*"`` = anyone).
        not_after: expiry on the simulation clock (0 = no expiry).
        max_uses: play-count cap (0 = unlimited).
    """

    right: str
    resource: str
    principal: str = "*"
    not_after: float = 0.0
    max_uses: int = 0

    def __post_init__(self):
        if self.right not in ALL_RIGHTS:
            raise PolicyError(f"unknown right {self.right!r}")


@dataclass
class License:
    """A signed-able rights bundle issued to a device or user."""

    license_id: str
    issuer: str
    grants: list[RightsGrant] = field(default_factory=list)

    def grant(self, right: str, resource: str, *, principal: str = "*",
              not_after: float = 0.0, max_uses: int = 0) -> RightsGrant:
        entry = RightsGrant(right, resource, principal, not_after,
                            max_uses)
        self.grants.append(entry)
        return entry

    # -- XML mapping -------------------------------------------------------------

    def to_element(self) -> Element:
        node = element("license", RIGHTS_NS, nsmap={None: RIGHTS_NS},
                       attrs={"Id": self.license_id,
                              "issuer": self.issuer})
        for entry in self.grants:
            child = element("grant", RIGHTS_NS, attrs={
                "right": entry.right, "resource": entry.resource,
                "principal": entry.principal,
            })
            if entry.not_after:
                child.set("notAfter", repr(entry.not_after))
            if entry.max_uses:
                child.set("maxUses", str(entry.max_uses))
            node.append(child)
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "License":
        if node.local != "license":
            raise PolicyError(f"expected license, got {node.local!r}")
        license_ = cls(
            license_id=node.get("Id") or "",
            issuer=node.get("issuer") or "",
        )
        for child in node.child_elements():
            if child.local != "grant":
                continue
            license_.grants.append(RightsGrant(
                right=child.get("right") or "",
                resource=child.get("resource") or "",
                principal=child.get("principal") or "*",
                not_after=float(child.get("notAfter", "0") or 0),
                max_uses=int(child.get("maxUses", "0") or 0),
            ))
        return license_

    @classmethod
    def from_xml(cls, text: str | bytes) -> "License":
        return cls.from_element(parse_element(text))


class RightsEngine:
    """Evaluates rights requests by compiling licenses to XACML.

    Usage counting (``max_uses``) is tracked per (license, grant)
    inside the engine — the stateful part XACML itself doesn't model.
    """

    def __init__(self, now: float = 0.0):
        self.now = now
        self._licenses: list[License] = []
        self._use_counts: dict[tuple[str, int], int] = {}

    def install(self, license_: License) -> None:
        self._licenses.append(license_)

    def _grant_rule(self, license_: License, index: int,
                    entry: RightsGrant) -> Rule:
        matches = [
            Match(ACTION, "right", entry.right),
            Match(RESOURCE, "resource-id", entry.resource),
        ]
        if entry.principal != "*":
            matches.append(Match(SUBJECT, "principal", entry.principal))

        def condition(_request: Request) -> bool:
            if entry.not_after and self.now > entry.not_after:
                return False
            if entry.max_uses:
                used = self._use_counts.get(
                    (license_.license_id, index), 0,
                )
                if used >= entry.max_uses:
                    return False
            return True

        return Rule(
            f"{license_.license_id}-grant-{index}", Effect.PERMIT,
            Target(matches), condition,
        )

    def _pdp(self) -> PDP:
        policies = []
        for license_ in self._licenses:
            policy = Policy(license_.license_id,
                            combining=PERMIT_OVERRIDES)
            for index, entry in enumerate(license_.grants):
                policy.add_rule(self._grant_rule(license_, index, entry))
            policies.append(policy)
        return PDP(policies, policy_combining=PERMIT_OVERRIDES)

    def check(self, right: str, resource: str,
              principal: str = "*") -> bool:
        """Is the exercise permitted right now (no use consumed)?"""
        request = Request(
            subject={"principal": [principal]},
            resource={"resource-id": [resource]},
            action={"right": [right]},
        )
        return self._pdp().evaluate(request) is Decision.PERMIT

    def exercise(self, right: str, resource: str,
                 principal: str = "*") -> bool:
        """Check and, if permitted, consume one use of the first
        matching counted grant."""
        if not self.check(right, resource, principal):
            return False
        for license_ in self._licenses:
            for index, entry in enumerate(license_.grants):
                if entry.right != right or entry.resource != resource:
                    continue
                if entry.principal not in ("*", principal):
                    continue
                if entry.max_uses:
                    key = (license_.license_id, index)
                    self._use_counts[key] = \
                        self._use_counts.get(key, 0) + 1
                return True
        return True

    def uses_remaining(self, license_id: str, grant_index: int
                       ) -> int | None:
        """Remaining uses for a counted grant (``None`` if unlimited)."""
        for license_ in self._licenses:
            if license_.license_id != license_id:
                continue
            entry = license_.grants[grant_index]
            if not entry.max_uses:
                return None
            used = self._use_counts.get((license_id, grant_index), 0)
            return max(0, entry.max_uses - used)
        raise PolicyError(f"no license {license_id!r}")
