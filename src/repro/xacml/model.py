"""XACML 2.0 core model: requests, targets, rules, policies.

The paper (§4) points at OASIS XACML for access control: "content
creators [can] add policies to request the disc player devices to
provide certain rights to an application."  This module implements the
decision core of XACML 2.0 — attribute-based targets, Permit/Deny
rules with optional conditions, and policies with rule-combining
algorithms — plus an XML mapping in the XACML namespace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import PolicyError
from repro.xmlcore import XACML_NS, element, parse_element, serialize
from repro.xmlcore.tree import Element

# Attribute categories (XACML request sections).
SUBJECT = "Subject"
RESOURCE = "Resource"
ACTION = "Action"
ENVIRONMENT = "Environment"

CATEGORIES = (SUBJECT, RESOURCE, ACTION, ENVIRONMENT)

# Match function identifiers (the practically used subset).
FUNC_STRING_EQUAL = "urn:oasis:names:tc:xacml:1.0:function:string-equal"
FUNC_REGEXP_MATCH = (
    "urn:oasis:names:tc:xacml:1.0:function:string-regexp-match"
)
FUNC_ANYURI_EQUAL = "urn:oasis:names:tc:xacml:1.0:function:anyURI-equal"

MATCH_FUNCTIONS = (FUNC_STRING_EQUAL, FUNC_REGEXP_MATCH, FUNC_ANYURI_EQUAL)


class Decision(Enum):
    """XACML decision values."""

    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"
    INDETERMINATE = "Indeterminate"


class Effect(Enum):
    PERMIT = "Permit"
    DENY = "Deny"


@dataclass
class Request:
    """A decision request: attributes per category.

    Attribute values are lists (XACML bags): ``subject={"role":
    ["application"], "signer": ["CN=Studio"]}``.
    """

    subject: dict[str, list[str]] = field(default_factory=dict)
    resource: dict[str, list[str]] = field(default_factory=dict)
    action: dict[str, list[str]] = field(default_factory=dict)
    environment: dict[str, list[str]] = field(default_factory=dict)

    def bag(self, category: str, attribute: str) -> list[str]:
        store = {
            SUBJECT: self.subject, RESOURCE: self.resource,
            ACTION: self.action, ENVIRONMENT: self.environment,
        }.get(category)
        if store is None:
            raise PolicyError(f"unknown category {category!r}")
        return store.get(attribute, [])


@dataclass(frozen=True)
class Match:
    """One attribute match requirement inside a target."""

    category: str
    attribute: str
    value: str
    function: str = FUNC_STRING_EQUAL

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise PolicyError(f"unknown category {self.category!r}")
        if self.function not in MATCH_FUNCTIONS:
            raise PolicyError(f"unknown match function {self.function!r}")

    def evaluate(self, request: Request) -> bool:
        bag = request.bag(self.category, self.attribute)
        if self.function == FUNC_REGEXP_MATCH:
            try:
                pattern = re.compile(self.value)
            except re.error as exc:
                raise PolicyError(
                    f"bad regexp in match: {exc}"
                ) from None
            return any(pattern.search(candidate) for candidate in bag)
        return self.value in bag


@dataclass
class Target:
    """A conjunction of matches; an empty target matches everything."""

    matches: list[Match] = field(default_factory=list)

    def applies(self, request: Request) -> bool:
        return all(match.evaluate(request) for match in self.matches)


class Rule:
    """A Permit/Deny rule with a target and optional condition callable.

    The condition (XACML's general <Condition>) is modelled as a plain
    callable ``Request -> bool``; exceptions map to INDETERMINATE.
    """

    def __init__(self, rule_id: str, effect: Effect,
                 target: Target | None = None, condition=None):
        self.rule_id = rule_id
        self.effect = effect
        self.target = target or Target()
        self.condition = condition

    def evaluate(self, request: Request) -> Decision:
        if not self.target.applies(request):
            return Decision.NOT_APPLICABLE
        if self.condition is not None:
            try:
                if not self.condition(request):
                    return Decision.NOT_APPLICABLE
            except Exception:
                return Decision.INDETERMINATE
        return (Decision.PERMIT if self.effect is Effect.PERMIT
                else Decision.DENY)


@dataclass
class Policy:
    """A policy: target, rules, rule-combining algorithm id."""

    policy_id: str
    rules: list[Rule] = field(default_factory=list)
    target: Target = field(default_factory=Target)
    combining: str = "deny-overrides"
    description: str = ""

    def add_rule(self, rule: Rule) -> Rule:
        self.rules.append(rule)
        return rule

    # -- XML mapping -----------------------------------------------------------

    def to_element(self) -> Element:
        node = element(
            "Policy", XACML_NS, nsmap={None: XACML_NS},
            attrs={
                "PolicyId": self.policy_id,
                "RuleCombiningAlgId": self.combining,
            },
        )
        if self.description:
            node.append(
                element("Description", XACML_NS, text=self.description)
            )
        node.append(_target_to_element(self.target))
        for rule in self.rules:
            rule_el = element("Rule", XACML_NS, attrs={
                "RuleId": rule.rule_id, "Effect": rule.effect.value,
            })
            rule_el.append(_target_to_element(rule.target))
            node.append(rule_el)
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "Policy":
        if node.local != "Policy":
            raise PolicyError(f"expected Policy, got {node.local!r}")
        policy = cls(
            policy_id=node.get("PolicyId") or "",
            combining=node.get("RuleCombiningAlgId") or "deny-overrides",
        )
        description = node.first_child("Description")
        if description is not None:
            policy.description = description.text_content()
        target_el = node.first_child("Target")
        if target_el is not None:
            policy.target = _target_from_element(target_el)
        for rule_el in node.child_elements():
            if rule_el.local != "Rule":
                continue
            effect_text = rule_el.get("Effect") or ""
            try:
                effect = Effect(effect_text)
            except ValueError:
                raise PolicyError(
                    f"bad rule effect {effect_text!r}"
                ) from None
            rule = Rule(rule_el.get("RuleId") or "", effect)
            rule_target = rule_el.first_child("Target")
            if rule_target is not None:
                rule.target = _target_from_element(rule_target)
            policy.rules.append(rule)
        return policy

    @classmethod
    def from_xml(cls, text: str | bytes) -> "Policy":
        return cls.from_element(parse_element(text))


def _target_to_element(target: Target) -> Element:
    node = element("Target", XACML_NS)
    for match in target.matches:
        match_el = element("Match", XACML_NS, attrs={
            "Category": match.category,
            "AttributeId": match.attribute,
            "MatchId": match.function,
        })
        match_el.append(
            element("AttributeValue", XACML_NS, text=match.value)
        )
        node.append(match_el)
    return node


def _target_from_element(node: Element) -> Target:
    target = Target()
    for match_el in node.child_elements():
        if match_el.local != "Match":
            continue
        value_el = match_el.first_child("AttributeValue")
        target.matches.append(Match(
            category=match_el.get("Category") or SUBJECT,
            attribute=match_el.get("AttributeId") or "",
            value=value_el.text_content() if value_el is not None else "",
            function=match_el.get("MatchId") or FUNC_STRING_EQUAL,
        ))
    return target
