"""XACML combining algorithms (rule- and policy-level)."""

from __future__ import annotations

from typing import Iterable

from repro.errors import PolicyError
from repro.xacml.model import Decision

DENY_OVERRIDES = "deny-overrides"
PERMIT_OVERRIDES = "permit-overrides"
FIRST_APPLICABLE = "first-applicable"

ALGORITHMS = (DENY_OVERRIDES, PERMIT_OVERRIDES, FIRST_APPLICABLE)


def combine(algorithm: str, decisions: Iterable[Decision]) -> Decision:
    """Combine *decisions* under the named algorithm."""
    if algorithm == DENY_OVERRIDES:
        return _deny_overrides(decisions)
    if algorithm == PERMIT_OVERRIDES:
        return _permit_overrides(decisions)
    if algorithm == FIRST_APPLICABLE:
        return _first_applicable(decisions)
    raise PolicyError(f"unknown combining algorithm {algorithm!r}")


def _deny_overrides(decisions: Iterable[Decision]) -> Decision:
    saw_permit = False
    saw_indeterminate = False
    for decision in decisions:
        if decision is Decision.DENY:
            return Decision.DENY
        if decision is Decision.PERMIT:
            saw_permit = True
        elif decision is Decision.INDETERMINATE:
            saw_indeterminate = True
    if saw_indeterminate:
        # A potential (indeterminate) Deny overrides a Permit.
        return Decision.INDETERMINATE
    if saw_permit:
        return Decision.PERMIT
    return Decision.NOT_APPLICABLE


def _permit_overrides(decisions: Iterable[Decision]) -> Decision:
    saw_deny = False
    saw_indeterminate = False
    for decision in decisions:
        if decision is Decision.PERMIT:
            return Decision.PERMIT
        if decision is Decision.DENY:
            saw_deny = True
        elif decision is Decision.INDETERMINATE:
            saw_indeterminate = True
    if saw_indeterminate:
        return Decision.INDETERMINATE
    if saw_deny:
        return Decision.DENY
    return Decision.NOT_APPLICABLE


def _first_applicable(decisions: Iterable[Decision]) -> Decision:
    for decision in decisions:
        if decision is not Decision.NOT_APPLICABLE:
            return decision
    return Decision.NOT_APPLICABLE
