"""Policy Decision Point and Policy Enforcement Point.

The player embeds a PDP loaded with the platform policy (optionally
extended by content-provider policies shipped on the disc) and wraps
resource access in a PEP — "based on the adopted policy, the platform
can allow or reject the rights to the resources" (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PermissionDeniedError, PolicyError
from repro.xacml.combining import DENY_OVERRIDES, combine
from repro.xacml.model import Decision, Policy, Request


@dataclass
class PDP:
    """Evaluates requests against an ordered set of policies.

    *policy_combining* combines the per-policy decisions (default
    deny-overrides, the conservative choice for a CE device).
    """

    policies: list[Policy] = field(default_factory=list)
    policy_combining: str = DENY_OVERRIDES

    def add_policy(self, policy: Policy) -> Policy:
        self.policies.append(policy)
        return policy

    def evaluate_policy(self, policy: Policy, request: Request) -> Decision:
        if not policy.target.applies(request):
            return Decision.NOT_APPLICABLE
        try:
            decisions = [rule.evaluate(request) for rule in policy.rules]
        except PolicyError:
            return Decision.INDETERMINATE
        return combine(policy.combining, decisions)

    def evaluate(self, request: Request) -> Decision:
        decisions = (
            self.evaluate_policy(policy, request)
            for policy in self.policies
        )
        return combine(self.policy_combining, decisions)


@dataclass
class PEP:
    """Enforcement wrapper: deny-biased gate in front of resources.

    Anything other than an explicit PERMIT is refused ("deny-biased
    PEP" in XACML terms) — the correct bias for executing downloaded
    applications.
    """

    pdp: PDP
    audit_log: list[tuple[str, Decision]] = field(default_factory=list)

    def is_permitted(self, request: Request,
                     description: str = "") -> bool:
        decision = self.pdp.evaluate(request)
        self.audit_log.append((description, decision))
        return decision is Decision.PERMIT

    def enforce(self, request: Request, description: str = "") -> None:
        """Raise :class:`PermissionDeniedError` unless PERMIT."""
        if not self.is_permitted(request, description):
            raise PermissionDeniedError(
                f"access denied: {description or 'resource access'}"
            )
