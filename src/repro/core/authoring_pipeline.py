"""The creator-side end-to-end security pipeline (Fig 9, left half).

Order of operations, exactly as the paper's Fig 9 lays it out:

1. assemble the application package (manifest + permission request
   file);
2. **sign** it — the reference carries the W3C Decryption Transform so
   the player knows which regions to decrypt before digest validation,
   and ``dcrpt:Except`` entries name regions that were encrypted
   *before* signing;
3. **encrypt** the confidential regions under a fresh content key
   wrapped for the recipient (a player's RSA key or a shared KEK);
4. serialize for transmission (disc mastering or download; TLS for the
   latter is the transport's job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.certs.authority import SigningIdentity
from repro.core.package import PackageView, build_package_element, parse_package
from repro.disc.manifest import ApplicationManifest
from repro.dsig import algorithms as dsig_algorithms
from repro.dsig.reference import Reference
from repro.dsig.signer import Signer
from repro.dsig.transforms import DECRYPT_XML, ENVELOPED_SIGNATURE, Transform
from repro.errors import AuthoringError
from repro.permissions.request_file import PermissionRequestFile
from repro.primitives.keys import RSAPublicKey, SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random
from repro.xmlcore import C14N
from repro.xmlcore.tree import Element
from repro.xmlenc import algorithms as xenc_algorithms
from repro.xmlenc.decryptor import Decryptor
from repro.xmlenc.encryptor import Encryptor


@dataclass
class SecurePackage:
    """The pipeline's output: transmit-ready bytes plus bookkeeping."""

    data: bytes
    signed: bool
    encrypted_ids: list[str] = field(default_factory=list)
    pre_encrypted_ids: list[str] = field(default_factory=list)

    def view(self) -> PackageView:
        return parse_package(self.data)


@dataclass
class AuthoringPipeline:
    """Creates secure application packages.

    Args:
        identity: the signing identity (certificate chain embedded).
        recipient_key: the player's RSA public key (``rsa-1_5`` key
            transport) — or ``None`` with *shared_kek* for AES key wrap.
        shared_kek: a pre-shared key-encryption key and its slot name.
        signature_method / digest_method / encryption_algorithm:
            algorithm URIs.
    """

    identity: SigningIdentity
    recipient_key: RSAPublicKey | None = None
    shared_kek: tuple[str, SymmetricKey] | None = None
    signature_method: str = dsig_algorithms.RSA_SHA1
    digest_method: str = dsig_algorithms.SHA1
    encryption_algorithm: str = xenc_algorithms.AES128_CBC
    provider: CryptoProvider | None = None
    rng: RandomSource | None = None

    def __post_init__(self):
        self.provider = self.provider or get_provider()
        self.rng = self.rng or default_random()
        self._encryptor = Encryptor(self.provider, self.rng)

    # -- public API -------------------------------------------------------------

    def build_package(self, manifest: ApplicationManifest, *,
                      permission_file: PermissionRequestFile | None = None,
                      sign: bool = True,
                      encrypt_ids: tuple[str, ...] = (),
                      pre_encrypt_ids: tuple[str, ...] = (),
                      ) -> SecurePackage:
        """Assemble, sign and encrypt an application package.

        Args:
            manifest: the application to package.
            permission_file: optional MHP-style permission request.
            sign: create the enveloped signature (Fig 3).
            encrypt_ids: element Ids to encrypt *after* signing —
                the signature's Decryption Transform makes the player
                decrypt them before digest validation.
            pre_encrypt_ids: element Ids to encrypt *before* signing —
                they are named in ``dcrpt:Except`` and stay encrypted
                during verification (signature covers the ciphertext).
        """
        package = build_package_element(manifest.to_element(),
                                        permission_file)
        cek, encrypted_key = self._session_key()

        pre_encrypted: list[str] = []
        for target_id in pre_encrypt_ids:
            self._encrypt_target(package, target_id, cek, encrypted_key,
                                 data_id=f"enc-{target_id}")
            pre_encrypted.append(f"enc-{target_id}")

        if sign:
            self._sign_package(package, pre_encrypted)

        encrypted: list[str] = []
        for target_id in encrypt_ids:
            self._encrypt_target(package, target_id, cek, encrypted_key,
                                 data_id=f"enc-{target_id}")
            encrypted.append(f"enc-{target_id}")

        view = PackageView(package, package)  # serialization only
        return SecurePackage(
            data=view.to_bytes(),
            signed=sign,
            encrypted_ids=encrypted,
            pre_encrypted_ids=pre_encrypted,
        )

    # -- internals ----------------------------------------------------------------

    def _session_key(self):
        cek = self._encryptor.generate_cek(self.encryption_algorithm)
        if self.recipient_key is not None:
            encrypted_key = self._encryptor.make_encrypted_key(
                cek, self.recipient_key,
                wrap_algorithm=xenc_algorithms.RSA_1_5,
                recipient="player",
            )
        elif self.shared_kek is not None:
            name, kek = self.shared_kek
            wrap = {
                16: xenc_algorithms.KW_AES128,
                24: xenc_algorithms.KW_AES192,
                32: xenc_algorithms.KW_AES256,
            }.get(len(kek.data))
            if wrap is None:
                raise AuthoringError("shared KEK must be 16/24/32 bytes")
            encrypted_key = self._encryptor.make_encrypted_key(
                cek, kek, wrap_algorithm=wrap, kek_name=name,
            )
        else:
            raise AuthoringError(
                "pipeline needs a recipient key or a shared KEK"
            )
        return cek, encrypted_key

    def _encrypt_target(self, package: Element, target_id: str, cek,
                        encrypted_key, data_id: str) -> None:
        target = package.get_element_by_id(target_id)
        if target is None:
            raise AuthoringError(
                f"no element with Id {target_id!r} to encrypt"
            )
        self._encryptor.encrypt_element(
            target, cek, algorithm=self.encryption_algorithm,
            encrypted_key=encrypted_key, data_id=data_id,
        )

    def _sign_package(self, package: Element,
                      pre_encrypted_ids: list[str]) -> None:
        signer = Signer(
            self.identity.key, identity=self.identity,
            signature_method=self.signature_method,
            digest_method=self.digest_method,
            provider=self.provider,
        )
        transforms = [
            Transform(
                DECRYPT_XML,
                except_uris=tuple(f"#{i}" for i in pre_encrypted_ids),
            ),
            Transform(ENVELOPED_SIGNATURE),
            Transform(C14N),
        ]
        reference = Reference(uri="", transforms=transforms,
                              digest_method=self.digest_method)
        # At signing time nothing (beyond the excepted regions) is
        # encrypted, so the decryption transform is a no-op; an empty
        # decryptor satisfies the pipeline.
        signer.sign_references([reference], parent=package,
                               decryptor=Decryptor(provider=self.provider))
