"""The application package: what actually travels from creator to player.

A package bundles the Interactive Application (manifest), the optional
MHP-style permission request file, and the security markup (signature,
encrypted regions) into one XML document — the downloadable unit of
Figs 1, 3 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscFormatError
from repro.disc.manifest import ApplicationManifest
from repro.permissions.request_file import PermissionRequestFile
from repro.xmlcore import (
    DISC_NS, DSIG_NS, MHP_PERMISSION_NS, element, parse_element,
    serialize_bytes,
)
from repro.xmlcore.tree import Element

PACKAGE_ID = "application-package"


def build_package_element(manifest_element: Element,
                          permission_file: PermissionRequestFile | None
                          ) -> Element:
    """Assemble the package root around a manifest element."""
    package = element(
        "applicationPackage", DISC_NS, nsmap={None: DISC_NS},
        attrs={"Id": PACKAGE_ID},
    )
    package.append(manifest_element)
    if permission_file is not None:
        package.append(permission_file.to_element())
    return package


@dataclass
class PackageView:
    """A parsed (not yet verified) package."""

    root: Element
    manifest_element: Element
    signature_element: Element | None = None
    permission_file: PermissionRequestFile | None = None

    @property
    def is_signed(self) -> bool:
        return self.signature_element is not None

    def manifest(self) -> ApplicationManifest:
        return ApplicationManifest.from_element(self.manifest_element)

    def to_bytes(self) -> bytes:
        return serialize_bytes(self.root)


def parse_package(data: bytes | str | Element, *,
                  guard=None) -> PackageView:
    """Parse package bytes (or an already-parsed root) into a view.

    Downloaded packages are untrusted; *guard* meters the parse (and
    is the guard the pipeline later reuses for decryption), so a
    structural resource attack trips a typed limit here instead of
    exhausting the player.
    """
    root = data if isinstance(data, Element) \
        else parse_element(data, guard=guard)
    if root.local != "applicationPackage":
        raise DiscFormatError(
            f"expected applicationPackage, got {root.local!r}"
        )
    manifest_element = root.first_child("manifest", DISC_NS) \
        or root.first_child("manifest")
    if manifest_element is None:
        # The manifest may be wholly encrypted; leave it to the
        # playback pipeline to decrypt and re-parse.
        manifest_element = root
    signature_element = None
    for child in root.child_elements():
        if child.local == "Signature" and child.ns_uri == DSIG_NS:
            signature_element = child
            break
    permission_file = None
    prf_el = root.first_child("permissionrequestfile", MHP_PERMISSION_NS)
    if prf_el is not None:
        permission_file = PermissionRequestFile.from_element(prf_el)
    return PackageView(
        root=root,
        manifest_element=manifest_element,
        signature_element=signature_element,
        permission_file=permission_file,
    )
