"""Signing/encryption granularity levels (Figs 4 and 5).

The paper's central flexibility argument: XML security can be applied
at every level of the content hierarchy — the whole Interactive
Cluster, individual Tracks, the Manifest, its Markup or Code part,
single SubMarkups or single Scripts.  "For player platforms, this
flexibility translates into better performance" (§9) — the ABL-GRAN
bench quantifies exactly that.

``sign_at_level`` produces one detached signature per target (or one
enveloped signature for the cluster level), appended to the cluster
root; ``verify_signatures`` checks them all and reports per-target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SignatureError
from repro.dsig.signer import Signer
from repro.dsig.verifier import VerificationReport, Verifier
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import DISC_NS, DSIG_NS, XMLENC_NS
from repro.xmlcore.tree import Element
from repro.xmlenc.encryptor import Encryptor


class ProtectionLevel(Enum):
    """Where in the hierarchy protection is applied."""

    CLUSTER = "cluster"
    TRACK = "track"
    MANIFEST = "manifest"
    MARKUP = "markup"
    CODE = "code"
    SUBMARKUP = "submarkup"
    SCRIPT = "script"


_LEVEL_LOCAL_NAMES = {
    ProtectionLevel.TRACK: "track",
    ProtectionLevel.MANIFEST: "manifest",
    ProtectionLevel.MARKUP: "markup",
    ProtectionLevel.CODE: "code",
    ProtectionLevel.SUBMARKUP: "submarkup",
    ProtectionLevel.SCRIPT: "script",
}


def protection_targets(cluster_root: Element,
                       level: ProtectionLevel) -> list[Element]:
    """The markup targets at *level* inside *cluster_root*.

    Every returned element carries an ``Id`` attribute (required so a
    detached signature can reference it); elements lacking one are
    rejected rather than silently skipped.
    """
    if level is ProtectionLevel.CLUSTER:
        return [cluster_root]
    local = _LEVEL_LOCAL_NAMES[level]
    targets = [
        el for el in cluster_root.iter(local)
        if el.ns_uri in (DISC_NS, None)
    ]
    for target in targets:
        if not target.get("Id"):
            raise SignatureError(
                f"{local} element lacks an Id attribute; cannot be a "
                "signing target"
            )
    return targets


@dataclass
class LevelProtectionResult:
    """What a level-wide signing/encryption pass produced."""

    level: ProtectionLevel
    target_ids: list[str] = field(default_factory=list)
    signatures: list[Element] = field(default_factory=list)
    protected_bytes: int = 0


def sign_at_level(cluster_root: Element, level: ProtectionLevel,
                  signer: Signer) -> LevelProtectionResult:
    """Sign every target at *level*; signatures live on the cluster root.

    The cluster level uses a single enveloped signature over the whole
    document; all other levels use one detached same-document signature
    per target.
    """
    from repro.xmlcore import canonicalize
    result = LevelProtectionResult(level)
    if level is ProtectionLevel.CLUSTER:
        signature = signer.sign_enveloped(cluster_root)
        result.signatures.append(signature)
        result.target_ids.append(cluster_root.get("Id") or "")
        result.protected_bytes = len(canonicalize(cluster_root))
        return result
    for target in protection_targets(cluster_root, level):
        target_id = target.get("Id") or ""
        signature = signer.sign_detached(f"#{target_id}",
                                         parent=cluster_root)
        result.signatures.append(signature)
        result.target_ids.append(target_id)
        result.protected_bytes += len(canonicalize(target))
    return result


def verify_signatures(cluster_root: Element, verifier: Verifier, *,
                      decryptor=None, batch: bool = False,
                      max_workers: int | None = None
                      ) -> dict[str, VerificationReport]:
    """Verify every ds:Signature directly under *cluster_root*.

    Returns a map from the signature's first reference URI to its
    report (``""`` for whole-document signatures).

    With ``batch=True`` the signatures go through the
    :class:`repro.perf.BatchVerifier`: shared subtree digests are
    deduplicated into the verifier's cache and the signatures are
    checked across a worker pool.  The verdicts are identical to the
    sequential path.
    """
    if batch:
        from repro.perf.batch import BatchVerifier
        outcome = BatchVerifier(verifier, max_workers=max_workers) \
            .verify_all(cluster_root, decryptor=decryptor)
        return outcome.reports
    reports: dict[str, VerificationReport] = {}
    for child in list(cluster_root.child_elements()):
        if child.local != "Signature" or child.ns_uri != DSIG_NS:
            continue
        report = verifier.verify(child, decryptor=decryptor)
        uri = ""
        reference = child.find("Reference", DSIG_NS)
        if reference is not None:
            uri = reference.get("URI") or ""
        reports[uri] = report
    return reports


def encrypt_at_level(cluster_root: Element, level: ProtectionLevel,
                     encryptor: Encryptor, key: SymmetricKey, *,
                     key_name: str | None = None,
                     algorithm: str | None = None
                     ) -> LevelProtectionResult:
    """Encrypt every target at *level* in place (Figs 7 and 8)."""
    from repro.xmlcore import canonicalize
    from repro.xmlenc import algorithms as xenc_algorithms
    algorithm = algorithm or xenc_algorithms.AES128_CBC
    result = LevelProtectionResult(level)
    if level is ProtectionLevel.CLUSTER:
        raise SignatureError(
            "encrypting the whole cluster would hide the hierarchy "
            "itself; encrypt at track level or below"
        )
    for target in protection_targets(cluster_root, level):
        result.target_ids.append(target.get("Id") or "")
        result.protected_bytes += len(canonicalize(target))
        encryptor.encrypt_element(target, key, algorithm=algorithm,
                                  key_name=key_name)
    return result


def count_encrypted(cluster_root: Element) -> int:
    """Number of EncryptedData structures under *cluster_root*."""
    return sum(
        1 for el in cluster_root.iter("EncryptedData", XMLENC_NS)
    )
