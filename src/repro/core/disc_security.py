"""Whole-disc signing — the disc-authentication substrate (§5.1, [29]).

"Disc based applications are inherently trusted since they were
authored into the disc by the content providers — provided the disc is
authenticated."  This helper signs a mastered :class:`DiscImage`:

* the Interactive Cluster markup, at a chosen granularity level
  (Figs 4/5); and
* optionally the non-markup A/V content — "It is entirely up to the
  discretion of the Signer if (s)he wishes to sign the non-markup
  audio/video Content, which is nevertheless possible using XML
  Digital Signature" (§5.3) — as detached references to the ``bd://``
  stream URIs.

The player verifies these signatures at insertion time with the image
as the reference resolver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.granularity import (
    LevelProtectionResult, ProtectionLevel, sign_at_level,
)
from repro.disc.image import DiscImage
from repro.dsig.reference import Reference
from repro.dsig.signer import Signer
from repro.xmlcore import serialize_bytes


@dataclass
class DiscSigningResult:
    """What got signed on the disc."""

    level: ProtectionLevel
    markup: LevelProtectionResult
    stream_uris: list[str] = field(default_factory=list)


def sign_disc_image(image: DiscImage, signer: Signer, *,
                    level: ProtectionLevel = ProtectionLevel.TRACK,
                    include_streams: bool = True,
                    use_manifest: bool = False) -> DiscSigningResult:
    """Sign the disc's cluster (and optionally its streams) in place.

    The cluster markup is rewritten on the image with the signatures
    embedded.  Stream signatures are a single detached multi-reference
    signature over every ``.m2ts`` file, appended to the cluster root.

    With *use_manifest* a single signature carries a ``ds:Manifest``
    listing every track and stream instead: core validation covers the
    manifest list, and the player checks individual entries as it uses
    them (XMLDSig §5.1 semantics — a damaged bonus track does not
    invalidate the whole disc).
    """
    cluster_element = image.cluster_element()

    if use_manifest:
        from repro.dsig.manifest import sign_with_manifest
        from repro.dsig.transforms import Transform
        from repro.xmlcore import C14N
        references = []
        track_ids = []
        for track in cluster_element.iter("track"):
            track_id = track.get("Id") or ""
            track_ids.append(track_id)
            references.append(Reference(
                uri=f"#{track_id}", transforms=[Transform(C14N)],
                digest_method=signer.digest_method,
            ))
        stream_uris = []
        if include_streams:
            for path in image.paths():
                if path.endswith(image.layout.stream_extension):
                    uri = image.layout.path_to_uri(path)
                    stream_uris.append(uri)
                    references.append(Reference(
                        uri=uri, digest_method=signer.digest_method,
                    ))
        sign_with_manifest(signer, references, parent=cluster_element,
                           resolver=image.resolver)
        image.write(image.layout.cluster_path(),
                serialize_bytes(cluster_element))
        return DiscSigningResult(
            level=level,
            markup=LevelProtectionResult(level, target_ids=track_ids),
            stream_uris=stream_uris,
        )

    # Streams are signed FIRST: a whole-document (cluster-level)
    # enveloped signature must be computed over the final document, and
    # its enveloped-signature transform removes only itself — appending
    # the stream signature afterwards would invalidate it.
    stream_uris: list[str] = []
    if include_streams:
        references = []
        for path in image.paths():
            if not path.endswith(image.layout.stream_extension):
                continue
            uri = image.layout.path_to_uri(path)
            stream_uris.append(uri)
            references.append(Reference(
                uri=uri, digest_method=signer.digest_method,
            ))
        if references:
            signer.sign_references(
                references, parent=cluster_element,
                resolver=image.resolver,
            )

    markup_result = sign_at_level(cluster_element, level, signer)

    image.write(image.layout.cluster_path(),
                serialize_bytes(cluster_element))
    return DiscSigningResult(
        level=level, markup=markup_result, stream_uris=stream_uris,
    )
