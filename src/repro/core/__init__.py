"""The paper's contribution: end-to-end XML security for disc applications."""

from repro.core.authoring_pipeline import AuthoringPipeline, SecurePackage
from repro.core.decryption_transform import apply_decryption_transform
from repro.core.disc_security import DiscSigningResult, sign_disc_image
from repro.core.granularity import (
    LevelProtectionResult, ProtectionLevel, count_encrypted,
    encrypt_at_level, protection_targets, sign_at_level, verify_signatures,
)
from repro.core.package import (
    PACKAGE_ID, PackageView, build_package_element, parse_package,
)
from repro.core.playback_pipeline import (
    PlaybackPipeline, VerifiedApplication,
)
from repro.core.profiles import (
    ALL_PROFILES, SIGNED_AND_ENCRYPTED, SIGNED_ONLY, SIGNED_TRACKS,
    STUDIO_GRADE, UNPROTECTED, SecurityProfile, apply_profile_to_disc,
    profile_by_name,
)

__all__ = [
    "AuthoringPipeline", "SecurePackage", "PlaybackPipeline",
    "VerifiedApplication", "PackageView", "parse_package",
    "build_package_element", "PACKAGE_ID",
    "ProtectionLevel", "LevelProtectionResult", "protection_targets",
    "sign_at_level", "verify_signatures", "encrypt_at_level",
    "count_encrypted", "apply_decryption_transform",
    "sign_disc_image", "DiscSigningResult",
    "SecurityProfile", "ALL_PROFILES", "UNPROTECTED", "SIGNED_ONLY",
    "apply_profile_to_disc",
    "SIGNED_TRACKS", "SIGNED_AND_ENCRYPTED", "STUDIO_GRADE",
    "profile_by_name",
]
