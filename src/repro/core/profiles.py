"""Preset disc security profiles.

Named bundles of the knobs a content provider turns: what gets signed,
what gets encrypted, and in which order — the configurations the
evaluation sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.granularity import ProtectionLevel
from repro.dsig import algorithms as dsig_algorithms
from repro.xmlenc import algorithms as xenc_algorithms


@dataclass(frozen=True)
class SecurityProfile:
    """A disc/application protection recipe.

    Attributes:
        name: profile identifier.
        sign_level: hierarchy level for signatures (``None`` = unsigned).
        encrypt_levels: hierarchy levels whose targets get encrypted.
        signature_method / digest_method / encryption_algorithm:
            algorithm URIs.
        encrypt_before_signing: Fig 9 ordering knob — encrypted regions
            become ``dcrpt:Except`` entries when True.
    """

    name: str
    sign_level: ProtectionLevel | None = ProtectionLevel.CLUSTER
    encrypt_levels: tuple[ProtectionLevel, ...] = ()
    signature_method: str = dsig_algorithms.RSA_SHA1
    digest_method: str = dsig_algorithms.SHA1
    encryption_algorithm: str = xenc_algorithms.AES128_CBC
    encrypt_before_signing: bool = False


UNPROTECTED = SecurityProfile("unprotected", sign_level=None)

SIGNED_ONLY = SecurityProfile("signed-only")

SIGNED_TRACKS = SecurityProfile(
    "signed-tracks", sign_level=ProtectionLevel.TRACK,
)

SIGNED_AND_ENCRYPTED = SecurityProfile(
    "signed-and-encrypted",
    sign_level=ProtectionLevel.CLUSTER,
    encrypt_levels=(ProtectionLevel.CODE,),
)

STUDIO_GRADE = SecurityProfile(
    "studio-grade",
    sign_level=ProtectionLevel.TRACK,
    encrypt_levels=(ProtectionLevel.CODE, ProtectionLevel.SUBMARKUP),
    signature_method=dsig_algorithms.RSA_SHA256,
    digest_method=dsig_algorithms.SHA256,
    encryption_algorithm=xenc_algorithms.AES256_CBC,
)

ALL_PROFILES = (
    UNPROTECTED, SIGNED_ONLY, SIGNED_TRACKS, SIGNED_AND_ENCRYPTED,
    STUDIO_GRADE,
)


def profile_by_name(name: str) -> SecurityProfile:
    """Look up a preset security profile by name."""
    for profile in ALL_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"no security profile named {name!r}")


def apply_profile_to_disc(image, profile: SecurityProfile, identity, *,
                          content_key=None, key_name: str = "disc-key",
                          rng=None, include_streams: bool = True):
    """Protect a mastered disc image according to *profile*.

    Encryption (if any) is applied per the profile's ordering knob,
    signing per its level; the rewritten cluster is stored back on the
    image.  Returns a dict with the per-stage results.

    Args:
        image: a :class:`repro.disc.DiscImage` (mutated in place).
        profile: the :class:`SecurityProfile` to apply.
        identity: the signing :class:`repro.certs.SigningIdentity`
            (ignored when the profile does not sign).
        content_key: :class:`repro.primitives.keys.SymmetricKey` for
            the encrypting profiles (must match the profile's
            encryption algorithm key size).
        key_name: the player key slot the EncryptedData will name.
        include_streams: also sign the ``.m2ts`` files when signing.
    """
    from repro.core.disc_security import sign_disc_image
    from repro.core.granularity import encrypt_at_level
    from repro.dsig.signer import Signer
    from repro.errors import AuthoringError
    from repro.primitives.random import default_random
    from repro.xmlcore import serialize_bytes
    from repro.xmlenc.encryptor import Encryptor

    results: dict[str, object] = {"profile": profile.name}
    if profile.encrypt_levels and content_key is None:
        raise AuthoringError(
            f"profile {profile.name!r} encrypts but no content key given"
        )

    def encrypt_all() -> None:
        cluster_element = image.cluster_element()
        encryptor = Encryptor(rng=rng or default_random())
        outcomes = []
        for level in profile.encrypt_levels:
            outcomes.append(encrypt_at_level(
                cluster_element, level, encryptor, content_key,
                key_name=key_name,
                algorithm=profile.encryption_algorithm,
            ))
        image.write(image.layout.cluster_path(),
                    serialize_bytes(cluster_element))
        results["encrypted"] = outcomes

    def sign_all() -> None:
        signer = Signer(
            identity.key, identity=identity,
            signature_method=profile.signature_method,
            digest_method=profile.digest_method,
        )
        results["signed"] = sign_disc_image(
            image, signer, level=profile.sign_level,
            include_streams=include_streams,
        )

    # On a disc, encryption always precedes signing: the signature then
    # covers the ciphertext, and the player verifies before decrypting
    # with no Decryption Transform needed.  (The sign-then-encrypt
    # order, which does need the transform, is the download pipeline's
    # job — :class:`repro.core.AuthoringPipeline`.)
    if profile.encrypt_levels:
        encrypt_all()
    if profile.sign_level is not None:
        sign_all()
    return results
