"""The W3C Decryption Transform for XML Signature (paper ref. [21]).

Solves the sign/encrypt ordering problem of the end-to-end scenario
(Fig 9): when a document is signed first and (partially) encrypted
afterwards, a verifier must decrypt *before* digesting — but only the
regions that were encrypted after signing.  Regions that were already
encrypted at signing time are named by ``dcrpt:Except`` entries and
must be left encrypted.

``decrypt#XML`` decrypts XML-typed EncryptedData inside the node-set;
``decrypt#Binary`` decrypts a single EncryptedData into raw octets.
"""

from __future__ import annotations

from repro.errors import SignatureError
from repro.xmlcore import XMLENC_NS
from repro.xmlcore.tree import Element


def _except_ids(except_uris: tuple[str, ...]) -> tuple[str, ...]:
    ids = []
    for uri in except_uris:
        if not uri.startswith("#"):
            raise SignatureError(
                f"dcrpt:Except URI must be same-document, got {uri!r}"
            )
        ids.append(uri[1:])
    return tuple(ids)


def apply_decryption_transform(node: Element, decryptor,
                               except_uris: tuple[str, ...] = (),
                               binary: bool = False):
    """Apply the decryption transform to *node*.

    Args:
        node: the current node-set value (an element inside the
            dereferencer's working tree — mutation is safe).
        decryptor: object exposing ``decrypt_element`` /
            ``decrypt_to_bytes`` / ``decrypt_in_place``
            (:class:`repro.xmlenc.Decryptor`).
        except_uris: ``#id`` URIs of EncryptedData to leave encrypted.
        binary: use ``decrypt#Binary`` semantics.

    Returns:
        The transformed value: raw bytes for binary mode, otherwise the
        (possibly replaced) element.
    """
    ids = _except_ids(except_uris)

    if binary:
        if node.local != "EncryptedData" or node.ns_uri != XMLENC_NS:
            raise SignatureError(
                "decrypt#Binary input must be an EncryptedData element"
            )
        return decryptor.decrypt_to_bytes(node)

    if node.local == "EncryptedData" and node.ns_uri == XMLENC_NS \
            and node.get("Id") not in ids:
        replacements = decryptor.decrypt_element(node)
        elements = [r for r in replacements if isinstance(r, Element)]
        if len(elements) != 1:
            raise SignatureError(
                "decrypt#XML of the apex node must yield one element"
            )
        node = elements[0]

    decryptor.decrypt_in_place(node, except_ids=ids)
    return node
