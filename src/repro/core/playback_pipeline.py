"""The player-side end-to-end security pipeline (Fig 9, right half).

Order of operations on reception:

1. parse the package;
2. **verify** the signature — references carrying the Decryption
   Transform are digested over the *decrypted* regions (minus the
   ``dcrpt:Except`` ones), so sign-then-encrypt packages validate;
3. if the player's policy requires a trusted signer and verification
   fails, the application is **barred** (Fig 3);
4. **decrypt** everything decryptable for execution;
5. evaluate the permission request file against the platform policy —
   trust-gated permissions are only granted to verified applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.certs.store import TrustStore
from repro.core.package import PackageView, parse_package
from repro.disc.manifest import ApplicationManifest
from repro.dsig.verifier import VerificationReport, Verifier
from repro.errors import (
    ApplicationRejectedError, DiscFormatError, NetworkError,
    ResourceLimitExceeded, XKMSError,
)
from repro.perf import metrics
from repro.permissions.request_file import (
    GrantSet, PlatformPermissionPolicy,
)
from repro.primitives.keys import RSAPrivateKey, SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.resilience.degradation import DegradationEvent, DegradationLog
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.xmlcore import DISC_NS
from repro.xmlenc.decryptor import Decryptor


@dataclass
class VerifiedApplication:
    """What the engine gets to execute."""

    manifest: ApplicationManifest
    grants: GrantSet
    trusted: bool
    report: VerificationReport | None = None
    signer_subject: str | None = None
    degradations: list[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when trust was downgraded by infrastructure failure."""
        return bool(self.degradations)


@dataclass
class PlaybackPipeline:
    """Opens, verifies and decrypts application packages.

    Args:
        trust_store: the player's root certificates.
        device_key: the player's RSA private key (``rsa-1_5`` CEK
            transport).
        key_slots: named symmetric keys (shared KEKs, disc keys).
        permission_policy: platform stance on permission requests.
        require_signature: Fig 3 policy — bar applications that do not
            verify against a trusted root.
        key_locator: optional ``key_name -> public key`` hook (an
            :meth:`repro.xkms.XKMSClient.locate`) consulted for
            ``ds:KeyName``-only signatures.  When the hook fails with a
            network/XKMS error the pipeline *degrades* instead of
            crashing: verification falls back to the local trust store
            and — if the key still cannot be established — the
            application runs with ``trusted=False`` and the reason
            recorded, rather than aborting playback.
        limits: resource quotas for untrusted package input; a fresh
            :class:`ResourceGuard` is minted per ``open_package`` call
            and threaded through parse → verify → decrypt, so a
            resource attack is rejected (and recorded in the
            degradation log) instead of exhausting the device.
        now: simulation time for certificate checks.
    """

    trust_store: TrustStore
    device_key: RSAPrivateKey | None = None
    key_slots: dict[str, SymmetricKey] = field(default_factory=dict)
    permission_policy: PlatformPermissionPolicy = field(
        default_factory=PlatformPermissionPolicy
    )
    require_signature: bool = True
    key_locator: Callable | None = None
    degradation: DegradationLog = field(default_factory=DegradationLog)
    provider: CryptoProvider | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)
    now: float = 0.0

    def __post_init__(self):
        self.provider = self.provider or get_provider()

    def _guarded_locator(self, events: list[DegradationEvent]):
        """Wrap ``key_locator`` so infrastructure failures degrade.

        A dead trust service answers "key not located" (``None``) and
        the failure is recorded; a substituted or malformed answer
        (``XKMSError`` from a live transport) still records but also
        yields no key — the signature then fails closed to untrusted.
        """
        if self.key_locator is None:
            return None

        def locate(key_name: str):
            try:
                return self.key_locator(key_name)
            except (NetworkError, XKMSError) as exc:
                events.append(self.degradation.record(
                    "xkms", key_name, exc,
                ))
                return None
        return locate

    def _decryptor(self, guard: ResourceGuard | None = None) -> Decryptor:
        decryptor = Decryptor(provider=self.provider, guard=guard)
        for name, key in self.key_slots.items():
            decryptor.add_key(name, key)
        if self.device_key is not None:
            decryptor.add_rsa_key(self.device_key)
        return decryptor

    def open_package(self, data: bytes | str,
                     *, execute_excepted: bool = True
                     ) -> VerifiedApplication:
        """Verify and unlock a package; raises if the player must bar it.

        Args:
            data: package bytes.
            execute_excepted: also decrypt ``dcrpt:Except`` regions for
                execution after verification succeeded (the signature
                covered their ciphertext).

        Raises:
            ApplicationRejectedError: unsigned/invalid application under
                a require-signature policy (Fig 3: "the application is
                barred from being executed").
        """
        with metrics.timer("pipeline.open_package"):
            metrics.counter("pipeline.packages_opened").increment()
            return self._open_package(
                data, execute_excepted=execute_excepted,
            )

    def _open_package(self, data: bytes | str,
                      *, execute_excepted: bool = True
                      ) -> VerifiedApplication:
        from repro.errors import XMLError
        guard = ResourceGuard(self.limits)
        try:
            view = parse_package(data, guard=guard)
        except ResourceLimitExceeded as exc:
            # A structural resource attack is not a transient failure:
            # record the degradation and bar the package.
            self.degradation.record("package", "open", exc)
            raise ApplicationRejectedError(
                f"package exceeds resource limits (hostile or "
                f"corrupted): {exc}"
            ) from None
        except XMLError as exc:
            raise ApplicationRejectedError(
                f"package is not well-formed XML (corrupted or "
                f"tampered): {exc}"
            ) from None
        decryptor = self._decryptor(guard)
        report: VerificationReport | None = None
        signer_subject: str | None = None
        trusted = False
        infra_events: list[DegradationEvent] = []

        if view.signature_element is not None:
            verifier = Verifier(
                trust_store=self.trust_store, require_trusted_key=True,
                key_locator=self._guarded_locator(infra_events),
                provider=self.provider, now=self.now, guard=guard,
            )
            report = verifier.verify(view.signature_element,
                                     decryptor=decryptor)
            trusted = report.valid
            signer_subject = report.signer_subject
            if self.require_signature and not trusted:
                # Degrade, don't crash, when the *infrastructure* — not
                # the signature — failed: the trust service was
                # unreachable and nothing proved tampering (no reference
                # digest mismatched).  The application runs untrusted
                # with the reason recorded; trust-gated permissions stay
                # denied.  Any positive evidence of tampering still bars.
                evidence_of_tampering = any(
                    not r.valid for r in report.references
                )
                if not (infra_events and not evidence_of_tampering):
                    if guard.trips:
                        # The signature failed because a resource quota
                        # fired mid-verification (e.g. a decrypt bomb
                        # behind a Decryption Transform): put the real
                        # reason on the log before barring.
                        self.degradation.record("package", "verify",
                                                guard.trips[-1])
                    raise ApplicationRejectedError(
                        "signature verification failed; application "
                        "barred: " + "; ".join(
                            [report.error] if report.error else []
                            + [r.error for r in report.references
                               if not r.valid]
                        )
                    )
        elif self.require_signature:
            raise ApplicationRejectedError(
                "unsigned application barred by player policy"
            )

        # Unlock for execution.  A decrypt bomb (plaintext quota or
        # expansion-ratio trip) bars the package like any other
        # resource attack — with the decision on the degradation log.
        try:
            decryptor.decrypt_in_place(view.root)
        except ResourceLimitExceeded as exc:
            self.degradation.record("package", "decrypt", exc)
            raise ApplicationRejectedError(
                f"package decryption exceeds resource limits "
                f"(decrypt bomb?): {exc}"
            ) from None
        manifest_element = view.root.first_child("manifest", DISC_NS) \
            or view.root.find("manifest", DISC_NS) \
            or view.root.find("manifest")
        if manifest_element is None:
            raise DiscFormatError(
                "package contains no manifest after decryption"
            )
        manifest = ApplicationManifest.from_element(manifest_element)

        grants = self._grants(view, trusted)
        return VerifiedApplication(
            manifest=manifest, grants=grants, trusted=trusted,
            report=report, signer_subject=signer_subject,
            degradations=infra_events,
        )

    def _grants(self, view: PackageView, trusted: bool) -> GrantSet:
        if view.permission_file is None:
            from repro.permissions.request_file import (
                PermissionRequestFile,
            )
            empty = PermissionRequestFile(app_id="unknown", org_id="")
            return self.permission_policy.decide(empty, trusted=trusted)
        return self.permission_policy.decide(view.permission_file,
                                             trusted=trusted)
