"""XML Encryption (XMLEnc Core) — encrypt/decrypt markup and data."""

from repro.xmlenc.algorithms import (
    AES128_CBC, AES192_CBC, AES256_CBC, BLOCK_ALGORITHMS, KW_AES128,
    TRIPLEDES_CBC,
    KW_AES192, KW_AES256, KEY_TRANSPORT_ALGORITHMS, KEY_WRAP_ALGORITHMS,
    RSA_1_5, TYPE_CONTENT, TYPE_ELEMENT, block_key_size,
    decrypt_block_data, encrypt_block_data, unwrap_cek, wrap_cek,
)
from repro.xmlenc.decryptor import Decryptor
from repro.xmlenc.encryptor import CONTENT_WRAPPER, Encryptor
from repro.xmlenc.structures import EncryptedData, EncryptedKey

__all__ = [
    "Encryptor", "Decryptor", "EncryptedData", "EncryptedKey",
    "AES128_CBC", "AES192_CBC", "AES256_CBC", "TRIPLEDES_CBC",
    "KW_AES128", "KW_AES192", "KW_AES256", "RSA_1_5",
    "TYPE_ELEMENT", "TYPE_CONTENT",
    "BLOCK_ALGORITHMS", "KEY_WRAP_ALGORITHMS", "KEY_TRANSPORT_ALGORITHMS",
    "block_key_size", "encrypt_block_data", "decrypt_block_data",
    "wrap_cek", "unwrap_cek", "CONTENT_WRAPPER",
]
