"""The Decryptor component (Fig 11): key resolution and in-place decryption.

The player "decrypts the application and resources on execution" (§4);
this class resolves the needed keys (named key slots, unwrap of
transported CEKs, RSA key transport), decrypts EncryptedData, and —
for XML targets — splices the recovered markup back into the tree.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DecryptionError, EncryptedDataFormatError
from repro.perf import metrics
from repro.primitives.keys import RSAPrivateKey, SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore import XMLENC_NS, parse_element
from repro.xmlcore.tree import Element, Node
from repro.xmlenc import algorithms
from repro.xmlenc.encryptor import CONTENT_WRAPPER
from repro.xmlenc.structures import EncryptedData

Resolver = Callable[[str], bytes]


class Decryptor:
    """Decrypts EncryptedData structures.

    Args:
        keys: named symmetric keys (``ds:KeyName`` → key) — the player's
            key slots.
        rsa_keys: RSA private keys to try for ``rsa-1_5`` transported
            CEKs.
        resolver: URI → bytes for CipherReference (detached ciphertext).
        provider: crypto provider override.
        guard: optional
            :class:`~repro.resilience.limits.ResourceGuard`; every
            decrypted plaintext is charged against its cumulative
            decrypt-output quota and expansion-ratio cap, and the
            recovered XML is re-parsed under the same guard — so a
            decrypt bomb (tiny package, huge or deeply nested
            plaintext) trips a typed limit instead of exhausting the
            device.
    """

    def __init__(self, keys: dict[str, SymmetricKey | bytes] | None = None,
                 rsa_keys: list[RSAPrivateKey] | None = None,
                 resolver: Resolver | None = None,
                 provider: CryptoProvider | None = None,
                 guard=None):
        self._keys: dict[str, SymmetricKey] = {}
        for name, key in (keys or {}).items():
            self.add_key(name, key)
        self._rsa_keys = list(rsa_keys or [])
        self._resolver = resolver
        # Resolved lazily so a provider switch (REPRO_PROVIDER /
        # set_default_provider) takes effect on existing decryptors.
        self._provider = provider
        self.guard = guard

    @property
    def provider(self) -> CryptoProvider:
        """The pinned provider, or the current process default."""
        return self._provider or get_provider()

    @provider.setter
    def provider(self, value: CryptoProvider | None) -> None:
        self._provider = value

    def add_key(self, name: str, key: SymmetricKey | bytes) -> None:
        """Register a named key slot."""
        if isinstance(key, bytes):
            key = SymmetricKey(key, "aes")
        self._keys[name] = key

    def add_rsa_key(self, key: RSAPrivateKey) -> None:
        self._rsa_keys.append(key)

    # -- key resolution --------------------------------------------------------------

    def resolve_key(self, data: EncryptedData,
                    explicit_key=None) -> SymmetricKey:
        """Find the content-encryption key for *data*."""
        if explicit_key is not None:
            if isinstance(explicit_key, bytes):
                return SymmetricKey(explicit_key, "aes")
            return explicit_key
        if data.encrypted_key is not None:
            return self._unwrap(data)
        if data.key_name:
            try:
                return self._keys[data.key_name]
            except KeyError:
                raise DecryptionError(
                    f"no key slot named {data.key_name!r}"
                ) from None
        raise DecryptionError(
            "EncryptedData names no key and none was supplied"
        )

    def _unwrap(self, data: EncryptedData) -> SymmetricKey:
        encrypted_key = data.encrypted_key
        assert encrypted_key is not None
        algorithm = encrypted_key.algorithm
        if algorithm == algorithms.RSA_1_5:
            last_error: Exception | None = None
            for key in self._rsa_keys:
                try:
                    cek = algorithms.unwrap_cek(
                        algorithm, key, encrypted_key.cipher_value,
                        self.provider,
                    )
                    return SymmetricKey(cek, "aes")
                except DecryptionError as exc:
                    last_error = exc
            raise DecryptionError(
                f"no RSA key decrypts the transported CEK: {last_error}"
            )
        if encrypted_key.key_name:
            kek = self._keys.get(encrypted_key.key_name)
            if kek is None:
                raise DecryptionError(
                    f"no KEK slot named {encrypted_key.key_name!r}"
                )
            cek = algorithms.unwrap_cek(
                algorithm, kek, encrypted_key.cipher_value, self.provider,
            )
            return SymmetricKey(cek, "aes")
        raise DecryptionError("EncryptedKey names no KEK")

    # -- decryption -------------------------------------------------------------------

    def _ciphertext(self, data: EncryptedData) -> bytes:
        if data.cipher_value is not None:
            return data.cipher_value
        assert data.cipher_reference is not None
        if self._resolver is None:
            raise DecryptionError(
                f"CipherReference {data.cipher_reference!r} but no "
                "resolver configured"
            )
        try:
            return self._resolver(data.cipher_reference)
        except Exception as exc:
            raise DecryptionError(
                f"cannot fetch ciphertext {data.cipher_reference!r}: {exc}"
            ) from exc

    def decrypt_to_bytes(self, data: EncryptedData | Element,
                         key=None) -> bytes:
        """Decrypt and return the raw plaintext octets."""
        if isinstance(data, Element):
            data = EncryptedData.from_element(data)
        cek = self.resolve_key(data, key)
        ciphertext = self._ciphertext(data)
        if self.guard is not None:
            self.guard.check_deadline()
        plaintext = algorithms.decrypt_block_data(
            data.algorithm, cek, ciphertext, self.provider,
        )
        if self.guard is not None:
            self.guard.charge_decrypt_output(len(plaintext), len(ciphertext))
        return plaintext

    def decrypt_nodes(self, node: Element, key=None) -> list[Node]:
        """Decrypt an EncryptedData *element* back into XML nodes.

        For ``Type=Element`` the single recovered element is returned;
        for ``Type=Content`` the recovered child nodes.  Raises for
        non-XML types.
        """
        from repro.errors import XMLError
        data = EncryptedData.from_element(node)
        plaintext = self.decrypt_to_bytes(data, key)
        # XMLEnc padding only inspects one octet, so a wrong key can slip
        # through to the parser; surface garbage plaintext as a
        # decryption failure rather than a syntax error.
        if data.data_type == algorithms.TYPE_ELEMENT:
            try:
                return [parse_element(plaintext, guard=self.guard)]
            except XMLError as exc:
                raise DecryptionError(
                    f"decrypted plaintext is not well-formed XML "
                    f"(wrong key or tampered ciphertext): {exc}"
                ) from None
        if data.data_type == algorithms.TYPE_CONTENT:
            try:
                wrapper = parse_element(plaintext, guard=self.guard)
            except XMLError as exc:
                raise DecryptionError(
                    f"decrypted plaintext is not well-formed XML "
                    f"(wrong key or tampered ciphertext): {exc}"
                ) from None
            if wrapper.local != CONTENT_WRAPPER:
                raise EncryptedDataFormatError(
                    "content ciphertext lacks the content wrapper"
                )
            return [child.copy() for child in wrapper.children]
        raise DecryptionError(
            f"EncryptedData type {data.data_type!r} is not XML"
        )

    def decrypt_element(self, node: Element, key=None) -> list[Node]:
        """Decrypt *node* and splice the plaintext nodes into its place.

        Returns the replacement nodes.  This is the transform the
        verifier's decryption-transform hook uses.
        """
        replacements = self.decrypt_nodes(node, key)
        parent = node.parent
        if isinstance(parent, Element):
            index = parent.index(node)
            parent.remove(node)
            for offset, replacement in enumerate(replacements):
                parent.insert(index + offset, replacement)
        return replacements

    def decrypt_in_place(self, root: Element, key=None, *,
                         except_ids: tuple[str, ...] = ()) -> int:
        """Decrypt every XML-typed EncryptedData under *root*.

        Repeats until no decryptable structures remain (handles nested
        super-encryption).  EncryptedData whose Id appears in
        *except_ids* is left alone.  Returns the number of structures
        decrypted.
        """
        with metrics.timer("xmlenc.decrypt_in_place"):
            count = 0
            while True:
                target = None
                for candidate in root.iter("EncryptedData", XMLENC_NS):
                    if candidate is root:
                        continue
                    if candidate.get("Id") in except_ids:
                        continue
                    if candidate.get("Type") in (
                        algorithms.TYPE_ELEMENT, algorithms.TYPE_CONTENT,
                    ):
                        target = candidate
                        break
                if target is None:
                    metrics.counter(
                        "xmlenc.decrypted_elements"
                    ).increment(count)
                    return count
                self.decrypt_element(target, key)
                count += 1
