"""The Encryptor component (Fig 11): element, content and data encryption.

Covers both scenarios of the paper's §6:

* **Track target** (Fig 7): arbitrary/non-XML data → EncryptedData with
  embedded CipherValue or a CipherReference to detached ciphertext;
* **Manifest target** (Fig 8): an XML element (or only its content) is
  replaced *in place* by the EncryptedData markup.

Keys can be named (looked up by the player from its key slots) or
transported per-message: a fresh content-encryption key (CEK) is
generated and wrapped for the recipient with ``kw-aes*`` or ``rsa-1_5``.
"""

from __future__ import annotations

from repro.perf import metrics
from repro.primitives.keys import RSAPublicKey, SymmetricKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random
from repro.xmlcore import canonicalize, serialize
from repro.xmlcore.tree import Element
from repro.xmlenc import algorithms
from repro.xmlenc.structures import EncryptedData, EncryptedKey

# Internal wrapper element for Type=Content ciphertext: carries the
# parent's namespace context so the decrypted children re-parse
# correctly.  (Documented substitution for raw-fragment serialization.)
CONTENT_WRAPPER = "xenc-content-wrapper"


class Encryptor:
    """Creates EncryptedData (and EncryptedKey) structures.

    Args:
        provider: crypto provider override.
        rng: randomness source for IVs and generated CEKs.
    """

    def __init__(self, provider: CryptoProvider | None = None,
                 rng: RandomSource | None = None):
        # Resolved lazily so a provider switch (REPRO_PROVIDER /
        # set_default_provider) takes effect on existing encryptors.
        self._provider = provider
        self.rng = rng or default_random()

    @property
    def provider(self) -> CryptoProvider:
        """The pinned provider, or the current process default."""
        return self._provider or get_provider()

    @provider.setter
    def provider(self, value: CryptoProvider | None) -> None:
        self._provider = value

    # -- key material -----------------------------------------------------------

    def generate_cek(self, algorithm: str = algorithms.AES128_CBC
                     ) -> SymmetricKey:
        """Generate a fresh content-encryption key for *algorithm*."""
        return SymmetricKey(
            self.rng.read(algorithms.block_key_size(algorithm)), "aes",
        )

    def make_encrypted_key(self, cek: SymmetricKey, kek, *,
                           wrap_algorithm: str = algorithms.KW_AES128,
                           kek_name: str | None = None,
                           recipient: str | None = None) -> EncryptedKey:
        """Wrap *cek* under *kek* for transport inside KeyInfo."""
        wrapped = algorithms.wrap_cek(
            wrap_algorithm, kek, cek.data, self.provider, self.rng,
        )
        return EncryptedKey(
            algorithm=wrap_algorithm, cipher_value=wrapped,
            key_name=kek_name, recipient=recipient,
        )

    # -- arbitrary data (track targets, Fig 7) ------------------------------------

    def encrypt_bytes(self, plaintext: bytes, key, *,
                      algorithm: str = algorithms.AES128_CBC,
                      key_name: str | None = None,
                      encrypted_key: EncryptedKey | None = None,
                      data_id: str | None = None,
                      mime_type: str | None = None,
                      detached_uri: str | None = None,
                      ) -> tuple[EncryptedData, bytes | None]:
        """Encrypt raw bytes.

        With *detached_uri* the ciphertext is returned separately (to be
        stored at that URI) and the EncryptedData carries a
        CipherReference; otherwise the ciphertext is embedded.

        Returns:
            ``(encrypted_data, detached_ciphertext_or_None)``.
        """
        ciphertext = algorithms.encrypt_block_data(
            algorithm, key, plaintext, self.provider, self.rng,
        )
        if detached_uri is not None:
            data = EncryptedData(
                algorithm=algorithm, cipher_reference=detached_uri,
                key_name=key_name, encrypted_key=encrypted_key,
                data_id=data_id, mime_type=mime_type,
            )
            return data, ciphertext
        data = EncryptedData(
            algorithm=algorithm, cipher_value=ciphertext,
            key_name=key_name, encrypted_key=encrypted_key,
            data_id=data_id, mime_type=mime_type,
        )
        return data, None

    # -- XML targets (manifest targets, Fig 8) --------------------------------------

    def encrypt_element(self, target: Element, key, *,
                        algorithm: str = algorithms.AES128_CBC,
                        key_name: str | None = None,
                        encrypted_key: EncryptedKey | None = None,
                        data_id: str | None = None,
                        replace: bool = True) -> Element:
        """Encrypt *target* (Type=Element).

        The element's canonical octets are encrypted; when *replace* is
        true and the element has a parent, the EncryptedData markup is
        spliced into its place (the embedded scenario of Fig 8).

        Returns the EncryptedData element.
        """
        with metrics.timer("xmlenc.encrypt_element"):
            metrics.counter("xmlenc.encrypted_elements").increment()
            plaintext = canonicalize(target.detached_copy())
            data, _ = self.encrypt_bytes(
                plaintext, key, algorithm=algorithm, key_name=key_name,
                encrypted_key=encrypted_key, data_id=data_id,
            )
            data.data_type = algorithms.TYPE_ELEMENT
            node = data.to_element()
            if replace and isinstance(target.parent, Element):
                target.parent.replace(target, node)
            return node

    def encrypt_content(self, target: Element, key, *,
                        algorithm: str = algorithms.AES128_CBC,
                        key_name: str | None = None,
                        encrypted_key: EncryptedKey | None = None,
                        data_id: str | None = None) -> Element:
        """Encrypt *target*'s children (Type=Content), in place.

        The element itself stays visible; its content is replaced by
        the EncryptedData markup.  This is the partial-encryption mode
        the paper highlights (e.g. keeping the application visible but
        hiding the high scores).
        """
        wrapper = Element(CONTENT_WRAPPER)
        for prefix, uri in target.in_scope_namespaces().items():
            if prefix != "xml":
                wrapper.declare_namespace(prefix, uri)
        for child in list(target.children):
            wrapper.append(child.copy())
        plaintext = serialize(wrapper).encode("utf-8")
        data, _ = self.encrypt_bytes(
            plaintext, key, algorithm=algorithm, key_name=key_name,
            encrypted_key=encrypted_key, data_id=data_id,
        )
        data.data_type = algorithms.TYPE_CONTENT
        node = data.to_element()
        for child in list(target.children):
            target.remove(child)
        target.append(node)
        return node

    def session_encrypt_element(self, target: Element, kek, *,
                                algorithm: str = algorithms.AES128_CBC,
                                wrap_algorithm: str = algorithms.KW_AES128,
                                kek_name: str | None = None,
                                recipient: str | None = None,
                                data_id: str | None = None) -> Element:
        """Encrypt *target* under a fresh CEK wrapped for *kek*.

        Convenience wrapper for the common transport pattern: generate
        a CEK, wrap it (AES key wrap for a shared secret,
        ``rsa-1_5`` when *kek* is an RSA public key), embed the
        EncryptedKey in the EncryptedData's KeyInfo.
        """
        if isinstance(kek, RSAPublicKey):
            wrap_algorithm = algorithms.RSA_1_5
        cek = self.generate_cek(algorithm)
        encrypted_key = self.make_encrypted_key(
            cek, kek, wrap_algorithm=wrap_algorithm, kek_name=kek_name,
            recipient=recipient,
        )
        return self.encrypt_element(
            target, cek, algorithm=algorithm, encrypted_key=encrypted_key,
            data_id=data_id,
        )
