"""Algorithm URI registry for XML Encryption.

Block encryption (AES-CBC family with XMLEnc §5.2 padding and the IV
prepended to the ciphertext), key wrap (RFC 3394 via ``kw-aes*``) and
key transport (``rsa-1_5``), all routed through the crypto provider.
"""

from __future__ import annotations

from repro.errors import DecryptionError, EncryptionError, UnknownAlgorithmError
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey, SymmetricKey
from repro.primitives.padding import xmlenc_pad, xmlenc_unpad
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random

# Block encryption.
AES128_CBC = "http://www.w3.org/2001/04/xmlenc#aes128-cbc"
AES192_CBC = "http://www.w3.org/2001/04/xmlenc#aes192-cbc"
AES256_CBC = "http://www.w3.org/2001/04/xmlenc#aes256-cbc"
TRIPLEDES_CBC = "http://www.w3.org/2001/04/xmlenc#tripledes-cbc"

# Key wrap.
KW_AES128 = "http://www.w3.org/2001/04/xmlenc#kw-aes128"
KW_AES192 = "http://www.w3.org/2001/04/xmlenc#kw-aes192"
KW_AES256 = "http://www.w3.org/2001/04/xmlenc#kw-aes256"

# Key transport.
RSA_1_5 = "http://www.w3.org/2001/04/xmlenc#rsa-1_5"

# EncryptedData Type URIs.
TYPE_ELEMENT = "http://www.w3.org/2001/04/xmlenc#Element"
TYPE_CONTENT = "http://www.w3.org/2001/04/xmlenc#Content"

_BLOCK_KEY_SIZES = {
    AES128_CBC: 16, AES192_CBC: 24, AES256_CBC: 32, TRIPLEDES_CBC: 24,
}
# Cipher block size (== IV size) per algorithm.
_BLOCK_SIZES = {
    AES128_CBC: 16, AES192_CBC: 16, AES256_CBC: 16, TRIPLEDES_CBC: 8,
}
_WRAP_KEY_SIZES = {KW_AES128: 16, KW_AES192: 24, KW_AES256: 32}

BLOCK_ALGORITHMS = tuple(_BLOCK_KEY_SIZES)
KEY_WRAP_ALGORITHMS = tuple(_WRAP_KEY_SIZES)
KEY_TRANSPORT_ALGORITHMS = (RSA_1_5,)


def block_key_size(algorithm: str) -> int:
    """Required key size in bytes for a block-encryption URI."""
    try:
        return _BLOCK_KEY_SIZES[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown block encryption algorithm {algorithm!r}"
        ) from None


def wrap_key_size(algorithm: str) -> int:
    """Required KEK size in bytes for a key-wrap URI."""
    try:
        return _WRAP_KEY_SIZES[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown key wrap algorithm {algorithm!r}"
        ) from None


def _key_bytes(key, expected: int, algorithm: str) -> bytes:
    data = key.data if isinstance(key, SymmetricKey) else key
    if not isinstance(data, bytes):
        raise EncryptionError(f"{algorithm} needs symmetric key bytes")
    if len(data) != expected:
        raise EncryptionError(
            f"{algorithm} needs a {expected}-byte key, got {len(data)}"
        )
    return data


def block_size(algorithm: str) -> int:
    """Cipher block size (== IV size) for a block-encryption URI."""
    try:
        return _BLOCK_SIZES[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown block encryption algorithm {algorithm!r}"
        ) from None


def encrypt_block_data(algorithm: str, key, plaintext: bytes,
                       provider: CryptoProvider | None = None,
                       rng: RandomSource | None = None) -> bytes:
    """XMLEnc block encryption: returns ``IV || CBC(pad(plaintext))``."""
    provider = provider or get_provider()
    rng = rng or default_random()
    data = _key_bytes(key, block_key_size(algorithm), algorithm)
    bs = block_size(algorithm)
    iv = rng.read(bs)
    padded = xmlenc_pad(plaintext, bs)
    if algorithm == TRIPLEDES_CBC:
        return iv + provider.tripledes_cbc_encrypt(data, iv, padded)
    return iv + provider.aes_cbc_encrypt(data, iv, padded)


def decrypt_block_data(algorithm: str, key, ciphertext: bytes,
                       provider: CryptoProvider | None = None) -> bytes:
    """Inverse of :func:`encrypt_block_data`."""
    provider = provider or get_provider()
    data = _key_bytes(key, block_key_size(algorithm), algorithm)
    bs = block_size(algorithm)
    if len(ciphertext) < 2 * bs or len(ciphertext) % bs:
        raise DecryptionError("ciphertext too short or ragged")
    iv, body = ciphertext[:bs], ciphertext[bs:]
    if algorithm == TRIPLEDES_CBC:
        padded = provider.tripledes_cbc_decrypt(data, iv, body)
    else:
        padded = provider.aes_cbc_decrypt(data, iv, body)
    return xmlenc_unpad(padded, bs)


def wrap_cek(algorithm: str, kek, cek: bytes,
             provider: CryptoProvider | None = None,
             rng: RandomSource | None = None) -> bytes:
    """Wrap a content-encryption key under *kek* (symmetric or RSA)."""
    provider = provider or get_provider()
    if algorithm == RSA_1_5:
        if isinstance(kek, RSAPrivateKey):
            kek = kek.public_key()
        if not isinstance(kek, RSAPublicKey):
            raise EncryptionError("rsa-1_5 key transport needs an RSA key")
        return provider.rsa_encrypt(kek, cek, rng or default_random())
    data = _key_bytes(kek, wrap_key_size(algorithm), algorithm)
    return provider.wrap_key(data, cek)


def unwrap_cek(algorithm: str, kek, wrapped: bytes,
               provider: CryptoProvider | None = None) -> bytes:
    """Inverse of :func:`wrap_cek`."""
    provider = provider or get_provider()
    if algorithm == RSA_1_5:
        if not isinstance(kek, RSAPrivateKey):
            raise DecryptionError(
                "rsa-1_5 key transport needs the RSA private key"
            )
        return provider.rsa_decrypt(kek, wrapped)
    data = _key_bytes(kek, wrap_key_size(algorithm), algorithm)
    return provider.unwrap_key(data, wrapped)
