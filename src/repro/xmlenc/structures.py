"""EncryptedData / EncryptedKey structures and their XML mapping.

This is the "Encryption Data" markup of the paper's Figs 7 and 8: the
result of encrypting a track or manifest target, either embedded in
the interactive cluster or "jettisoned as a separate markup" (a
CipherReference to external ciphertext).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncryptedDataFormatError
from repro.primitives.encoding import b64decode, b64encode
from repro.xmlcore import DSIG_NS, XMLENC_NS, element
from repro.xmlcore.tree import Element


@dataclass
class EncryptedKey:
    """An encrypted content-encryption key.

    Attributes:
        algorithm: key-wrap or key-transport algorithm URI.
        cipher_value: the wrapped key bytes.
        key_name: name of the key-encryption key (ds:KeyName).
        recipient: optional Recipient hint.
    """

    algorithm: str
    cipher_value: bytes
    key_name: str | None = None
    recipient: str | None = None

    def to_element(self) -> Element:
        node = element("xenc:EncryptedKey", XMLENC_NS,
                       nsmap={"xenc": XMLENC_NS})
        if self.recipient:
            node.set("Recipient", self.recipient)
        node.append(element("xenc:EncryptionMethod", XMLENC_NS,
                            attrs={"Algorithm": self.algorithm}))
        if self.key_name:
            key_info = element("ds:KeyInfo", DSIG_NS, nsmap={"ds": DSIG_NS})
            key_info.append(
                element("ds:KeyName", DSIG_NS, text=self.key_name)
            )
            node.append(key_info)
        cipher_data = element("xenc:CipherData", XMLENC_NS)
        cipher_data.append(element(
            "xenc:CipherValue", XMLENC_NS,
            text=b64encode(self.cipher_value),
        ))
        node.append(cipher_data)
        return node

    @classmethod
    def from_element(cls, node: Element) -> "EncryptedKey":
        method = node.first_child("EncryptionMethod", XMLENC_NS)
        if method is None or not method.get("Algorithm"):
            raise EncryptedDataFormatError(
                "EncryptedKey lacks an EncryptionMethod"
            )
        cipher_data = node.first_child("CipherData", XMLENC_NS)
        value = cipher_data.first_child("CipherValue", XMLENC_NS) \
            if cipher_data is not None else None
        if value is None:
            raise EncryptedDataFormatError("EncryptedKey lacks CipherValue")
        key_name = None
        key_info = node.first_child("KeyInfo", DSIG_NS)
        if key_info is not None:
            name_el = key_info.first_child("KeyName", DSIG_NS)
            if name_el is not None:
                key_name = name_el.text_content().strip()
        return cls(
            algorithm=method.get("Algorithm") or "",
            cipher_value=b64decode(value.text_content()),
            key_name=key_name,
            recipient=node.get("Recipient"),
        )


@dataclass
class EncryptedData:
    """An xenc:EncryptedData structure.

    Exactly one of ``cipher_value`` / ``cipher_reference`` is set:
    embedded ciphertext, or a URI to externally stored ciphertext
    (Fig 7's "jettisoned as a separate markup").
    """

    algorithm: str
    cipher_value: bytes | None = None
    cipher_reference: str | None = None
    data_type: str | None = None
    data_id: str | None = None
    key_name: str | None = None
    encrypted_key: EncryptedKey | None = None
    mime_type: str | None = None

    def __post_init__(self):
        if (self.cipher_value is None) == (self.cipher_reference is None):
            raise EncryptedDataFormatError(
                "EncryptedData needs exactly one of CipherValue / "
                "CipherReference"
            )

    def to_element(self) -> Element:
        node = element("xenc:EncryptedData", XMLENC_NS,
                       nsmap={"xenc": XMLENC_NS})
        if self.data_id:
            node.set("Id", self.data_id)
        if self.data_type:
            node.set("Type", self.data_type)
        if self.mime_type:
            node.set("MimeType", self.mime_type)
        node.append(element("xenc:EncryptionMethod", XMLENC_NS,
                            attrs={"Algorithm": self.algorithm}))
        if self.key_name or self.encrypted_key is not None:
            key_info = element("ds:KeyInfo", DSIG_NS, nsmap={"ds": DSIG_NS})
            if self.key_name:
                key_info.append(
                    element("ds:KeyName", DSIG_NS, text=self.key_name)
                )
            if self.encrypted_key is not None:
                key_info.append(self.encrypted_key.to_element())
            node.append(key_info)
        cipher_data = element("xenc:CipherData", XMLENC_NS)
        if self.cipher_value is not None:
            cipher_data.append(element(
                "xenc:CipherValue", XMLENC_NS,
                text=b64encode(self.cipher_value),
            ))
        else:
            cipher_data.append(element(
                "xenc:CipherReference", XMLENC_NS,
                attrs={"URI": self.cipher_reference or ""},
            ))
        node.append(cipher_data)
        return node

    @classmethod
    def from_element(cls, node: Element) -> "EncryptedData":
        if node.local != "EncryptedData" or node.ns_uri != XMLENC_NS:
            raise EncryptedDataFormatError(
                f"expected xenc:EncryptedData, got {node.qname}"
            )
        method = node.first_child("EncryptionMethod", XMLENC_NS)
        if method is None or not method.get("Algorithm"):
            raise EncryptedDataFormatError(
                "EncryptedData lacks an EncryptionMethod"
            )
        cipher_data = node.first_child("CipherData", XMLENC_NS)
        if cipher_data is None:
            raise EncryptedDataFormatError("EncryptedData lacks CipherData")
        value_el = cipher_data.first_child("CipherValue", XMLENC_NS)
        reference_el = cipher_data.first_child("CipherReference", XMLENC_NS)
        key_name = None
        encrypted_key = None
        key_info = node.first_child("KeyInfo", DSIG_NS)
        if key_info is not None:
            name_el = key_info.first_child("KeyName", DSIG_NS)
            if name_el is not None:
                key_name = name_el.text_content().strip()
            ek_el = key_info.first_child("EncryptedKey", XMLENC_NS)
            if ek_el is not None:
                encrypted_key = EncryptedKey.from_element(ek_el)
        return cls(
            algorithm=method.get("Algorithm") or "",
            cipher_value=(
                b64decode(value_el.text_content())
                if value_el is not None else None
            ),
            cipher_reference=(
                reference_el.get("URI") if reference_el is not None else None
            ),
            data_type=node.get("Type"),
            data_id=node.get("Id"),
            key_name=key_name,
            encrypted_key=encrypted_key,
            mime_type=node.get("MimeType"),
        )
