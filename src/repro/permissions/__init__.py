"""MHP-style permission request files and platform grant policy."""

from repro.permissions.request_file import (
    ALL_PERMISSIONS, Grant, GrantSet, PermissionEntry,
    PermissionRequestFile, PlatformPermissionPolicy, PERM_LOCAL_STORAGE,
    PERM_NETWORK, PERM_OVERLAY_GRAPHICS, PERM_READ_USER_SETTINGS,
    PERM_RETURN_CHANNEL, PERM_TUNING,
)

__all__ = [
    "PermissionRequestFile", "PermissionEntry", "Grant", "GrantSet",
    "PlatformPermissionPolicy", "ALL_PERMISSIONS",
    "PERM_LOCAL_STORAGE", "PERM_RETURN_CHANNEL", "PERM_NETWORK",
    "PERM_TUNING", "PERM_OVERLAY_GRAPHICS", "PERM_READ_USER_SETTINGS",
]
