"""MHP-style XML permission request files (paper §4, §7).

"The content provider can add the permission request file along with
the markup as an attachment.  This will be interpreted by the platform
and will provide access rights to the application (e.g. rights to use
return channel or rights to dial to a particular server)."

A request file asks for named permissions; the platform policy decides
which are granted.  The grant set is what the player engine consults
when a script touches a gated resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PermissionDeniedError, PolicyError
from repro.xmlcore import MHP_PERMISSION_NS, element, parse_element, serialize
from repro.xmlcore.tree import Element

# The permission vocabulary (MHP 1.2-flavoured, adapted to the player).
PERM_LOCAL_STORAGE = "local-storage"
PERM_RETURN_CHANNEL = "return-channel"
PERM_NETWORK = "network"
PERM_TUNING = "tuning"
PERM_OVERLAY_GRAPHICS = "overlay-graphics"
PERM_READ_USER_SETTINGS = "read-user-settings"

ALL_PERMISSIONS = (
    PERM_LOCAL_STORAGE, PERM_RETURN_CHANNEL, PERM_NETWORK, PERM_TUNING,
    PERM_OVERLAY_GRAPHICS, PERM_READ_USER_SETTINGS,
)


@dataclass(frozen=True)
class PermissionEntry:
    """One requested permission with optional qualifiers.

    Qualifiers: ``hosts`` limits network/return-channel targets;
    ``quota_bytes`` sizes a storage request.
    """

    name: str
    hosts: tuple[str, ...] = ()
    quota_bytes: int = 0

    def __post_init__(self):
        if self.name not in ALL_PERMISSIONS:
            raise PolicyError(f"unknown permission {self.name!r}")


@dataclass
class PermissionRequestFile:
    """A parsed permission request file."""

    app_id: str
    org_id: str
    entries: list[PermissionEntry] = field(default_factory=list)

    def request(self, name: str, *, hosts: tuple[str, ...] = (),
                quota_bytes: int = 0) -> PermissionEntry:
        entry = PermissionEntry(name, hosts, quota_bytes)
        self.entries.append(entry)
        return entry

    def requested(self, name: str) -> PermissionEntry | None:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    # -- XML mapping ----------------------------------------------------------

    def to_element(self) -> Element:
        node = element(
            "permissionrequestfile", MHP_PERMISSION_NS,
            nsmap={None: MHP_PERMISSION_NS},
            attrs={"appid": self.app_id, "orgid": self.org_id},
        )
        for entry in self.entries:
            child = element(entry.name, MHP_PERMISSION_NS,
                            attrs={"value": "true"})
            if entry.hosts:
                child.set("hosts", " ".join(entry.hosts))
            if entry.quota_bytes:
                child.set("quota", str(entry.quota_bytes))
            node.append(child)
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "PermissionRequestFile":
        if node.local != "permissionrequestfile":
            raise PolicyError(
                f"expected permissionrequestfile, got {node.local!r}"
            )
        prf = cls(app_id=node.get("appid") or "",
                  org_id=node.get("orgid") or "")
        for child in node.child_elements():
            if child.get("value") != "true":
                continue
            prf.entries.append(PermissionEntry(
                name=child.local,
                hosts=tuple((child.get("hosts") or "").split()),
                quota_bytes=int(child.get("quota", "0") or 0),
            ))
        return prf

    @classmethod
    def from_xml(cls, text: str | bytes) -> "PermissionRequestFile":
        return cls.from_element(parse_element(text))


@dataclass(frozen=True)
class Grant:
    """A granted permission (possibly narrowed by the platform)."""

    name: str
    hosts: tuple[str, ...] = ()
    quota_bytes: int = 0


@dataclass
class GrantSet:
    """The permissions the platform actually granted an application."""

    app_id: str
    grants: dict[str, Grant] = field(default_factory=dict)

    def has(self, name: str) -> bool:
        return name in self.grants

    def grant(self, name: str) -> Grant | None:
        return self.grants.get(name)

    def check(self, name: str, *, host: str | None = None,
              bytes_needed: int = 0) -> None:
        """Raise :class:`PermissionDeniedError` if use is not covered."""
        granted = self.grants.get(name)
        if granted is None:
            raise PermissionDeniedError(
                f"application {self.app_id!r} has no {name!r} permission"
            )
        if host is not None and granted.hosts \
                and host not in granted.hosts:
            raise PermissionDeniedError(
                f"{name!r} permission does not cover host {host!r}"
            )
        if bytes_needed and granted.quota_bytes \
                and bytes_needed > granted.quota_bytes:
            raise PermissionDeniedError(
                f"{name!r} quota exceeded "
                f"({bytes_needed} > {granted.quota_bytes} bytes)"
            )


@dataclass
class PlatformPermissionPolicy:
    """The platform's stance on permission requests.

    Args:
        default_grants: permissions every application gets unasked.
        grantable: permissions the platform is willing to grant on
            request (others are silently refused — MHP behaviour).
        max_storage_quota: cap applied to storage quota requests.
        trusted_only: permissions granted only to *trusted*
            (signature-verified) applications.
    """

    default_grants: tuple[str, ...] = (PERM_OVERLAY_GRAPHICS,)
    grantable: tuple[str, ...] = ALL_PERMISSIONS
    max_storage_quota: int = 1 << 20
    trusted_only: tuple[str, ...] = (
        PERM_LOCAL_STORAGE, PERM_RETURN_CHANNEL, PERM_NETWORK, PERM_TUNING,
    )

    def decide(self, request: PermissionRequestFile, *,
               trusted: bool) -> GrantSet:
        """Evaluate a request file into a :class:`GrantSet`."""
        grants: dict[str, Grant] = {
            name: Grant(name) for name in self.default_grants
        }
        for entry in request.entries:
            if entry.name not in self.grantable:
                continue
            if entry.name in self.trusted_only and not trusted:
                continue
            quota = entry.quota_bytes
            if entry.name == PERM_LOCAL_STORAGE:
                quota = min(quota or self.max_storage_quota,
                            self.max_storage_quota)
            grants[entry.name] = Grant(
                entry.name, hosts=entry.hosts, quota_bytes=quota,
            )
        return GrantSet(app_id=request.app_id, grants=grants)
