"""XKMS 2.0 key management: messages, trust server, client.

The synchronous pieces (:class:`XKMSClient`, :class:`TrustServer`)
answer one request at a time; the async pieces
(:class:`AsyncXKMSClient`, :class:`AsyncTrustService`) put sharded
responders behind the multiplexed overload-shielded transport.
"""

from repro.xkms.client import (
    AsyncXKMSClient, MuxXKMSTransport, XKMSClient,
)
from repro.xkms.messages import (
    RESULT_NO_MATCH, RESULT_RECEIVER_FAULT, RESULT_REFUSED, RESULT_SUCCESS,
    RESULT_SENDER_FAULT, STATUS_INDETERMINATE, STATUS_INVALID, STATUS_VALID,
    KeyBinding, XKMSRequest, XKMSResult,
)
from repro.xkms.server import TrustServer, authentication_proof
from repro.xkms.service import (
    AsyncTrustService, busy_fault_payload, executor_runner, inline_runner,
)

__all__ = [
    "XKMSClient", "TrustServer", "KeyBinding", "XKMSRequest", "XKMSResult",
    "authentication_proof",
    "AsyncXKMSClient", "AsyncTrustService", "MuxXKMSTransport",
    "busy_fault_payload", "inline_runner", "executor_runner",
    "RESULT_SUCCESS", "RESULT_NO_MATCH", "RESULT_REFUSED",
    "RESULT_SENDER_FAULT", "RESULT_RECEIVER_FAULT",
    "STATUS_VALID", "STATUS_INVALID", "STATUS_INDETERMINATE",
]
