"""XKMS 2.0 key management: messages, trust server, client."""

from repro.xkms.client import XKMSClient
from repro.xkms.messages import (
    RESULT_NO_MATCH, RESULT_RECEIVER_FAULT, RESULT_REFUSED, RESULT_SUCCESS,
    RESULT_SENDER_FAULT, STATUS_INDETERMINATE, STATUS_INVALID, STATUS_VALID,
    KeyBinding, XKMSRequest, XKMSResult,
)
from repro.xkms.server import TrustServer, authentication_proof

__all__ = [
    "XKMSClient", "TrustServer", "KeyBinding", "XKMSRequest", "XKMSResult",
    "authentication_proof",
    "RESULT_SUCCESS", "RESULT_NO_MATCH", "RESULT_REFUSED",
    "RESULT_SENDER_FAULT", "RESULT_RECEIVER_FAULT",
    "STATUS_VALID", "STATUS_INVALID", "STATUS_INDETERMINATE",
]
