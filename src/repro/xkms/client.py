"""XKMS client used by players and authoring tools.

The client speaks XML to any transport: a callable
``request_xml -> result_xml`` — in-process server, the simulated
network service, or a TLS-like secure channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    NetworkError, ResourceLimitExceeded, ServiceOverloadError,
    XKMSError, XMLError,
)
from repro.primitives.keys import RSAPublicKey
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.resilience.service import Deadline
from repro.xkms.messages import (
    STATUS_VALID, KeyBinding, XKMSRequest, XKMSResult,
)
from repro.xkms.server import authentication_proof

Transport = Callable[[str], str]

#: Async transport: ``(request_xml, deadline) -> result_xml``.  The
#: deadline travels with the request so the far side can stop working
#: on it the moment the caller stops caring.
AsyncTransport = Callable[..., object]


@dataclass
class XKMSClient:
    """Convenience wrapper over the XKMS request/result exchange.

    With a *retry_policy*, transport failures are retried under its
    backoff/deadline budget; a *circuit_breaker* short-circuits calls
    to a trust service that keeps failing.  Result XML coming back
    over the wire is untrusted: it is parsed under *limits* (a fresh
    :class:`ResourceGuard` per response) and any malformed or
    oversized result surfaces as a typed :class:`XKMSError` —
    callers' degradation paths already handle that.
    """

    transport: Transport
    retry_policy: RetryPolicy | None = None
    circuit_breaker: CircuitBreaker | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)

    def _transfer(self, request_xml: str, operation: str) -> str:
        if self.retry_policy is not None:
            return self.retry_policy.execute(
                lambda: self.transport(request_xml),
                breaker=self.circuit_breaker,
                describe=f"XKMS {operation}",
            )
        if self.circuit_breaker is not None:
            return self.circuit_breaker.call(
                lambda: self.transport(request_xml)
            )
        return self.transport(request_xml)

    def _roundtrip(self, request: XKMSRequest) -> XKMSResult:
        response_xml = self._transfer(request.to_xml(), request.operation)
        try:
            result = XKMSResult.from_xml(
                response_xml, guard=ResourceGuard(self.limits),
            )
        except (XMLError, ResourceLimitExceeded) as exc:
            raise XKMSError(
                f"XKMS {request.operation} result is unusable: {exc}"
            ) from exc
        # A result without a request id is as unanswerable as one with
        # the wrong id — accepting it would let any stale or substituted
        # response satisfy our request.
        if result.request_id != request.request_id:
            raise XKMSError(
                "XKMS result does not answer our request "
                f"({result.request_id!r} != {request.request_id!r})"
            )
        return result

    def locate(self, key_name: str) -> RSAPublicKey | None:
        """Find the public key bound to *key_name* (``None`` if absent).

        Suitable as a :class:`repro.dsig.Verifier` ``key_locator``.
        """
        result = self._roundtrip(XKMSRequest("Locate", key_name=key_name))
        if not result.success or not result.bindings:
            return None
        return result.bindings[0].key

    def validate(self, key_name: str,
                 key: RSAPublicKey | None = None) -> bool:
        """True iff the binding exists and is currently Valid."""
        binding = (KeyBinding(key_name, key) if key is not None else None)
        result = self._roundtrip(XKMSRequest(
            "Validate", key_name=key_name, binding=binding,
        ))
        if not result.success or not result.bindings:
            return False
        return result.bindings[0].status == STATUS_VALID

    def register(self, key_name: str, key: RSAPublicKey,
                 secret: bytes, use: str = "signature") -> XKMSResult:
        """Register a binding, proving authorization with *secret*."""
        request = XKMSRequest(
            "Register",
            binding=KeyBinding(key_name, key, use=use),
            authentication=authentication_proof(secret, key_name),
        )
        return self._roundtrip(request)

    def revoke(self, key_name: str, secret: bytes) -> XKMSResult:
        """Revoke a binding."""
        request = XKMSRequest(
            "Revoke", key_name=key_name,
            authentication=authentication_proof(secret, key_name),
        )
        return self._roundtrip(request)


class MuxXKMSTransport:
    """Adapts an :class:`~repro.network.server.AsyncServiceClient` to
    the async XML transport.

    The service's structured busy answers (``MUX_FAULT`` frames) come
    back as typed :class:`~repro.errors.ServiceOverloadError`, so the
    caller's retry policy backs off and its circuit breaker counts the
    overload as a failure — a busy trust service trips the breaker
    before the fleet can pile on.
    """

    def __init__(self, client, *, tenant: str | None = None):
        self._client = client
        self._tenant = tenant

    async def __call__(self, request_xml: str,
                       deadline: Deadline) -> str:
        from repro.network.server import MUX_RESP

        reply = await self._client.call(
            request_xml.encode("utf-8"),
            tenant=self._tenant, deadline=deadline,
        )
        if reply.kind != MUX_RESP:
            raise ServiceOverloadError(
                "trust service answered busy "
                f"(fault frame 0x{reply.kind:02x})",
                reason="busy",
                tenant=self._tenant or self._client.tenant,
            )
        return reply.payload.decode("utf-8")


@dataclass
class AsyncXKMSClient:
    """:class:`XKMSClient` for the async transport, deadline first.

    Every operation runs under an absolute :class:`Deadline` on the
    shared injected clock: it bounds retry backoff (via ``until``), is
    enforced locally while awaiting the wire, and propagates to the
    service so both sides give up at the same instant.  Failure
    surfaces are all typed: overload as
    :class:`~repro.errors.ServiceOverloadError`, expiry as
    :class:`~repro.errors.TimeoutError`, a tripped breaker as
    :class:`~repro.errors.CircuitOpenError`, unusable result XML as
    :class:`~repro.errors.XKMSError`.
    """

    transport: AsyncTransport
    clock: object
    retry_policy: RetryPolicy | None = None
    circuit_breaker: CircuitBreaker | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)
    default_timeout_s: float = 30.0

    def deadline(self, timeout_s: float | None = None) -> Deadline:
        budget = (timeout_s if timeout_s is not None
                  else self.default_timeout_s)
        return Deadline.after(self.clock, budget)

    def _attempt_deadline(self, deadline: Deadline) -> Deadline:
        """Cap one attempt's wire wait at the policy's attempt budget.

        A silently dropped frame otherwise blocks the await until the
        *call* deadline — by which point retrying is pointless.  With
        ``attempt_timeout`` set, each attempt gives up early enough to
        leave budget for the next one (never past the call deadline).
        """
        budget = (self.retry_policy.attempt_timeout
                  if self.retry_policy is not None else None)
        if budget is None:
            return deadline
        capped = self.clock.now() + budget
        if capped >= deadline.at:
            return deadline
        return Deadline(capped, self.clock)

    async def _transfer(self, request_xml: str, operation: str,
                        deadline: Deadline) -> str:
        if self.retry_policy is not None:
            return await self.retry_policy.execute_async(
                lambda: self.transport(
                    request_xml, self._attempt_deadline(deadline)),
                breaker=self.circuit_breaker,
                describe=f"XKMS {operation}",
                until=deadline.at,
            )
        breaker = self.circuit_breaker
        if breaker is not None:
            breaker.before_call()
            try:
                result = await self.transport(request_xml, deadline)
            except NetworkError:
                breaker.record_failure()
                raise
            except BaseException:
                breaker.abandon_probe()
                raise
            breaker.record_success()
            return result
        return await self.transport(request_xml, deadline)

    async def _roundtrip(self, request: XKMSRequest,
                         deadline: Deadline) -> XKMSResult:
        response_xml = await self._transfer(
            request.to_xml(), request.operation, deadline)
        try:
            result = XKMSResult.from_xml(
                response_xml, guard=ResourceGuard(self.limits),
            )
        except (XMLError, ResourceLimitExceeded) as exc:
            raise XKMSError(
                f"XKMS {request.operation} result is unusable: {exc}"
            ) from exc
        if result.request_id != request.request_id:
            raise XKMSError(
                "XKMS result does not answer our request "
                f"({result.request_id!r} != {request.request_id!r})"
            )
        return result

    async def locate(self, key_name: str, *,
                     timeout_s: float | None = None):
        result = await self._roundtrip(
            XKMSRequest("Locate", key_name=key_name),
            self.deadline(timeout_s),
        )
        if not result.success or not result.bindings:
            return None
        return result.bindings[0].key

    async def validate(self, key_name: str,
                       key: RSAPublicKey | None = None, *,
                       timeout_s: float | None = None) -> bool:
        binding = (KeyBinding(key_name, key) if key is not None else None)
        result = await self._roundtrip(XKMSRequest(
            "Validate", key_name=key_name, binding=binding,
        ), self.deadline(timeout_s))
        if not result.success or not result.bindings:
            return False
        return result.bindings[0].status == STATUS_VALID

    async def register(self, key_name: str, key: RSAPublicKey,
                       secret: bytes, use: str = "signature", *,
                       timeout_s: float | None = None) -> XKMSResult:
        request = XKMSRequest(
            "Register",
            binding=KeyBinding(key_name, key, use=use),
            authentication=authentication_proof(secret, key_name),
        )
        return await self._roundtrip(request, self.deadline(timeout_s))

    async def revoke(self, key_name: str, secret: bytes, *,
                     timeout_s: float | None = None) -> XKMSResult:
        request = XKMSRequest(
            "Revoke", key_name=key_name,
            authentication=authentication_proof(secret, key_name),
        )
        return await self._roundtrip(request, self.deadline(timeout_s))
