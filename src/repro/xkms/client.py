"""XKMS client used by players and authoring tools.

The client speaks XML to any transport: a callable
``request_xml -> result_xml`` — in-process server, the simulated
network service, or a TLS-like secure channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ResourceLimitExceeded, XKMSError, XMLError
from repro.primitives.keys import RSAPublicKey
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.xkms.messages import (
    STATUS_VALID, KeyBinding, XKMSRequest, XKMSResult,
)
from repro.xkms.server import authentication_proof

Transport = Callable[[str], str]


@dataclass
class XKMSClient:
    """Convenience wrapper over the XKMS request/result exchange.

    With a *retry_policy*, transport failures are retried under its
    backoff/deadline budget; a *circuit_breaker* short-circuits calls
    to a trust service that keeps failing.  Result XML coming back
    over the wire is untrusted: it is parsed under *limits* (a fresh
    :class:`ResourceGuard` per response) and any malformed or
    oversized result surfaces as a typed :class:`XKMSError` —
    callers' degradation paths already handle that.
    """

    transport: Transport
    retry_policy: RetryPolicy | None = None
    circuit_breaker: CircuitBreaker | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)

    def _transfer(self, request_xml: str, operation: str) -> str:
        if self.retry_policy is not None:
            return self.retry_policy.execute(
                lambda: self.transport(request_xml),
                breaker=self.circuit_breaker,
                describe=f"XKMS {operation}",
            )
        if self.circuit_breaker is not None:
            return self.circuit_breaker.call(
                lambda: self.transport(request_xml)
            )
        return self.transport(request_xml)

    def _roundtrip(self, request: XKMSRequest) -> XKMSResult:
        response_xml = self._transfer(request.to_xml(), request.operation)
        try:
            result = XKMSResult.from_xml(
                response_xml, guard=ResourceGuard(self.limits),
            )
        except (XMLError, ResourceLimitExceeded) as exc:
            raise XKMSError(
                f"XKMS {request.operation} result is unusable: {exc}"
            ) from exc
        # A result without a request id is as unanswerable as one with
        # the wrong id — accepting it would let any stale or substituted
        # response satisfy our request.
        if result.request_id != request.request_id:
            raise XKMSError(
                "XKMS result does not answer our request "
                f"({result.request_id!r} != {request.request_id!r})"
            )
        return result

    def locate(self, key_name: str) -> RSAPublicKey | None:
        """Find the public key bound to *key_name* (``None`` if absent).

        Suitable as a :class:`repro.dsig.Verifier` ``key_locator``.
        """
        result = self._roundtrip(XKMSRequest("Locate", key_name=key_name))
        if not result.success or not result.bindings:
            return None
        return result.bindings[0].key

    def validate(self, key_name: str,
                 key: RSAPublicKey | None = None) -> bool:
        """True iff the binding exists and is currently Valid."""
        binding = (KeyBinding(key_name, key) if key is not None else None)
        result = self._roundtrip(XKMSRequest(
            "Validate", key_name=key_name, binding=binding,
        ))
        if not result.success or not result.bindings:
            return False
        return result.bindings[0].status == STATUS_VALID

    def register(self, key_name: str, key: RSAPublicKey,
                 secret: bytes, use: str = "signature") -> XKMSResult:
        """Register a binding, proving authorization with *secret*."""
        request = XKMSRequest(
            "Register",
            binding=KeyBinding(key_name, key, use=use),
            authentication=authentication_proof(secret, key_name),
        )
        return self._roundtrip(request)

    def revoke(self, key_name: str, secret: bytes) -> XKMSResult:
        """Revoke a binding."""
        request = XKMSRequest(
            "Revoke", key_name=key_name,
            authentication=authentication_proof(secret, key_name),
        )
        return self._roundtrip(request)
