"""The XKMS trust server ("trusted source" of §7).

Holds registered key bindings, answers Locate/Validate queries, and
accepts Register/Revoke operations authenticated by a shared secret
(X-KRSS's authentication key).  Validation consults an optional
certificate trust store so a binding's status reflects revocation.

Registration state can be made crash-safe by attaching a
:class:`~repro.resilience.durable.DurableStore`
(:meth:`TrustServer.attach_durable`): every registration and
revocation is journaled and fsynced before the operation is
acknowledged, and a restarted server replays exactly the acknowledged
bindings — a revocation the client was told about can never quietly
un-happen across a power cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import (
    DurableStateError, ResourceLimitExceeded, XKMSError, XMLError,
)
from repro.primitives.hmac import constant_time_equal, hmac_sha256
from repro.primitives.keys import RSAPublicKey
from repro.resilience.durable import DurableStore
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.xkms.messages import (
    RESULT_NO_MATCH, RESULT_RECEIVER_FAULT, RESULT_REFUSED,
    RESULT_SENDER_FAULT, RESULT_SUCCESS, STATUS_INVALID, STATUS_VALID,
    KeyBinding, XKMSRequest, XKMSResult,
)
from repro.xmlcore import parse_element, serialize


def authentication_proof(secret: bytes, key_name: str) -> str:
    """Compute the X-KRSS authentication value for *key_name*."""
    return hmac_sha256(secret, key_name.encode("utf-8")).hex()


@dataclass
class TrustServer:
    """An in-process XKMS responder.

    Args:
        registration_secrets: shared secrets authorized to register or
            revoke bindings, keyed by key-name prefix ("" = any name).
        limits: resource quotas applied to each incoming request XML —
            a fresh :class:`ResourceGuard` is minted per request so an
            oversized or deeply nested message cannot exhaust the
            responder.
    """

    registration_secrets: dict[str, bytes] = field(default_factory=dict)
    _bindings: dict[str, KeyBinding] = field(default_factory=dict)
    audit_log: list[str] = field(default_factory=list)
    #: Monotonic binding-table version, bumped under ``_lock`` on every
    #: mutation (register, revoke, durable replay).  Caches key their
    #: entries on it, so a revocation invalidates every cached answer
    #: about this shard without enumerating them.
    generation: int = 0
    limits: ResourceLimits = field(default_factory=ResourceLimits.default)
    _durable: DurableStore | None = field(default=None, repr=False)
    # One responder serves every in-flight session (and the ROADMAP's
    # async service multiplies them): binding-table and audit writes
    # must be atomic.  Durable journaling (fsync) and XML parsing
    # always run *outside* this lock.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    #: durable-store namespace the binding records live in.
    DURABLE_NAMESPACE = "xkms-bindings"

    # -- durable registration state --------------------------------------------------

    def attach_durable(self, store: DurableStore) -> None:
        """Replay persisted bindings from *store*, then journal every
        future registration/revocation through it.

        Each record is the binding's XML serialization; replay parses
        it under this server's own resource limits — flash is
        attacker-reachable input, not trusted memory.

        Raises:
            DurableStateError: when a persisted record does not parse
                back into a key binding.
        """
        replayed: dict[str, KeyBinding] = {}
        for key_name in store.keys(self.DURABLE_NAMESPACE):
            raw = store.get(self.DURABLE_NAMESPACE, key_name)
            try:
                node = parse_element(raw,
                                     guard=ResourceGuard(self.limits))
                binding = KeyBinding.from_element(node)
            except (XMLError, XKMSError, ResourceLimitExceeded) as exc:
                raise DurableStateError(
                    "persisted key binding does not parse "
                    f"({type(exc).__name__})", kind="tamper",
                ) from exc
            replayed[binding.key_name] = binding
        with self._lock:
            self._bindings.update(replayed)
            self._durable = store
            self.generation += 1
            self.audit_log.append(
                f"durable-attach:{len(self._bindings)}"
            )

    def _persist_binding(self, binding: KeyBinding) -> None:
        """Journal *binding* and fsync; the commit is what makes the
        operation acknowledgeable."""
        if self._durable is None:
            return
        self._durable.set(
            self.DURABLE_NAMESPACE, binding.key_name,
            serialize(binding.to_element()).encode("utf-8"),
        )
        self._durable.commit()

    # -- direct management (operator console) ---------------------------------------

    def register_binding(self, key_name: str, key: RSAPublicKey,
                         use: str = "signature") -> KeyBinding:
        binding = KeyBinding(key_name, key, STATUS_VALID, use)
        self._persist_binding(binding)
        with self._lock:
            self._bindings[key_name] = binding
            self.generation += 1
        return binding

    def revoke_binding(self, key_name: str) -> None:
        binding = self._bindings.get(key_name)
        if binding is None:
            raise XKMSError(f"no binding named {key_name!r}")
        revoked = KeyBinding(binding.key_name, binding.key,
                             STATUS_INVALID, binding.use)
        self._persist_binding(revoked)
        with self._lock:
            binding.status = STATUS_INVALID
            self.generation += 1

    def binding(self, key_name: str) -> KeyBinding | None:
        return self._bindings.get(key_name)

    # -- protocol ----------------------------------------------------------------------

    def handle(self, request: XKMSRequest) -> XKMSResult:
        """Process one XKMS request."""
        with self._lock:
            self.audit_log.append(
                f"{request.operation}:{request.key_name}"
            )
        handler = {
            "Locate": self._locate,
            "Validate": self._validate,
            "Register": self._register,
            "Revoke": self._revoke,
        }.get(request.operation)
        if handler is None:
            return XKMSResult(request.operation, RESULT_SENDER_FAULT,
                              request_id=request.request_id)
        return handler(request)

    def handle_xml(self, request_xml: str | bytes) -> str:
        """XML-in/XML-out entry point (what the network service wraps).

        Never leaks a traceback to the peer: malformed, oversized or
        otherwise hostile request XML comes back as a structured XKMS
        failure result (``Sender`` fault), and internal failures as a
        ``Receiver`` fault.
        """
        guard = ResourceGuard(self.limits)
        try:
            request = XKMSRequest.from_xml(request_xml, guard=guard)
        except (XMLError, XKMSError, ResourceLimitExceeded) as exc:
            # Audit the exception *type* only: the message text can
            # quote attacker bytes or (for crypto failures) values
            # derived from key material, and the audit log is readable
            # by operators outside the crypto layer (TNT203).
            with self._lock:
                self.audit_log.append(
                    f"malformed-request:{type(exc).__name__}"
                )
            return XKMSResult(
                "Status", RESULT_SENDER_FAULT,
            ).to_xml()
        try:
            return self.handle(request).to_xml()
        except XKMSError as exc:
            with self._lock:
                self.audit_log.append(
                    f"request-failed:{type(exc).__name__}"
                )
            return XKMSResult(
                request.operation, RESULT_RECEIVER_FAULT,
                request_id=request.request_id,
            ).to_xml()

    # -- operations ---------------------------------------------------------------------

    def _locate(self, request: XKMSRequest) -> XKMSResult:
        binding = self._bindings.get(request.key_name)
        if binding is None:
            return XKMSResult("Locate", RESULT_NO_MATCH,
                              request_id=request.request_id)
        return XKMSResult("Locate", RESULT_SUCCESS, [binding],
                          request_id=request.request_id)

    def _validate(self, request: XKMSRequest) -> XKMSResult:
        """Validate returns the binding *with its trust status*.

        Unlike Locate, Validate answers "is this binding currently
        good" — a revoked binding comes back with status Invalid.
        """
        queried = request.binding
        name = queried.key_name if queried is not None else request.key_name
        binding = self._bindings.get(name)
        if binding is None:
            return XKMSResult("Validate", RESULT_NO_MATCH,
                              request_id=request.request_id)
        if queried is not None and queried.key != binding.key:
            # Same name, different key: report the binding as invalid.
            reported = KeyBinding(name, queried.key, STATUS_INVALID,
                                  queried.use)
            return XKMSResult("Validate", RESULT_SUCCESS, [reported],
                              request_id=request.request_id)
        return XKMSResult("Validate", RESULT_SUCCESS, [binding],
                          request_id=request.request_id)

    def _check_authentication(self, request: XKMSRequest) -> bool:
        if not request.authentication:
            return False
        name = request.key_name or (
            request.binding.key_name if request.binding else ""
        )
        for prefix, secret in self.registration_secrets.items():
            if not name.startswith(prefix):
                continue
            expected = authentication_proof(secret, name)
            if constant_time_equal(expected.encode(),
                                   request.authentication.encode()):
                return True
        return False

    def _register(self, request: XKMSRequest) -> XKMSResult:
        if request.binding is None:
            return XKMSResult("Register", RESULT_SENDER_FAULT,
                              request_id=request.request_id)
        if not self._check_authentication(request):
            return XKMSResult("Register", RESULT_REFUSED,
                              request_id=request.request_id)
        binding = KeyBinding(
            request.binding.key_name, request.binding.key,
            STATUS_VALID, request.binding.use,
        )
        self._persist_binding(binding)
        with self._lock:
            self._bindings[binding.key_name] = binding
            self.generation += 1
        return XKMSResult("Register", RESULT_SUCCESS, [binding],
                          request_id=request.request_id)

    def _revoke(self, request: XKMSRequest) -> XKMSResult:
        if not self._check_authentication(request):
            return XKMSResult("Revoke", RESULT_REFUSED,
                              request_id=request.request_id)
        binding = self._bindings.get(request.key_name)
        if binding is None:
            return XKMSResult("Revoke", RESULT_NO_MATCH,
                              request_id=request.request_id)
        revoked = KeyBinding(binding.key_name, binding.key,
                             STATUS_INVALID, binding.use)
        self._persist_binding(revoked)
        with self._lock:
            binding.status = STATUS_INVALID
            self.generation += 1
        return XKMSResult("Revoke", RESULT_SUCCESS, [binding],
                          request_id=request.request_id)
