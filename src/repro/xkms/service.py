"""Sharded async front end for the XKMS trust service (DESIGN §14).

One :class:`AsyncTrustService` puts N independent
:class:`~repro.xkms.server.TrustServer` shards behind the multiplexed
async transport: requests route by a stable hash of the key name, so
each binding lives on exactly one shard and shards never contend on
one binding table.  The handler is shaped for
:class:`~repro.network.server.AsyncServiceServer` — it yields to the
event loop and re-checks the propagated deadline between its phases
(parse → route → respond), so an expired request stops costing work at
the next checkpoint instead of running to completion.

Validation answers are memoized per shard in a small lock-guarded
cache keyed on the shard's binding-table *generation*: a registration
or revocation bumps the generation and thereby invalidates every
cached answer about that shard at once.  A revocation can never be
served stale from the cache.

The responder step itself is synchronous ``TrustServer`` code and runs
through a pluggable *runner*.  The default runs it inline on the event
loop — correct and deterministic for the in-memory store.  A
deployment that attaches a :class:`~repro.resilience.durable`
store (whose commits fsync) should supply
:func:`executor_runner` so journal flushes happen off the loop.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

from repro.errors import (
    ResourceLimitExceeded, XKMSError, XMLError,
)
from repro.network.server import MuxFrame, RequestContext
from repro.resilience.limits import ResourceGuard, ResourceLimits
from repro.xkms.messages import (
    RESULT_RECEIVER_FAULT, RESULT_SENDER_FAULT, XKMSRequest, XKMSResult,
)
from repro.xkms.server import TrustServer


async def inline_runner(step, *args):
    """Run a responder *step* directly on the event loop (default)."""
    return step(*args)


def executor_runner(executor):
    """A runner that offloads the responder step to *executor*.

    Use when a shard has a durable store attached: its fsync-bearing
    commits then run off the event loop instead of stalling every
    in-flight session behind a disk flush.
    """
    import asyncio

    async def run(step, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(executor, step, *args)

    return run


def busy_fault_payload(error: BaseException, frame: MuxFrame) -> bytes:
    """Fault encoder for :class:`AsyncServiceServer`: structured XKMS.

    Every shed, timeout or internal failure is answered with a
    well-formed XKMS ``Receiver`` fault result — the busy signal is
    protocol, not a dropped connection or a stack trace.
    """
    return XKMSResult(
        "Status", RESULT_RECEIVER_FAULT,
    ).to_xml().encode("utf-8")


@dataclass
class ServiceCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class AsyncTrustService:
    """N trust-server shards behind one async XML-in/XML-out handler.

    Args:
        shards: prebuilt :class:`TrustServer` list (they keep their
            registered bindings) or an int to mint that many empty
            shards sharing *registration_secrets*.
        clock: the injected clock deadlines are measured on.
        limits: per-request XML resource quotas.
        runner: ``async (step, *args) -> result`` executing the
            synchronous responder step; defaults to
            :func:`inline_runner`.
        cache_capacity: bound on memoized Validate answers (0 disables
            the cache).
    """

    def __init__(self, shards=2, *, clock,
                 registration_secrets: dict[str, bytes] | None = None,
                 limits: ResourceLimits | None = None,
                 runner=None, cache_capacity: int = 256):
        self.clock = clock
        self.limits = limits or ResourceLimits.default()
        if isinstance(shards, int):
            if shards < 1:
                raise XKMSError("a trust service needs >= 1 shard")
            self.shards: list[TrustServer] = [
                TrustServer(
                    registration_secrets=dict(registration_secrets or {}),
                    limits=self.limits,
                )
                for _ in range(shards)
            ]
        else:
            self.shards = list(shards)
            if not self.shards:
                raise XKMSError("a trust service needs >= 1 shard")
        self._runner = runner or inline_runner
        self.cache_capacity = cache_capacity
        self.cache_stats = ServiceCacheStats()
        self._cache: dict = {}
        # The cache is read on the event loop but invalidated by
        # generation bumps that other threads (operator console, an
        # executor runner) may drive: guard it like the rest of the
        # shared surface (DESIGN §13).
        self._cache_lock = threading.Lock()

    # -- routing ---------------------------------------------------------------------

    def shard_index(self, key_name: str) -> int:
        return zlib.crc32(key_name.encode("utf-8")) % len(self.shards)

    def shard_for(self, key_name: str) -> TrustServer:
        return self.shards[self.shard_index(key_name)]

    # -- operator console (routes to the owning shard) -------------------------------

    def register_binding(self, key_name: str, key, use="signature"):
        return self.shard_for(key_name).register_binding(
            key_name, key, use)

    def revoke_binding(self, key_name: str) -> None:
        self.shard_for(key_name).revoke_binding(key_name)

    def binding(self, key_name: str):
        return self.shard_for(key_name).binding(key_name)

    @property
    def audit_log(self) -> list[str]:
        merged: list[str] = []
        for shard in self.shards:
            merged.extend(shard.audit_log)
        return merged

    # -- validation cache ------------------------------------------------------------

    def _cache_key(self, index: int, request: XKMSRequest):
        if self.cache_capacity <= 0 or request.operation != "Validate":
            return None
        name = request.key_name
        fingerprint = ""
        if request.binding is not None:
            name = request.binding.key_name
            fingerprint = request.binding.key.fingerprint()
        # The shard generation is part of the key: any mutation on the
        # shard silently orphans every older entry.
        return (index, self.shards[index].generation, name, fingerprint)

    def _cache_get(self, key):
        if key is None:
            return None
        with self._cache_lock:
            entry = self._cache.get(key)
        if entry is None:
            self.cache_stats.misses += 1
            return None
        self.cache_stats.hits += 1
        return entry

    def _cache_put(self, key, result: XKMSResult) -> None:
        if key is None:
            return
        with self._cache_lock:
            if len(self._cache) >= self.cache_capacity:
                self._cache.pop(next(iter(self._cache)))
                self.cache_stats.evictions += 1
            self._cache[key] = (result.result_major,
                                tuple(result.bindings))

    # -- the async handler -----------------------------------------------------------

    async def _checkpoint(self, context: RequestContext,
                          phase: str) -> None:
        """Yield, then re-check the propagated deadline.

        Each phase boundary is an opportunity for an expired request
        to stop costing work; the typed timeout it raises becomes a
        structured fault one layer up.
        """
        await self.clock.asleep(0)
        context.deadline.check(f"xkms {phase}")

    async def handle_request(self, payload: bytes,
                             context: RequestContext) -> bytes:
        """``AsyncServiceServer`` handler: request XML in, result out.

        Hostile input never raises: malformed or oversized request XML
        is answered with a ``Sender`` fault, responder-side failures
        with a ``Receiver`` fault.  Only overload/timeout conditions
        propagate (typed), for the transport to answer as busy faults.
        """
        guard = ResourceGuard(self.limits)
        try:
            request = XKMSRequest.from_xml(payload, guard=guard)
        except (XMLError, XKMSError, ResourceLimitExceeded) as exc:
            shard = self.shards[0]
            with shard._lock:
                shard.audit_log.append(
                    f"malformed-request:{type(exc).__name__}")
            return XKMSResult(
                "Status", RESULT_SENDER_FAULT,
            ).to_xml().encode("utf-8")
        await self._checkpoint(context, "route")
        name = request.key_name or (
            request.binding.key_name if request.binding else "")
        index = self.shard_index(name)
        cache_key = self._cache_key(index, request)
        cached = self._cache_get(cache_key)
        if cached is not None:
            major, bindings = cached
            result = XKMSResult(request.operation, major,
                                list(bindings),
                                request_id=request.request_id)
            return result.to_xml().encode("utf-8")
        shard = self.shards[index]
        runner = self._runner
        try:
            result = await runner(shard.handle, request)
        except XKMSError as exc:
            with shard._lock:
                shard.audit_log.append(
                    f"request-failed:{type(exc).__name__}")
            return XKMSResult(
                request.operation, RESULT_RECEIVER_FAULT,
                request_id=request.request_id,
            ).to_xml().encode("utf-8")
        await self._checkpoint(context, "respond")
        self._cache_put(cache_key, result)
        return result.to_xml().encode("utf-8")
