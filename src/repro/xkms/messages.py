"""XKMS 2.0 message structures (paper ref. [33], §4 and §7).

"The XKMS helps manage the sharing of the public key realizing the
possibility of signature verification and encrypting for recipients.
The usage of XML based message formats for key management eliminates
the need to support other specialized public key registration and
management protocols."

Implemented: the X-KISS tier (Locate / Validate) and the X-KRSS tier
(Register / Revoke), with the standard major result codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.errors import XKMSError
from repro.primitives.keys import RSAPublicKey
from repro.xmlcore import XKMS_NS, element, parse_element, serialize
from repro.xmlcore.tree import Element

# Major result codes (XKMS 2.0 §2.6.1).
RESULT_SUCCESS = "Success"
RESULT_NO_MATCH = "NoMatch"
RESULT_REFUSED = "Refused"
RESULT_SENDER_FAULT = "Sender"
RESULT_RECEIVER_FAULT = "Receiver"

# Key binding status values.
STATUS_VALID = "Valid"
STATUS_INVALID = "Invalid"
STATUS_INDETERMINATE = "Indeterminate"

_request_ids = count(1)


def _next_request_id() -> str:
    return f"xkms-req-{next(_request_ids)}"


def reset_request_ids() -> None:
    """Restart the request-id sequence (deterministic harnesses only).

    Request ids are process-global; a reproducible load run resets the
    sequence first so two runs emit byte-identical wire traffic.
    """
    global _request_ids
    _request_ids = count(1)


@dataclass
class KeyBinding:
    """A name ↔ key binding with a validity status."""

    key_name: str
    key: RSAPublicKey
    status: str = STATUS_VALID
    use: str = "signature"   # "signature" | "encryption" | "exchange"

    def to_element(self) -> Element:
        node = element("xkms:KeyBinding", XKMS_NS,
                       nsmap={"xkms": XKMS_NS},
                       attrs={"Status": self.status, "Use": self.use})
        node.append(element("xkms:KeyName", XKMS_NS, text=self.key_name))
        key_el = element("xkms:KeyValue", XKMS_NS)
        for part, value in self.key.to_dict().items():
            key_el.append(element(f"xkms:{part}", XKMS_NS, text=value))
        node.append(key_el)
        return node

    @classmethod
    def from_element(cls, node: Element) -> "KeyBinding":
        name_el = node.first_child("KeyName", XKMS_NS)
        key_el = node.first_child("KeyValue", XKMS_NS)
        if name_el is None or key_el is None:
            raise XKMSError("KeyBinding missing name or key value")
        modulus = key_el.first_child("Modulus", XKMS_NS)
        exponent = key_el.first_child("Exponent", XKMS_NS)
        if modulus is None or exponent is None:
            raise XKMSError("KeyBinding key value incomplete")
        return cls(
            key_name=name_el.text_content().strip(),
            key=RSAPublicKey.from_dict({
                "Modulus": modulus.text_content(),
                "Exponent": exponent.text_content(),
            }),
            status=node.get("Status") or STATUS_INDETERMINATE,
            use=node.get("Use") or "signature",
        )


@dataclass
class XKMSRequest:
    """An XKMS request: Locate / Validate / Register / Revoke.

    ``binding`` carries the prototype key binding for Register and the
    queried binding for Validate; Locate and Revoke use ``key_name``.
    """

    operation: str   # "Locate" | "Validate" | "Register" | "Revoke"
    key_name: str = ""
    binding: KeyBinding | None = None
    authentication: str = ""   # shared-secret proof for X-KRSS
    request_id: str = field(default_factory=_next_request_id)

    _OPERATIONS = ("Locate", "Validate", "Register", "Revoke")

    def __post_init__(self):
        if self.operation not in self._OPERATIONS:
            raise XKMSError(f"unknown XKMS operation {self.operation!r}")

    def to_element(self) -> Element:
        node = element(
            f"xkms:{self.operation}Request", XKMS_NS,
            nsmap={"xkms": XKMS_NS},
            attrs={"Id": self.request_id},
        )
        if self.key_name:
            node.append(element("xkms:QueryKeyName", XKMS_NS,
                                text=self.key_name))
        if self.binding is not None:
            node.append(self.binding.to_element())
        if self.authentication:
            node.append(element("xkms:Authentication", XKMS_NS,
                                text=self.authentication))
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "XKMSRequest":
        if not node.local.endswith("Request"):
            raise XKMSError(f"not an XKMS request: {node.local!r}")
        operation = node.local[: -len("Request")]
        name_el = node.first_child("QueryKeyName", XKMS_NS)
        binding_el = node.first_child("KeyBinding", XKMS_NS)
        auth_el = node.first_child("Authentication", XKMS_NS)
        return cls(
            operation=operation,
            key_name=(name_el.text_content().strip()
                      if name_el is not None else ""),
            binding=(KeyBinding.from_element(binding_el)
                     if binding_el is not None else None),
            authentication=(auth_el.text_content().strip()
                            if auth_el is not None else ""),
            request_id=node.get("Id") or _next_request_id(),
        )

    @classmethod
    def from_xml(cls, text: str | bytes, *, guard=None) -> "XKMSRequest":
        """Parse a request off the wire, metered by *guard*."""
        return cls.from_element(parse_element(text, guard=guard))


@dataclass
class XKMSResult:
    """An XKMS result message."""

    operation: str
    result_major: str
    bindings: list[KeyBinding] = field(default_factory=list)
    request_id: str = ""

    @property
    def success(self) -> bool:
        return self.result_major == RESULT_SUCCESS

    def to_element(self) -> Element:
        node = element(
            f"xkms:{self.operation}Result", XKMS_NS,
            nsmap={"xkms": XKMS_NS},
            attrs={
                "ResultMajor": self.result_major,
                "RequestId": self.request_id,
            },
        )
        for binding in self.bindings:
            node.append(binding.to_element())
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "XKMSResult":
        if not node.local.endswith("Result"):
            raise XKMSError(f"not an XKMS result: {node.local!r}")
        return cls(
            operation=node.local[: -len("Result")],
            result_major=node.get("ResultMajor") or RESULT_RECEIVER_FAULT,
            bindings=[
                KeyBinding.from_element(child)
                for child in node.child_elements()
                if child.local == "KeyBinding"
            ],
            request_id=node.get("RequestId") or "",
        )

    @classmethod
    def from_xml(cls, text: str | bytes, *, guard=None) -> "XKMSResult":
        """Parse a result off the wire, metered by *guard*."""
        return cls.from_element(parse_element(text, guard=guard))
