"""Audio/Video playlists: "meta-information about the play items" (Fig 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DiscFormatError
from repro.xmlcore import DISC_NS, element
from repro.xmlcore.tree import Element


@dataclass(frozen=True)
class PlayItem:
    """One chapter segment: a clip reference with an in/out window."""

    clip_ref: str          # clip id, resolved through the clip registry
    in_time: float = 0.0   # seconds
    out_time: float = 0.0  # seconds; 0 means "to end of clip"

    def __post_init__(self):
        if self.in_time < 0 or (self.out_time and
                                self.out_time < self.in_time):
            raise DiscFormatError(
                f"play item window [{self.in_time}, {self.out_time}] "
                "is invalid"
            )

    def to_element(self) -> Element:
        return element("playItem", DISC_NS, attrs={
            "clip": self.clip_ref,
            "in": repr(self.in_time),
            "out": repr(self.out_time),
        })

    @classmethod
    def from_element(cls, node: Element) -> "PlayItem":
        try:
            return cls(
                clip_ref=node.get("clip") or "",
                in_time=float(node.get("in", "0")),
                out_time=float(node.get("out", "0")),
            )
        except ValueError as exc:
            raise DiscFormatError(f"malformed playItem: {exc}") from None


@dataclass
class Playlist:
    """An ordered list of play items forming the chapters of a track."""

    name: str
    items: list[PlayItem] = field(default_factory=list)
    playlist_id: str | None = None

    def add_item(self, clip_ref: str, in_time: float = 0.0,
                 out_time: float = 0.0) -> PlayItem:
        item = PlayItem(clip_ref, in_time, out_time)
        self.items.append(item)
        return item

    def duration(self) -> float:
        """Total windowed duration (items with out=0 contribute nothing —
        the player resolves them against clip info)."""
        return sum(
            max(0.0, item.out_time - item.in_time) for item in self.items
        )

    def clip_refs(self) -> list[str]:
        return [item.clip_ref for item in self.items]

    def to_element(self) -> Element:
        node = element("playlist", DISC_NS, attrs={"name": self.name})
        if self.playlist_id:
            node.set("Id", self.playlist_id)
        for item in self.items:
            node.append(item.to_element())
        return node

    @classmethod
    def from_element(cls, node: Element) -> "Playlist":
        if node.local != "playlist":
            raise DiscFormatError(f"expected playlist, got {node.local!r}")
        return cls(
            name=node.get("name") or "",
            items=[
                PlayItem.from_element(child)
                for child in node.child_elements()
                if child.local == "playItem"
            ],
            playlist_id=node.get("Id"),
        )
