"""Disc format profiles: BD-ROM, HD-DVD and eDVD layouts.

§8: the prototype "demonstrated that XML based security and Interactive
Application Engine can exist independent of the type [of] the Disc
format, be it Blu-ray disc, High Definition-DVD and enhanced DVD
(eDVD)", and §9 lists extending to other formats as future work.

A :class:`DiscFormat` captures what actually differs between the
formats for our purposes: the on-disc directory layout, the stream/clip
file extensions, the URI scheme and the capacity.  Everything above the
image (hierarchy markup, security, the engine) is format-agnostic —
which is the claim, and the format-sweep tests prove it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscFormatError


@dataclass(frozen=True)
class DiscFormat:
    """One optical-disc format's on-image conventions."""

    name: str
    root_dir: str            # e.g. "BDMV"
    stream_dir: str          # subdirectory for stream files
    clipinfo_dir: str
    cluster_dir: str
    auxdata_dir: str
    stream_extension: str    # e.g. ".m2ts"
    clipinfo_extension: str
    uri_scheme: str          # e.g. "bd://"
    capacity_bytes: int

    def cluster_path(self) -> str:
        return f"{self.root_dir}/{self.cluster_dir}/cluster.xml"

    def stream_path(self, clip_id: str) -> str:
        return (f"{self.root_dir}/{self.stream_dir}/"
                f"{clip_id}{self.stream_extension}")

    def clipinfo_path(self, clip_id: str) -> str:
        return (f"{self.root_dir}/{self.clipinfo_dir}/"
                f"{clip_id}{self.clipinfo_extension}")

    def auxdata_path(self, name: str) -> str:
        return f"{self.root_dir}/{self.auxdata_dir}/{name}"

    def path_to_uri(self, path: str) -> str:
        return self.uri_scheme + path

    def uri_to_path(self, uri: str) -> str:
        if not uri.startswith(self.uri_scheme):
            raise DiscFormatError(
                f"not a {self.name} disc URI: {uri!r}"
            )
        return uri[len(self.uri_scheme):]


BD_ROM = DiscFormat(
    name="BD-ROM", root_dir="BDMV", stream_dir="STREAM",
    clipinfo_dir="CLIPINF", cluster_dir="CLUSTER",
    auxdata_dir="AUXDATA", stream_extension=".m2ts",
    clipinfo_extension=".clpi", uri_scheme="bd://",
    capacity_bytes=25_000_000_000,
)

HD_DVD = DiscFormat(
    name="HD-DVD", root_dir="HVDVD_TS", stream_dir="STREAM",
    clipinfo_dir="CLIPINF", cluster_dir="CLUSTER",
    auxdata_dir="ADV_OBJ", stream_extension=".evo",
    clipinfo_extension=".vti", uri_scheme="hddvd://",
    capacity_bytes=15_000_000_000,
)

EDVD = DiscFormat(
    name="eDVD", root_dir="VIDEO_TS", stream_dir="STREAM",
    clipinfo_dir="CLIPINF", cluster_dir="ENHANCED",
    auxdata_dir="EXTRA", stream_extension=".vob",
    clipinfo_extension=".ifo", uri_scheme="edvd://",
    capacity_bytes=4_700_000_000,
)

ALL_FORMATS = (BD_ROM, HD_DVD, EDVD)


def format_by_name(name: str) -> DiscFormat:
    """Look up a registered disc format by its display name."""
    for disc_format in ALL_FORMATS:
        if disc_format.name == name:
            return disc_format
    raise KeyError(f"no disc format named {name!r}")
