"""Synthetic MPEG-2 transport stream generation (ISO/IEC 13818-1 framing).

The paper's clips ultimately link "to the Mpeg-2 Transport Stream file"
(§2).  Security operates on the byte identity of those files, not on
decodable video, so this generator produces correctly framed 188-byte
TS packets (sync byte, PID, continuity counters, adaptation-free
payload) filled with deterministic pseudo-random payload — the right
size, framing and entropy for signing/encryption experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscError
from repro.primitives.random import RandomSource, default_random

TS_PACKET_SIZE = 188
TS_SYNC_BYTE = 0x47


def generate_transport_stream(packets: int, *, pid: int = 0x100,
                              rng: RandomSource | None = None) -> bytes:
    """Generate *packets* TS packets on a single PID.

    Each packet: sync byte, payload-unit-start on the first packet,
    13-bit PID, payload-only adaptation control, 4-bit continuity
    counter, 184 payload bytes.
    """
    if packets <= 0:
        raise DiscError("transport stream needs at least one packet")
    if not 0 <= pid <= 0x1FFF:
        raise DiscError(f"PID {pid:#x} out of range")
    rng = rng or default_random()
    out = bytearray()
    for index in range(packets):
        pusi = 0x40 if index == 0 else 0x00
        out.append(TS_SYNC_BYTE)
        out.append(pusi | (pid >> 8))
        out.append(pid & 0xFF)
        out.append(0x10 | (index & 0x0F))  # payload only + continuity
        out.extend(rng.read(TS_PACKET_SIZE - 4))
    return bytes(out)


@dataclass
class TransportStreamInfo:
    """Validation summary of a TS byte stream."""

    packets: int
    pids: tuple[int, ...]
    continuity_errors: int

    @property
    def ok(self) -> bool:
        return self.continuity_errors == 0


def inspect_transport_stream(data: bytes) -> TransportStreamInfo:
    """Validate framing and continuity of a TS byte stream.

    Raises:
        DiscError: for ragged length or missing sync bytes (the
            signature layer treats any byte change as tampering; this
            inspector shows *structural* damage, e.g. a truncated
            download).
    """
    if not data or len(data) % TS_PACKET_SIZE:
        raise DiscError(
            f"TS length {len(data)} is not a multiple of {TS_PACKET_SIZE}"
        )
    pids: list[int] = []
    last_counter: dict[int, int] = {}
    continuity_errors = 0
    for offset in range(0, len(data), TS_PACKET_SIZE):
        packet = data[offset:offset + TS_PACKET_SIZE]
        if packet[0] != TS_SYNC_BYTE:
            raise DiscError(f"missing sync byte at offset {offset}")
        pid = ((packet[1] & 0x1F) << 8) | packet[2]
        counter = packet[3] & 0x0F
        if pid not in last_counter:
            pids.append(pid)
        elif (last_counter[pid] + 1) & 0x0F != counter:
            continuity_errors += 1
        last_counter[pid] = counter
    return TransportStreamInfo(
        packets=len(data) // TS_PACKET_SIZE,
        pids=tuple(pids),
        continuity_errors=continuity_errors,
    )
