"""The Interactive Cluster — top of the content hierarchy (Fig 2).

"At the top of the content hierarchy is the Interactive Cluster, which
is the generic representation of packaged content, including Video,
Audio and markup Application.  The Interactive Cluster contains several
Tracks, which form chapters for Video/Audio Playlist and optionally
manifest (application)."  (§2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.errors import DiscFormatError
from repro.disc.manifest import ApplicationManifest
from repro.disc.playlist import Playlist
from repro.xmlcore import DISC_NS, element, parse_element, serialize
from repro.xmlcore.tree import Element

_track_ids = count(1)

TRACK_AV = "av"
TRACK_APPLICATION = "application"


@dataclass
class Track:
    """One track: an A/V chapter (playlist) or an application (manifest)."""

    kind: str
    playlist: Playlist | None = None
    manifest: ApplicationManifest | None = None
    track_id: str = field(
        default_factory=lambda: f"track-{next(_track_ids)}"
    )
    # True when the track's payload is wholly encrypted (an
    # EncryptedData stands where the playlist/manifest would be); the
    # structured view is opaque until the player decrypts.
    opaque: bool = False

    def __post_init__(self):
        if self.opaque:
            return
        if self.kind == TRACK_AV and self.playlist is None:
            raise DiscFormatError("an av track needs a playlist")
        if self.kind == TRACK_APPLICATION and self.manifest is None:
            raise DiscFormatError("an application track needs a manifest")
        if self.kind not in (TRACK_AV, TRACK_APPLICATION):
            raise DiscFormatError(f"unknown track kind {self.kind!r}")

    def to_element(self) -> Element:
        node = element("track", DISC_NS, attrs={
            "kind": self.kind, "Id": self.track_id,
        })
        if self.playlist is not None:
            node.append(self.playlist.to_element())
        if self.manifest is not None:
            node.append(self.manifest.to_element())
        return node

    @classmethod
    def from_element(cls, node: Element) -> "Track":
        kind = node.get("kind") or ""
        playlist_el = node.first_child("playlist", DISC_NS) \
            or node.first_child("playlist")
        manifest_el = node.first_child("manifest", DISC_NS) \
            or node.first_child("manifest")
        opaque = (
            playlist_el is None and manifest_el is None
            and any(child.local == "EncryptedData"
                    for child in node.child_elements())
        )
        return cls(
            kind=kind,
            playlist=(Playlist.from_element(playlist_el)
                      if playlist_el is not None else None),
            manifest=(ApplicationManifest.from_element(manifest_el)
                      if manifest_el is not None else None),
            track_id=node.get("Id") or f"track-{next(_track_ids)}",
            opaque=opaque,
        )


@dataclass
class InteractiveCluster:
    """The packaged content: tracks of video/audio and applications."""

    title: str
    tracks: list[Track] = field(default_factory=list)
    cluster_id: str = "cluster-1"

    def add_av_track(self, playlist: Playlist) -> Track:
        track = Track(TRACK_AV, playlist=playlist)
        self.tracks.append(track)
        return track

    def add_application_track(self,
                              manifest: ApplicationManifest) -> Track:
        track = Track(TRACK_APPLICATION, manifest=manifest)
        self.tracks.append(track)
        return track

    def av_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.kind == TRACK_AV]

    def application_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.kind == TRACK_APPLICATION]

    def find_application(self, name: str) -> ApplicationManifest | None:
        for track in self.application_tracks():
            if track.manifest is not None and track.manifest.name == name:
                return track.manifest
        return None

    def clip_refs(self) -> list[str]:
        """All clip references used by av tracks (for mastering checks)."""
        refs: list[str] = []
        for track in self.av_tracks():
            assert track.playlist is not None
            refs.extend(track.playlist.clip_refs())
        return refs

    def to_element(self) -> Element:
        node = element(
            "cluster", DISC_NS, nsmap={None: DISC_NS},
            attrs={"Id": self.cluster_id, "title": self.title},
        )
        for track in self.tracks:
            node.append(track.to_element())
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "InteractiveCluster":
        if node.local != "cluster":
            raise DiscFormatError(f"expected cluster, got {node.local!r}")
        return cls(
            title=node.get("title") or "",
            tracks=[
                Track.from_element(child)
                for child in node.child_elements()
                if child.local == "track"
            ],
            cluster_id=node.get("Id") or "cluster-1",
        )

    @classmethod
    def from_xml(cls, text: str | bytes) -> "InteractiveCluster":
        return cls.from_element(parse_element(text))
