"""The Application Manifest: Markup + Code (Fig 2, Fig 10).

"The manifest file consists of two distinct parts, namely the Markup
and the Code.  The Markup part captures the static composition of the
application ... the markup part could contain 'SubMarkups' helping the
separation of various characteristics ... the code part can contain
none or more scripts."  (§2)

Every part carries an ``Id`` so it can be a *markup target* for
selective signing/encryption (Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.errors import DiscFormatError
from repro.xmlcore import DISC_NS, element, parse_element, serialize
from repro.xmlcore.tree import Element, Text

_ids = count(1)


def _auto_id(prefix: str) -> str:
    return f"{prefix}-{next(_ids)}"


@dataclass
class SubMarkup:
    """One facet of the static composition (layout, timing, ...).

    The body is arbitrary markup — typically SMIL-like — owned by the
    content author.
    """

    kind: str
    body: Element
    submarkup_id: str = field(default_factory=lambda: _auto_id("submarkup"))

    def to_element(self) -> Element:
        node = element("submarkup", DISC_NS, attrs={
            "kind": self.kind, "Id": self.submarkup_id,
        })
        node.append(self.body.copy())
        return node

    @classmethod
    def from_element(cls, node: Element) -> "SubMarkup":
        bodies = node.child_elements()
        if len(bodies) != 1:
            raise DiscFormatError(
                "submarkup must contain exactly one body element"
            )
        return cls(
            kind=node.get("kind") or "",
            body=bodies[0].copy(),
            submarkup_id=node.get("Id") or _auto_id("submarkup"),
        )


@dataclass
class Script:
    """One script of the Code part (ECMAScript in the prototype, §8.1)."""

    source: str
    language: str = "ecmascript"
    script_id: str = field(default_factory=lambda: _auto_id("script"))

    def to_element(self) -> Element:
        node = element("script", DISC_NS, attrs={
            "language": self.language, "Id": self.script_id,
        })
        node.append(Text(self.source))
        return node

    @classmethod
    def from_element(cls, node: Element) -> "Script":
        return cls(
            source=node.text_content(),
            language=node.get("language", "ecmascript") or "ecmascript",
            script_id=node.get("Id") or _auto_id("script"),
        )


@dataclass
class ApplicationManifest:
    """The Interactive Application: markup plus code.

    Attributes:
        name: human-readable application name.
        submarkups: the Markup part's facets.
        scripts: the Code part's scripts.
        manifest_id / markup_id / code_id: Ids of the respective
            markup targets (granular signing levels of Fig 5).
    """

    name: str
    submarkups: list[SubMarkup] = field(default_factory=list)
    scripts: list[Script] = field(default_factory=list)
    manifest_id: str = field(default_factory=lambda: _auto_id("manifest"))
    markup_id: str = field(default_factory=lambda: _auto_id("markup"))
    code_id: str = field(default_factory=lambda: _auto_id("code"))

    def add_submarkup(self, kind: str, body: Element) -> SubMarkup:
        sub = SubMarkup(kind, body)
        self.submarkups.append(sub)
        return sub

    def add_script(self, source: str,
                   language: str = "ecmascript") -> Script:
        script = Script(source, language)
        self.scripts.append(script)
        return script

    def submarkup(self, kind: str) -> SubMarkup | None:
        for sub in self.submarkups:
            if sub.kind == kind:
                return sub
        return None

    def to_element(self) -> Element:
        node = element(
            "manifest", DISC_NS, nsmap={None: DISC_NS},
            attrs={"Id": self.manifest_id, "name": self.name},
        )
        markup = element("markup", DISC_NS, attrs={"Id": self.markup_id})
        for sub in self.submarkups:
            markup.append(sub.to_element())
        node.append(markup)
        code = element("code", DISC_NS, attrs={"Id": self.code_id})
        for script in self.scripts:
            code.append(script.to_element())
        node.append(code)
        return node

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "ApplicationManifest":
        if node.local != "manifest":
            raise DiscFormatError(f"expected manifest, got {node.local!r}")
        markup = node.first_child("markup", DISC_NS) \
            or node.first_child("markup")
        code = node.first_child("code", DISC_NS) or node.first_child("code")
        if markup is None or code is None:
            # A part may have been replaced by EncryptedData (Fig 8);
            # the structural view treats it as empty until the player
            # decrypts a working copy.
            has_encrypted = any(
                child.local == "EncryptedData"
                for child in node.child_elements()
            )
            if not has_encrypted:
                raise DiscFormatError(
                    "manifest needs markup and code parts"
                )
        manifest = cls(
            name=node.get("name") or "",
            manifest_id=node.get("Id") or _auto_id("manifest"),
            markup_id=(markup.get("Id") if markup is not None else None)
            or _auto_id("markup"),
            code_id=(code.get("Id") if code is not None else None)
            or _auto_id("code"),
        )
        if markup is not None:
            for child in markup.child_elements():
                if child.local == "submarkup":
                    manifest.submarkups.append(
                        SubMarkup.from_element(child)
                    )
        if code is not None:
            for child in code.child_elements():
                if child.local == "script":
                    manifest.scripts.append(Script.from_element(child))
        return manifest

    @classmethod
    def from_xml(cls, text: str | bytes) -> "ApplicationManifest":
        return cls.from_element(parse_element(text))
