"""Content hierarchy, synthetic streams, disc images and authoring."""

from repro.disc.authoring import DiscAuthor
from repro.disc.clipinfo import ClipInfo
from repro.disc.formats import (
    ALL_FORMATS, BD_ROM, DiscFormat, EDVD, HD_DVD, format_by_name,
)
from repro.disc.hierarchy import (
    TRACK_APPLICATION, TRACK_AV, InteractiveCluster, Track,
)
from repro.disc.image import (
    AUXDATA_DIR, CLIPINF_DIR, CLUSTER_PATH, STREAM_DIR, DiscImage,
    clipinfo_path, path_to_uri, stream_path, uri_to_path,
)
from repro.disc.manifest import ApplicationManifest, Script, SubMarkup
from repro.disc.playlist import PlayItem, Playlist
from repro.disc.tsgen import (
    TS_PACKET_SIZE, TS_SYNC_BYTE, TransportStreamInfo,
    generate_transport_stream, inspect_transport_stream,
)

__all__ = [
    "DiscAuthor", "DiscImage", "InteractiveCluster", "Track",
    "ApplicationManifest", "SubMarkup", "Script",
    "Playlist", "PlayItem", "ClipInfo",
    "TRACK_AV", "TRACK_APPLICATION",
    "generate_transport_stream", "inspect_transport_stream",
    "TransportStreamInfo", "TS_PACKET_SIZE", "TS_SYNC_BYTE",
    "CLUSTER_PATH", "STREAM_DIR", "CLIPINF_DIR", "AUXDATA_DIR",
    "stream_path", "clipinfo_path", "path_to_uri", "uri_to_path",
    "DiscFormat", "BD_ROM", "HD_DVD", "EDVD", "ALL_FORMATS",
    "format_by_name",
]
