"""The disc image: a virtual file system standing in for a BD-ROM.

The real substrate would be a mastered optical disc; the simulation
(DESIGN.md §2) is a path → bytes mapping with the familiar BDMV-style
layout, a ``bd://`` URI resolver (used by signature references,
CipherReference and the player), and round-tripping to a directory on
the host file system.

Layout::

    BDMV/CLUSTER/cluster.xml    the Interactive Cluster markup
    BDMV/STREAM/<id>.m2ts       transport stream files
    BDMV/CLIPINF/<id>.clpi      clip information files
    BDMV/AUXDATA/...            anything else (ciphertext blobs, certs)
"""

from __future__ import annotations

import os

from repro.errors import DiscFormatError
from repro.perf import metrics
from repro.disc.clipinfo import ClipInfo
from repro.disc.formats import BD_ROM, DiscFormat
from repro.disc.hierarchy import InteractiveCluster
from repro.resilience.limits import ResourceGuard
from repro.xmlcore import parse_element

CLUSTER_PATH = "BDMV/CLUSTER/cluster.xml"
STREAM_DIR = "BDMV/STREAM"
CLIPINF_DIR = "BDMV/CLIPINF"
AUXDATA_DIR = "BDMV/AUXDATA"

URI_SCHEME = "bd://"


def stream_path(clip_id: str) -> str:
    """BD-ROM stream path for *clip_id* (module-level BD default)."""
    return f"{STREAM_DIR}/{clip_id}.m2ts"


def clipinfo_path(clip_id: str) -> str:
    """BD-ROM clip-info path for *clip_id* (module-level BD default)."""
    return f"{CLIPINF_DIR}/{clip_id}.clpi"


def path_to_uri(path: str) -> str:
    """Disc path → ``bd://`` URI."""
    return URI_SCHEME + path


def uri_to_path(uri: str) -> str:
    """``bd://`` URI → disc path."""
    if not uri.startswith(URI_SCHEME):
        raise DiscFormatError(f"not a disc URI: {uri!r}")
    return uri[len(URI_SCHEME):]


class DiscImage:
    """An in-memory mastered disc.

    Args:
        files: initial path → bytes contents.
        layout: the disc format conventions (default BD-ROM); all
            structured accessors and the URI resolver follow it.
    """

    def __init__(self, files: dict[str, bytes] | None = None,
                 layout: DiscFormat = BD_ROM):
        self._files: dict[str, bytes] = dict(files or {})
        self.layout = layout

    # -- file access -------------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        if path.startswith("/") or ".." in path.split("/"):
            raise DiscFormatError(f"illegal disc path {path!r}")
        self._files[path] = bytes(data)

    def read(self, path: str) -> bytes:
        try:
            data = self._files[path]
        except KeyError:
            raise DiscFormatError(
                f"disc has no file {path!r}"
            ) from None
        metrics.counter("disc.reads").increment()
        metrics.counter("disc.read_bytes").increment(len(data))
        return data

    def exists(self, path: str) -> bool:
        return path in self._files

    def paths(self) -> list[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        return sum(len(v) for v in self._files.values())

    def resolver(self, uri: str) -> bytes:
        """Resolve a disc URI (signature/encryption references)."""
        return self.read(self.layout.uri_to_path(uri))

    # -- structured accessors ---------------------------------------------------------

    def cluster_path(self) -> str:
        return self.layout.cluster_path()

    def cluster(self) -> InteractiveCluster:
        """Parse the Interactive Cluster markup.

        Disc markup is untrusted input (a hostile disc is the paper's
        first threat vector), so the parse runs under default resource
        quotas.
        """
        return InteractiveCluster.from_element(
            parse_element(self.read(self.layout.cluster_path()),
                          guard=ResourceGuard.default())
        )

    def cluster_element(self):
        """The raw cluster element (for verification in context)."""
        return parse_element(self.read(self.layout.cluster_path()),
                             guard=ResourceGuard.default())

    def clip_info(self, clip_id: str) -> ClipInfo:
        return ClipInfo.from_xml(
            self.read(self.layout.clipinfo_path(clip_id))
        )

    def stream(self, clip_id: str) -> bytes:
        return self.read(self.layout.stream_path(clip_id))

    def validate_structure(self) -> list[str]:
        """Return a list of structural problems (empty = consistent).

        Checks that the cluster parses and that every referenced clip
        has both its stream and its clip-information file.
        """
        problems: list[str] = []
        if not self.exists(self.layout.cluster_path()):
            return [f"missing {self.layout.cluster_path()}"]
        try:
            cluster = self.cluster()
        except Exception as exc:
            return [f"cluster does not parse: {exc}"]
        for ref in cluster.clip_refs():
            if not self.exists(self.layout.stream_path(ref)):
                problems.append(f"clip {ref}: missing stream file")
            if not self.exists(self.layout.clipinfo_path(ref)):
                problems.append(f"clip {ref}: missing clip info")
        return problems

    # -- host file system round trip -----------------------------------------------------

    def save_to_directory(self, directory: str) -> None:
        """Write the image under *directory* (creating subdirectories)."""
        for path, data in self._files.items():
            full = os.path.join(directory, path)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "wb") as handle:
                handle.write(data)

    def save_to_file(self, path: str) -> None:
        """Write the image as a single archive file (a stand-in for the
        mastered ``.iso``).  Uncompressed, so signed byte identity of
        every member is trivially preserved."""
        import zipfile
        with zipfile.ZipFile(path, "w",
                             compression=zipfile.ZIP_STORED) as archive:
            for member, data in sorted(self._files.items()):
                archive.writestr(member, data)

    @classmethod
    def load_from_file(cls, path: str,
                       layout: DiscFormat = BD_ROM) -> "DiscImage":
        """Read an image written by :meth:`save_to_file`."""
        import zipfile
        image = cls(layout=layout)
        try:
            with zipfile.ZipFile(path) as archive:
                for member in archive.namelist():
                    image.write(member, archive.read(member))
        except zipfile.BadZipFile as exc:
            raise DiscFormatError(
                f"not a disc image file: {exc}"
            ) from None
        return image

    @classmethod
    def load_from_directory(cls, directory: str,
                            layout: DiscFormat = BD_ROM) -> "DiscImage":
        """Read an image previously saved with :meth:`save_to_directory`."""
        image = cls(layout=layout)
        for dirpath, _dirnames, filenames in os.walk(directory):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, directory).replace(os.sep, "/")
                with open(full, "rb") as handle:
                    image.write(rel, handle.read())
        return image

    def __repr__(self):
        return (
            f"<DiscImage files={len(self._files)} "
            f"bytes={self.total_bytes()}>"
        )
