"""Disc authoring: from content pieces to a mastered disc image.

Models the content-creator side of the end-to-end usage model (Fig 1):
clips are generated (or supplied), clip info derived, playlists and
application manifests assembled into an Interactive Cluster, and the
whole mastered into a :class:`DiscImage`.  Security (signing,
encryption) is applied by :mod:`repro.core.authoring_pipeline` on top
of this content-only layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AuthoringError
from repro.disc.clipinfo import ClipInfo
from repro.disc.hierarchy import InteractiveCluster
from repro.disc.formats import BD_ROM, DiscFormat
from repro.disc.image import DiscImage
from repro.disc.manifest import ApplicationManifest
from repro.disc.playlist import Playlist
from repro.disc.tsgen import TS_PACKET_SIZE, generate_transport_stream
from repro.primitives.random import RandomSource, default_random
from repro.xmlcore import serialize_bytes

# Rough default: ~24 Mbit/s HD stream → packets per second.
_PACKETS_PER_SECOND = 24_000_000 // (8 * TS_PACKET_SIZE)


@dataclass
class DiscAuthor:
    """Incremental builder for a disc image.

    Args:
        title: disc title (cluster title).
        rng: randomness for synthetic stream payloads.
    """

    title: str
    rng: RandomSource = field(default_factory=default_random)
    disc_format: DiscFormat = BD_ROM

    def __post_init__(self):
        self._cluster = InteractiveCluster(title=self.title)
        self._streams: dict[str, bytes] = {}
        self._clip_infos: dict[str, ClipInfo] = {}
        self._aux: dict[str, bytes] = {}
        self._next_clip = 1

    @property
    def cluster(self) -> InteractiveCluster:
        return self._cluster

    # -- content -----------------------------------------------------------------

    def add_clip(self, duration_s: float, *,
                 stream: bytes | None = None,
                 packets_per_second: int = 200) -> ClipInfo:
        """Add an A/V clip; generates a synthetic stream unless given one.

        *packets_per_second* scales the synthetic stream size (the
        real-world rate of ~16k packets/s would make experiment
        payloads needlessly large; benches override as needed).
        """
        if duration_s <= 0:
            raise AuthoringError("clip duration must be positive")
        clip_id = f"{self._next_clip:05d}"
        self._next_clip += 1
        if stream is None:
            packets = max(1, int(duration_s * packets_per_second))
            stream = generate_transport_stream(packets, rng=self.rng)
        info = ClipInfo(
            clip_id=clip_id,
            stream_uri=self.disc_format.path_to_uri(
                self.disc_format.stream_path(clip_id)
            ),
            duration_s=duration_s,
            packets=len(stream) // TS_PACKET_SIZE,
        )
        self._streams[clip_id] = stream
        self._clip_infos[clip_id] = info
        return info

    def add_feature(self, name: str,
                    chapter_clips: list[ClipInfo]) -> Playlist:
        """Add an A/V track whose chapters are the given clips."""
        playlist = Playlist(name=name)
        for info in chapter_clips:
            playlist.add_item(info.clip_id, 0.0, info.duration_s)
        self._cluster.add_av_track(playlist)
        return playlist

    def add_application(self, manifest: ApplicationManifest) -> None:
        """Add an application track."""
        self._cluster.add_application_track(manifest)

    def add_aux_file(self, path: str, data: bytes) -> None:
        """Stash an auxiliary file (certificates, ciphertext blobs...)."""
        self._aux[path] = data

    # -- mastering ------------------------------------------------------------------

    def master(self) -> DiscImage:
        """Produce the disc image and validate its structure."""
        image = DiscImage(layout=self.disc_format)
        image.write(
            self.disc_format.cluster_path(),
            serialize_bytes(self._cluster.to_element()),
        )
        for clip_id, stream in self._streams.items():
            image.write(self.disc_format.stream_path(clip_id), stream)
            image.write(
                self.disc_format.clipinfo_path(clip_id),
                self._clip_infos[clip_id].to_xml().encode("utf-8"),
            )
        for path, data in self._aux.items():
            image.write(path, data)
        problems = image.validate_structure()
        if problems:
            raise AuthoringError(
                "mastered image is inconsistent: " + "; ".join(problems)
            )
        return image
