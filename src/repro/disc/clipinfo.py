"""Clip Information files — metadata linking playlists to stream files.

In the content hierarchy (Fig 2) playlists "refer to Clip Information,
which ultimately links to the Mpeg-2 Transport Stream file."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscFormatError
from repro.xmlcore import DISC_NS, element, parse_element, serialize
from repro.xmlcore.tree import Element


@dataclass(frozen=True)
class ClipInfo:
    """Metadata for one A/V clip.

    Attributes:
        clip_id: five-digit clip identifier (e.g. ``"00001"``).
        stream_uri: disc URI of the transport stream file.
        duration_s: presentation duration in seconds.
        packets: number of TS packets in the stream.
    """

    clip_id: str
    stream_uri: str
    duration_s: float
    packets: int

    def to_element(self) -> Element:
        return element(
            "clipInfo", DISC_NS, nsmap={None: DISC_NS},
            attrs={
                "clipId": self.clip_id,
                "stream": self.stream_uri,
                "duration": repr(self.duration_s),
                "packets": str(self.packets),
            },
        )

    def to_xml(self) -> str:
        return serialize(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, node: Element) -> "ClipInfo":
        if node.local != "clipInfo":
            raise DiscFormatError(f"expected clipInfo, got {node.local!r}")
        try:
            return cls(
                clip_id=node.get("clipId") or "",
                stream_uri=node.get("stream") or "",
                duration_s=float(node.get("duration", "0")),
                packets=int(node.get("packets", "0")),
            )
        except ValueError as exc:
            raise DiscFormatError(f"malformed clipInfo: {exc}") from None

    @classmethod
    def from_xml(cls, text: str | bytes) -> "ClipInfo":
        return cls.from_element(parse_element(text))
