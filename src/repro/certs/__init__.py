"""Certificates, authorities, chains and the player trust store."""

from repro.certs.authority import CertificateAuthority, SigningIdentity
from repro.certs.certificate import CERT_NS, Certificate
from repro.certs.store import RevocationList, TrustStore, ValidationResult

__all__ = [
    "CERT_NS", "Certificate", "CertificateAuthority", "SigningIdentity",
    "RevocationList", "TrustStore", "ValidationResult",
]
