"""The player's trust store: root certificates, chain validation, CRLs.

Models the paper's §5.5: "a mechanism for the verification of
certificates leading to a trusted root certificate within the player."
The store holds the trusted roots a manufacturer bakes into the device,
plus an updatable revocation list; :meth:`TrustStore.validate_chain`
performs path building and validation.

Revocations are the one piece of trust state that must survive power
cycles — a revoked certificate that silently un-revokes across a
reboot re-opens the exact hole the CRL closed.  Attaching a
:class:`~repro.resilience.durable.DurableStore`
(:meth:`TrustStore.attach_durable`) journals every revocation before
it takes effect and replays the acknowledged set on restart.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.errors import (
    CertificateExpiredError, CertificateRevokedError,
    CertificateVerificationError, DurableStateError, UntrustedRootError,
)
from repro.primitives.provider import CryptoProvider, get_provider
from repro.certs.certificate import Certificate

if TYPE_CHECKING:  # avoid the certs → resilience → network → certs cycle
    from repro.resilience.durable import DurableStore

#: durable-store namespace CRL entries live in (key ``"serial:issuer"``).
CRL_NAMESPACE = "crl"


@dataclass
class RevocationList:
    """A set of revoked (issuer, serial) pairs — a minimal CRL.

    ``generation`` increments on every revocation so memoized chain
    validations (``repro.perf.cache``) are invalidated the moment the
    list changes.
    """

    revoked: set[tuple[str, int]] = field(default_factory=set)
    generation: int = 0
    _durable: DurableStore | None = field(default=None, repr=False)
    # Revocations arrive from any session while verifiers read the
    # set; the add + generation bump must be atomic or a concurrent
    # bump is lost and a memoized validation outlives the CRL change.
    # The durable journal write stays *outside* the lock — fsync must
    # never run with the revocation lock held.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def revoke(self, certificate: Certificate) -> None:
        self.revoke_entry(certificate.issuer, certificate.serial)

    def revoke_entry(self, issuer: str, serial: int) -> None:
        if self._durable is not None:
            # Journal-then-apply: the revocation is only acknowledged
            # once the commit's fsync returns, so it can never be
            # observed in memory and then lost to a power cut.
            self._durable.set(CRL_NAMESPACE, f"{serial}:{issuer}", b"")
            self._durable.commit()
        with self._lock:
            self.revoked.add((issuer, serial))
            self.generation += 1

    def attach_durable(self, store: DurableStore) -> None:
        """Replay acknowledged revocations from *store*, then journal
        every future revocation through it.

        Raises:
            DurableStateError: when a persisted CRL entry does not
                decode as a ``serial:issuer`` pair.
        """
        replayed: list[tuple[str, int]] = []
        for entry in store.keys(CRL_NAMESPACE):
            serial_text, sep, issuer = entry.partition(":")
            if not sep or not serial_text.isdigit():
                raise DurableStateError(
                    "persisted CRL entry does not decode",
                    kind="tamper",
                )
            replayed.append((issuer, int(serial_text)))
        with self._lock:
            self.revoked.update(replayed)
            if replayed:
                self.generation += 1
            self._durable = store

    def is_revoked(self, certificate: Certificate) -> bool:
        return (certificate.issuer, certificate.serial) in self.revoked


@dataclass
class ValidationResult:
    """Outcome of a chain validation."""

    valid: bool
    chain: list[Certificate]
    reason: str = ""

    def __bool__(self):
        return self.valid


class TrustStore:
    """Root certificates plus revocation state.

    Args:
        roots: trusted (typically self-signed CA) certificates.
        provider: crypto provider for signature checks.
        max_chain_length: path-length cap (defence against absurd
            chains in hostile downloads).
    """

    def __init__(self, roots: list[Certificate] | None = None,
                 provider: CryptoProvider | None = None,
                 max_chain_length: int = 8):
        self._roots: dict[str, Certificate] = {}
        self._intermediates: dict[str, list[Certificate]] = {}
        # Resolved lazily: a store built before a provider switch
        # (REPRO_PROVIDER / set_default_provider) must not pin chain
        # validation to the provider active at construction time.
        self._provider = provider
        self._crl = RevocationList()
        self._generation = 0
        self.max_chain_length = max_chain_length
        # Guards anchor/intermediate tables and the generation stamp;
        # signature checks always run outside it.
        self._lock = threading.Lock()
        for root in roots or []:
            self.add_root(root)

    @property
    def provider(self) -> CryptoProvider:
        """The pinned provider, or the current process default."""
        return self._provider or get_provider()

    @provider.setter
    def provider(self, value: CryptoProvider | None) -> None:
        with self._lock:
            self._provider = value

    # -- store management ---------------------------------------------------------

    def add_root(self, certificate: Certificate) -> None:
        """Trust *certificate* as an anchor (must be a self-signed CA)."""
        if not certificate.is_ca:
            raise CertificateVerificationError(
                "trust anchors must be CA certificates"
            )
        if certificate.subject != certificate.issuer:
            raise CertificateVerificationError(
                "trust anchors must be self-signed"
            )
        if not certificate.check_signature(certificate.public_key,
                                           self.provider):
            raise CertificateVerificationError(
                "trust anchor's self-signature does not verify"
            )
        with self._lock:
            self._roots[certificate.subject] = certificate
            self._generation += 1

    def add_intermediate(self, certificate: Certificate) -> None:
        """Cache an intermediate for path building."""
        with self._lock:
            self._intermediates.setdefault(
                certificate.subject, []
            ).append(certificate)
            self._generation += 1

    @property
    def generation(self) -> tuple[int, int]:
        """Mutation stamp: changes whenever the anchors, intermediates
        or the revocation list change, so memoized chain validations
        can never outlive the trust state they were computed under."""
        with self._lock:
            return (self._generation, self._crl.generation)

    @property
    def roots(self) -> list[Certificate]:
        return list(self._roots.values())

    @property
    def crl(self) -> RevocationList:
        return self._crl

    def revoke(self, certificate: Certificate) -> None:
        self._crl.revoke(certificate)

    def attach_durable(self, store: DurableStore) -> None:
        """Replay acknowledged revocations from *store*, then journal
        every future revocation through it (see
        :meth:`RevocationList.attach_durable`)."""
        self._crl.attach_durable(store)

    # -- validation ----------------------------------------------------------------

    def validate_chain(self, chain: list[Certificate], *,
                       now: float = 0.0,
                       usage: str | None = "digitalSignature",
                       ) -> ValidationResult:
        """Validate a leaf-first certificate chain.

        Builds a path from ``chain[0]`` to one of the trusted roots —
        using the supplied chain and any cached intermediates — and
        checks signatures, validity windows, CA flags, key usage and
        revocation along the way.  Returns a :class:`ValidationResult`
        rather than raising, so callers can decide between strict and
        advisory handling.
        """
        if not chain:
            return ValidationResult(False, [], "empty certificate chain")
        # One provider snapshot per validation: a concurrent provider
        # swap must not split a chain between two implementations.
        provider = self.provider
        supplied = {
            (c.subject, c.serial): c for c in chain
        }
        path: list[Certificate] = [chain[0]]
        current = chain[0]
        try:
            if usage is not None and not current.allows_usage(usage):
                raise CertificateVerificationError(
                    f"leaf certificate does not allow {usage!r}"
                )
            while True:
                if len(path) > self.max_chain_length:
                    raise CertificateVerificationError(
                        "certificate chain too long"
                    )
                if self._crl.is_revoked(current):
                    raise CertificateRevokedError(
                        f"certificate {current.subject!r} "
                        f"(serial {current.serial}) is revoked"
                    )
                if not current.is_valid_at(now):
                    raise CertificateExpiredError(
                        f"certificate {current.subject!r} is outside its "
                        f"validity window at t={now}"
                    )
                root = self._roots.get(current.issuer)
                if root is not None:
                    if not current.check_signature(root.public_key,
                                                   provider):
                        raise CertificateVerificationError(
                            f"signature on {current.subject!r} does not "
                            f"verify under root {root.subject!r}"
                        )
                    if self._crl.is_revoked(root):
                        raise CertificateRevokedError(
                            f"root {root.subject!r} is revoked"
                        )
                    path.append(root)
                    return ValidationResult(True, path)
                issuer_cert = self._find_issuer(current, supplied)
                if issuer_cert is None:
                    raise UntrustedRootError(
                        f"no path from {current.subject!r} to a trusted root"
                    )
                if not issuer_cert.is_ca:
                    raise CertificateVerificationError(
                        f"issuer {issuer_cert.subject!r} is not a CA"
                    )
                if not issuer_cert.allows_usage("keyCertSign"):
                    raise CertificateVerificationError(
                        f"issuer {issuer_cert.subject!r} may not sign "
                        "certificates"
                    )
                if not current.check_signature(issuer_cert.public_key,
                                               provider):
                    raise CertificateVerificationError(
                        f"signature on {current.subject!r} does not verify "
                        f"under {issuer_cert.subject!r}"
                    )
                path.append(issuer_cert)
                current = issuer_cert
        except CertificateVerificationError as exc:
            return ValidationResult(False, path, str(exc))

    def _find_issuer(self, certificate: Certificate,
                     supplied: dict) -> Certificate | None:
        for (subject, _serial), candidate in supplied.items():
            if subject == certificate.issuer \
                    and candidate is not certificate:
                return candidate
        for candidate in self._intermediates.get(certificate.issuer, []):
            return candidate
        return None
