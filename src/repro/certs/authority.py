"""Certificate authorities for the content-distribution trust model.

The end-to-end scenario of the paper (Fig 1, Fig 3) involves several
signing parties — content creators, application authors, disc
manufacturers — whose certificates chain up to root certificates baked
into the player.  :class:`CertificateAuthority` models any party that
can issue certificates: a self-signed root, an intermediate, or a leaf
issuer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CertificateError
from repro.primitives.keys import RSAPrivateKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.primitives.random import RandomSource, default_random
from repro.primitives.rsa import generate_keypair
from repro.certs.certificate import Certificate

_DEFAULT_VALIDITY = 10 * 365 * 24 * 3600.0  # ten years of simulation time


@dataclass
class CertificateAuthority:
    """A certificate-issuing party.

    Attributes:
        name: the authority's distinguished name (also the issuer name
            on everything it signs).
        key: the authority's private key.
        certificate: the authority's own certificate (self-signed for a
            root, issued by a parent otherwise).
    """

    name: str
    key: RSAPrivateKey
    certificate: Certificate
    _provider: CryptoProvider = field(repr=False, default=None)  # type: ignore[assignment]
    _next_serial: int = 1

    @classmethod
    def create_root(cls, name: str, key_bits: int = 1024, *,
                    now: float = 0.0,
                    validity: float = _DEFAULT_VALIDITY,
                    rng: RandomSource | None = None,
                    provider: CryptoProvider | None = None,
                    ) -> "CertificateAuthority":
        """Create a self-signed root authority."""
        rng = rng or default_random()
        provider = provider or get_provider()
        key = generate_keypair(key_bits, rng)
        cert = Certificate(
            subject=name, issuer=name, serial=0,
            public_key=key.public_key(),
            not_before=now, not_after=now + validity,
            is_ca=True, key_usage=("keyCertSign", "cRLSign"),
        ).signed_by(key, provider)
        return cls(name=name, key=key, certificate=cert, _provider=provider)

    def issue(self, subject: str, public_key, *,
              now: float = 0.0,
              validity: float = _DEFAULT_VALIDITY,
              is_ca: bool = False,
              key_usage: tuple[str, ...] = ("digitalSignature",),
              ) -> Certificate:
        """Issue a certificate for *subject*'s *public_key*."""
        if not self.certificate.is_ca:
            raise CertificateError(
                f"{self.name!r} is not a CA and cannot issue certificates"
            )
        serial = self._next_serial
        self._next_serial += 1
        cert = Certificate(
            subject=subject, issuer=self.name, serial=serial,
            public_key=public_key,
            not_before=now, not_after=now + validity,
            is_ca=is_ca, key_usage=key_usage,
        )
        return cert.signed_by(self.key, self._provider or get_provider())

    def create_intermediate(self, name: str, key_bits: int = 1024, *,
                            now: float = 0.0,
                            validity: float = _DEFAULT_VALIDITY,
                            rng: RandomSource | None = None,
                            ) -> "CertificateAuthority":
        """Create and certify a subordinate CA."""
        rng = rng or default_random()
        key = generate_keypair(key_bits, rng)
        cert = self.issue(
            name, key.public_key(), now=now, validity=validity,
            is_ca=True, key_usage=("keyCertSign", "cRLSign"),
        )
        return CertificateAuthority(
            name=name, key=key, certificate=cert,
            _provider=self._provider or get_provider(),
        )


@dataclass
class SigningIdentity:
    """A leaf signer: private key plus its certificate chain.

    ``chain`` runs leaf-first and excludes the root (players hold the
    roots).  This is what a content creator or application author uses
    with :class:`repro.dsig.Signer`.
    """

    name: str
    key: RSAPrivateKey
    chain: list[Certificate]

    @property
    def certificate(self) -> Certificate:
        return self.chain[0]

    @classmethod
    def create(cls, name: str, issuer: CertificateAuthority, *,
               key_bits: int = 1024, now: float = 0.0,
               validity: float = _DEFAULT_VALIDITY,
               rng: RandomSource | None = None,
               issuer_chain: list[Certificate] | None = None,
               ) -> "SigningIdentity":
        """Generate a key pair and have *issuer* certify it.

        *issuer_chain* supplies the intermediate certificates between
        the issuer and the root (issuer's own certificate is appended
        automatically when it is not self-signed).
        """
        rng = rng or default_random()
        key = generate_keypair(key_bits, rng)
        cert = issuer.issue(name, key.public_key(), now=now,
                            validity=validity)
        chain = [cert]
        if issuer.certificate.subject != issuer.certificate.issuer:
            chain.append(issuer.certificate)
        if issuer_chain:
            chain.extend(issuer_chain)
        return cls(name=name, key=key, chain=chain)
