"""XML-serialized certificates binding names to RSA public keys.

The paper (§5.5) relies on certificate-based authentication: signatures
carry certificates, and the player verifies them against "a trusted
root certificate within the player" (the MHP-style chain model of its
reference [8]).  Real deployments use ASN.1/DER X.509; this library
keeps the identical *semantics* — issuer-signed bindings of subject
name → public key with validity windows, serial numbers, basic
constraints and key-usage bits — but serializes certificates as XML,
which the rest of the stack can embed directly in ``ds:X509Data``-style
structures.  (DESIGN.md §2 records this substitution.)

A certificate's signature is an RSA PKCS#1 v1.5 signature over the
canonical form (C14N) of its ``TBSCertificate`` element, mirroring the
to-be-signed region of X.509.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CertificateError
from repro.primitives.encoding import b64decode, b64encode
from repro.primitives.keys import RSAPrivateKey, RSAPublicKey
from repro.primitives.provider import CryptoProvider, get_provider
from repro.xmlcore import canonicalize, element, parse_element, serialize
from repro.xmlcore.tree import Element

CERT_NS = "urn:repro:certificates"

KEY_USAGE_FLAGS = (
    "digitalSignature", "keyEncipherment", "keyCertSign", "cRLSign",
)


@dataclass
class Certificate:
    """An issued certificate.

    Attributes:
        subject: distinguished name of the key holder (free-form string,
            e.g. ``"CN=Contoso Studios,O=Content Provider"``).
        issuer: distinguished name of the signer.
        serial: issuer-unique serial number.
        public_key: the certified RSA public key.
        not_before / not_after: validity window, seconds on the
            simulation clock (any monotonic epoch).
        is_ca: basic-constraints CA flag.
        key_usage: enabled key-usage flags.
        signature: issuer signature over the TBS region (``b""`` until
            signed).
        signature_digest: digest algorithm of the signature.
    """

    subject: str
    issuer: str
    serial: int
    public_key: RSAPublicKey
    not_before: float
    not_after: float
    is_ca: bool = False
    key_usage: tuple[str, ...] = ("digitalSignature",)
    signature: bytes = b""
    signature_digest: str = "sha256"

    def __post_init__(self):
        if self.not_after <= self.not_before:
            raise CertificateError("certificate validity window is empty")
        for flag in self.key_usage:
            if flag not in KEY_USAGE_FLAGS:
                raise CertificateError(f"unknown key usage flag {flag!r}")

    # -- serialization ----------------------------------------------------------

    def tbs_element(self) -> Element:
        """The to-be-signed region as an XML element."""
        key = element("KeyValue", CERT_NS)
        for name, value in self.public_key.to_dict().items():
            key.append(element(name, CERT_NS, text=value))
        tbs = element(
            "TBSCertificate", CERT_NS,
            nsmap={None: CERT_NS},
            attrs={"serial": str(self.serial)},
        )
        tbs.append(element("Subject", CERT_NS, text=self.subject))
        tbs.append(element("Issuer", CERT_NS, text=self.issuer))
        validity = element("Validity", CERT_NS, attrs={
            "notBefore": repr(self.not_before),
            "notAfter": repr(self.not_after),
        })
        tbs.append(validity)
        tbs.append(key)
        constraints = element("BasicConstraints", CERT_NS,
                              attrs={"ca": "true" if self.is_ca else "false"})
        tbs.append(constraints)
        usage = element("KeyUsage", CERT_NS,
                        text=" ".join(self.key_usage))
        tbs.append(usage)
        return tbs

    def _tbs_key(self) -> tuple:
        return (
            self.subject, self.issuer, self.serial,
            self.public_key.n, self.public_key.e,
            self.not_before, self.not_after,
            self.is_ca, self.key_usage,
        )

    def tbs_bytes(self) -> bytes:
        """Canonical octets of the TBS region (the signed content).

        Memoized on the value of every TBS field: chain validation
        digests the same certificates over and over, and rebuilding +
        canonicalizing the TBS element dominates that path.  A tampered
        field changes the key, so the memo can never serve stale
        octets.
        """
        key = self._tbs_key()
        memo = getattr(self, "_tbs_memo", None)
        if memo is not None and memo[0] == key:
            return memo[1]
        octets = canonicalize(self.tbs_element())
        self._tbs_memo = (key, octets)
        return octets

    def to_element(self) -> Element:
        """Full certificate as an XML element."""
        cert = element("Certificate", CERT_NS, nsmap={None: CERT_NS})
        cert.append(self.tbs_element())
        sig = element("SignatureValue", CERT_NS,
                      text=b64encode(self.signature),
                      attrs={"digest": self.signature_digest})
        cert.append(sig)
        return cert

    def to_xml(self) -> str:
        return serialize(self.to_element())

    @classmethod
    def from_element(cls, node: Element) -> "Certificate":
        if node.local != "Certificate":
            raise CertificateError(
                f"expected Certificate element, got {node.local!r}"
            )
        tbs = node.first_child("TBSCertificate")
        sig = node.first_child("SignatureValue")
        if tbs is None or sig is None:
            raise CertificateError("certificate element is incomplete")

        def text_of(parent: Element, name: str) -> str:
            child = parent.first_child(name)
            if child is None:
                raise CertificateError(f"certificate missing <{name}>")
            return child.text_content()

        validity = tbs.first_child("Validity")
        key_el = tbs.first_child("KeyValue")
        constraints = tbs.first_child("BasicConstraints")
        if validity is None or key_el is None or constraints is None:
            raise CertificateError("certificate element is incomplete")
        try:
            public_key = RSAPublicKey.from_dict({
                "Modulus": text_of(key_el, "Modulus"),
                "Exponent": text_of(key_el, "Exponent"),
            })
            cert = cls(
                subject=text_of(tbs, "Subject"),
                issuer=text_of(tbs, "Issuer"),
                serial=int(tbs.get("serial", "0")),
                public_key=public_key,
                not_before=float(validity.get("notBefore", "0")),
                not_after=float(validity.get("notAfter", "0")),
                is_ca=constraints.get("ca") == "true",
                key_usage=tuple(text_of(tbs, "KeyUsage").split()),
                signature=b64decode(sig.text_content()),
                signature_digest=sig.get("digest", "sha256"),
            )
        except (ValueError, CertificateError) as exc:
            raise CertificateError(f"malformed certificate: {exc}") from None
        return cert

    @classmethod
    def from_xml(cls, text: str | bytes) -> "Certificate":
        return cls.from_element(parse_element(text))

    # -- signing / checking -------------------------------------------------------

    def signed_by(self, issuer_key: RSAPrivateKey,
                  provider: CryptoProvider | None = None) -> "Certificate":
        """Return a copy of this certificate signed with *issuer_key*."""
        provider = provider or get_provider()
        digest = provider.digest(self.signature_digest, self.tbs_bytes())
        signature = provider.rsa_sign_digest(
            issuer_key, digest, self.signature_digest
        )
        return Certificate(
            subject=self.subject, issuer=self.issuer, serial=self.serial,
            public_key=self.public_key, not_before=self.not_before,
            not_after=self.not_after, is_ca=self.is_ca,
            key_usage=self.key_usage, signature=signature,
            signature_digest=self.signature_digest,
        )

    def check_signature(self, issuer_key: RSAPublicKey,
                        provider: CryptoProvider | None = None) -> bool:
        """True if the certificate's signature verifies under *issuer_key*."""
        if not self.signature:
            return False
        provider = provider or get_provider()
        digest = provider.digest(self.signature_digest, self.tbs_bytes())
        return provider.rsa_verify_digest(
            issuer_key, digest, self.signature, self.signature_digest
        )

    def is_valid_at(self, when: float) -> bool:
        """True if *when* falls inside the validity window."""
        return self.not_before <= when <= self.not_after

    def allows_usage(self, usage: str) -> bool:
        return usage in self.key_usage

    def fingerprint(self) -> str:
        """Hex SHA-256 over the canonical TBS region."""
        from repro.primitives.provider import get_provider
        return get_provider().digest("sha256", self.tbs_bytes()).hex()[:40]

    def __repr__(self):
        return (
            f"<Certificate subject={self.subject!r} issuer={self.issuer!r} "
            f"serial={self.serial}>"
        )
