"""Benchmark-regression gate for CI.

Runs a small, deterministic subset of the ABL benchmarks, writes the
results to a JSON artifact (``BENCH_PR2.json`` by default) and fails —
exit status 1 — when any tracked metric regresses more than the
threshold (20% by default) against the committed
``benchmarks/baseline.json``.

Robustness against machine-speed differences between the committing
machine and the CI runner: every absolute timing is divided by a
*calibration* measurement (pure-Python SHA-256 over a fixed payload on
the same interpreter), so tracked values are dimensionless multiples
of the machine's own crypto throughput.  Ratio metrics (speedups, hit
ratios) need no normalization at all.

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py \
        --output BENCH_PR2.json
    PYTHONPATH=src python benchmarks/bench_regression.py \
        --update-baseline        # refresh benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _workloads import (  # noqa: E402
    build_manifest,
    build_world,
    measure,
    measure_pair,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baseline.json",
)

#: metric name -> which direction counts as a regression.
DIRECTIONS = {
    # dimensionless multiples of the calibration time; lower is better
    "verify_sequential_8_norm": "lower",
    "verify_batch_warm_8_norm": "lower",
    "c14n_manifest_norm": "lower",
    "sign_detached_norm": "lower",
    "audit_8sig_norm": "lower",
    # accelerated-provider legs (PR 7): the hardware-crypto deployment
    # shape must stay >= 5x faster than the pure baseline was
    "sign_detached_accel_norm": "lower",
    "verify_sequential_8_accel_norm": "lower",
    # streaming C14N vs whole-tree canonicalization on the same
    # manifest; ~1.0 means chunked emission is free
    "c14n_stream_ratio": "lower",
    # pure ratios; higher is better
    "batch_speedup": "higher",
    "warm_digest_hit_ratio": "higher",
    # ABL-GUARD: guarded / unguarded warm batch verify; lower is better
    # (1.0 = free; the acceptance envelope is <= 1.05 on the committing
    # machine, gated here at baseline * (1 + threshold) for CI noise)
    "guard_overhead_ratio": "lower",
    # ABL-TAINT: whole-repo taint analysis; the warm ratio is the whole
    # point of the content-hash cache (an unchanged tree must be
    # near-free), so a ratio drift is a cache regression
    "taint_cold_norm": "lower",
    "taint_warm_ratio": "lower",
    # ABL-CONC: whole-repo concurrency analysis (the CON3xx CI gate);
    # same shape as the taint gate — the warm ratio guards the
    # content-hash cache
    "conc_cold_norm": "lower",
    "conc_warm_ratio": "lower",
    # ABL-LIFE: whole-repo async-lifecycle analysis (the LIF4xx CI
    # gate); same cold/warm shape over the v4 IR
    "lif_cold_norm": "lower",
    "lif_warm_ratio": "lower",
    # ABL-DUR: journaled commits and recovery replay on the in-memory
    # crash-model filesystem (CPU-bound, so the ratios are stable;
    # real fsync latency would just measure the runner's disk)
    "journal_commit_norm": "lower",
    "recovery_norm": "lower",
    # ABL-ASYNC: fleet load against the async XKMS service.  These are
    # *virtual-time* quantities (the whole fleet runs on the injected
    # clock), so they are pure functions of the pinned FleetConfig —
    # no machine normalization needed, and drift means a behavioural
    # change, not a slow runner.
    "xkms_p99_norm": "lower",
    "xkms_throughput_norm": "higher",
    # The overload invariant: every shed answered with a structured
    # fault.  Gated with the "exact" direction — 1.0 means 1.0; any
    # deviation in either direction is a silent-drop regression.
    "shed_structured_ratio": "exact",
}


def calibrate() -> float:
    """Median seconds of a fixed pure-Python SHA-256 workload."""
    from repro.primitives.sha import sha256

    payload = b"Z" * 65536
    return measure(lambda: sha256(payload), warmup=1, repeat=5)


def run_benchmarks() -> dict:
    from repro.core import verify_signatures
    from repro.dsig import Signer, Verifier
    from repro.perf import BatchVerifier, C14NDigestCache, metrics
    from repro.perf.cache import NullCache
    from repro.xmlcore import canonicalize

    calibration = calibrate()
    world = build_world()
    signer = Signer(world.studio.key, identity=world.studio)

    def fat_manifest():
        return build_manifest(
            "bench-reg",
            scripts=1,
            script_lines=120,
            submarkups=8,
        ).to_element()

    root = fat_manifest()
    for target in root.iter("submarkup"):
        signer.sign_detached(f"#{target.get('Id')}", parent=root)

    sequential = Verifier(
        trust_store=world.trust_store,
        require_trusted_key=True,
        cache=NullCache(),
    )
    seq_time = measure(
        lambda: verify_signatures(root, sequential),
        warmup=1,
        repeat=5,
    )

    engine = BatchVerifier(
        Verifier(
            trust_store=world.trust_store,
            require_trusted_key=True,
            cache=C14NDigestCache(),
        )
    )
    outcome = engine.verify_all(root)
    if not outcome.all_valid:
        raise SystemExit("bench workload failed to verify")
    warm_time = measure(lambda: engine.verify_all(root), warmup=1, repeat=5)

    # ABL-GUARD: the same warm batch-verify workload with a per-package
    # ResourceGuard threaded through (the player's deployment shape).
    # A fresh guard is minted per pass — quotas are per-package, and the
    # mint cost is part of the honest overhead.
    from repro.resilience import ResourceGuard

    guarded_engine = BatchVerifier(
        Verifier(
            trust_store=world.trust_store,
            require_trusted_key=True,
            cache=C14NDigestCache(),
            guard=ResourceGuard(),
        )
    )
    if not guarded_engine.verify_all(root).all_valid:
        raise SystemExit("guarded bench workload failed to verify")

    def guarded_verify():
        guarded_engine.verifier.guard = ResourceGuard()
        return guarded_engine.verify_all(root)

    plain_time, guarded_time = measure_pair(
        lambda: engine.verify_all(root),
        guarded_verify,
    )

    registry = metrics.push_registry()
    try:
        engine.verify_all(root)
        hits = registry.counter("perf.cache.digest.hit").value
        misses = registry.counter("perf.cache.digest.miss").value
    finally:
        metrics.pop_registry()
    total = hits + misses
    hit_ratio = hits / total if total else 0.0

    plain = fat_manifest()
    c14n_time = measure(lambda: canonicalize(plain), warmup=1, repeat=5)

    # ABL-STREAM: chunked canonical emission vs building the whole
    # octet string; the ratio gates streaming-serializer overhead.
    from repro.xmlcore.c14n import canonicalize_into

    def c14n_stream():
        return canonicalize_into(plain, lambda chunk: None)

    c14n_stream_time = measure(c14n_stream, warmup=1, repeat=5)

    def sign_once():
        target = build_manifest("bench-sign", submarkups=2).to_element()
        sub = next(iter(target.iter("submarkup")))
        signer.sign_detached(f"#{sub.get('Id')}", parent=target)

    sign_time = measure(sign_once, warmup=1, repeat=5)

    # Accelerated-provider legs: the same sign / sequential-verify
    # workloads with the hashlib/cryptography-backed provider selected,
    # normalized against the *same* pure-SHA calibration so the metric
    # captures the provider speedup, not machine speed.
    from repro.primitives.provider import (
        available_providers, get_provider, set_default_provider,
    )

    accel_metrics = {}
    if "accelerated" in available_providers():
        previous = get_provider().name
        set_default_provider("accelerated")
        try:
            accel_root = fat_manifest()
            for target in accel_root.iter("submarkup"):
                signer.sign_detached(
                    f"#{target.get('Id')}", parent=accel_root
                )
            accel_seq = Verifier(
                trust_store=world.trust_store,
                require_trusted_key=True,
                cache=NullCache(),
            )
            accel_seq_time = measure(
                lambda: verify_signatures(accel_root, accel_seq),
                warmup=1, repeat=5,
            )
            accel_sign_time = measure(sign_once, warmup=1, repeat=5)
            accel_metrics = {
                "verify_sequential_8_accel_norm":
                    accel_seq_time / calibration,
                "sign_detached_accel_norm":
                    accel_sign_time / calibration,
            }
        finally:
            set_default_provider(previous)

    def audit_once():
        from repro.analysis import ArtifactAuditor

        auditor = ArtifactAuditor()
        auditor.audit_element(root, "bench-audit")
        return auditor.finish()

    if len(audit_once().coverage) != 8:
        raise SystemExit("audit bench workload lost its signatures")
    audit_time = measure(audit_once, warmup=1, repeat=5)

    # ABL-TAINT: whole-repo taint analysis, cold vs. content-hash warm.
    import shutil
    import tempfile

    from repro.analysis import TaintCache, analyze_paths

    src_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    cache_dir = tempfile.mkdtemp(prefix="taint-bench-")
    cache_path = os.path.join(cache_dir, "cache.json")
    try:
        def taint_cold():
            if os.path.exists(cache_path):
                os.remove(cache_path)
            return analyze_paths([src_root],
                                 cache=TaintCache(cache_path))

        if taint_cold().scanned < 100:
            raise SystemExit("taint bench workload lost its modules")
        taint_cold_time = measure(taint_cold, warmup=0, repeat=3)
        taint_cold()  # leave a populated cache behind for the warm runs
        taint_warm_time = measure(
            lambda: analyze_paths([src_root],
                                  cache=TaintCache(cache_path)),
            warmup=1, repeat=3,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # ABL-CONC: whole-repo concurrency analysis, cold vs. warm.
    from repro.analysis import ConcurrencyCache
    from repro.analysis.concurrency import analyze_paths as conc_paths

    conc_cache_dir = tempfile.mkdtemp(prefix="conc-bench-")
    conc_cache_path = os.path.join(conc_cache_dir, "cache.json")
    try:
        def conc_cold():
            if os.path.exists(conc_cache_path):
                os.remove(conc_cache_path)
            cache = ConcurrencyCache(conc_cache_path)
            return conc_paths([src_root], cache=cache)

        if conc_cold().scanned < 100:
            raise SystemExit("conc bench workload lost its modules")
        conc_cold_time = measure(conc_cold, warmup=0, repeat=3)
        conc_cold()  # leave a populated cache for the warm runs

        def conc_warm():
            cache = ConcurrencyCache(conc_cache_path)
            return conc_paths([src_root], cache=cache)

        conc_warm_time = measure(conc_warm, warmup=1, repeat=3)
    finally:
        shutil.rmtree(conc_cache_dir, ignore_errors=True)

    # ABL-LIFE: whole-repo async-lifecycle analysis, cold vs. warm.
    from repro.analysis import LifecycleCache
    from repro.analysis.lifecycle import analyze_paths as life_paths

    life_cache_dir = tempfile.mkdtemp(prefix="life-bench-")
    life_cache_path = os.path.join(life_cache_dir, "cache.json")
    try:
        def life_cold():
            if os.path.exists(life_cache_path):
                os.remove(life_cache_path)
            cache = LifecycleCache(life_cache_path)
            return life_paths([src_root], cache=cache)

        if life_cold().scanned < 100:
            raise SystemExit("lifecycle bench workload lost its modules")
        life_cold_time = measure(life_cold, warmup=0, repeat=3)
        life_cold()  # leave a populated cache for the warm runs

        def life_warm():
            cache = LifecycleCache(life_cache_path)
            return life_paths([src_root], cache=cache)

        life_warm_time = measure(life_warm, warmup=1, repeat=3)
    finally:
        shutil.rmtree(life_cache_dir, ignore_errors=True)

    # ABL-DUR: journaled commits + recovery replay.  Runs against the
    # in-memory CrashableFilesystem so the workload is pure CPU
    # (framing, checksums, replay) and the SHA-256 normalization
    # holds; an OsFilesystem run would mostly measure fsync latency.
    from repro.resilience.crashfs import CrashableFilesystem
    from repro.resilience.durable import DurableStore

    def commit_batch() -> CrashableFilesystem:
        fs = CrashableFilesystem(seed=0)
        store = DurableStore("/bench/state", fs=fs)
        for index in range(50):
            store.set("slots", f"key-{index:03d}", b"V" * 100)
            store.commit()
        return fs

    journal_fs = commit_batch()
    journal_commit_time = measure(commit_batch, warmup=1, repeat=5)

    def recover_once() -> DurableStore:
        return DurableStore("/bench/state", fs=journal_fs)

    if len(recover_once().keys("slots")) != 50:
        raise SystemExit("durable bench workload lost its records")
    recovery_time = measure(recover_once, warmup=1, repeat=5)

    # ABL-ASYNC: one pinned fleet run on the virtual clock.  The
    # summary is deterministic, so one run is the measurement.
    from repro.loadgen import FleetConfig, run_fleet

    fleet = run_fleet(FleetConfig(
        sessions=800, connections=8, ops_per_session=2,
        seed=20050902, start_window_s=8.0,
    ))
    if fleet.outcomes.get("untyped", 0):
        raise SystemExit("fleet bench produced untyped failures")

    return {
        "calibration_seconds": calibration,
        "provider_legs": ["pure"] + (
            ["accelerated"] if accel_metrics else []
        ),
        "metrics": {
            **accel_metrics,
            "c14n_stream_ratio": c14n_stream_time / c14n_time,
            "verify_sequential_8_norm": seq_time / calibration,
            "verify_batch_warm_8_norm": warm_time / calibration,
            "batch_speedup": seq_time / warm_time,
            "guard_overhead_ratio": guarded_time / plain_time,
            "warm_digest_hit_ratio": hit_ratio,
            "c14n_manifest_norm": c14n_time / calibration,
            "sign_detached_norm": sign_time / calibration,
            "audit_8sig_norm": audit_time / calibration,
            "taint_cold_norm": taint_cold_time / calibration,
            "taint_warm_ratio": taint_warm_time / taint_cold_time,
            "conc_cold_norm": conc_cold_time / calibration,
            "conc_warm_ratio": conc_warm_time / conc_cold_time,
            "lif_cold_norm": life_cold_time / calibration,
            "lif_warm_ratio": life_warm_time / life_cold_time,
            "journal_commit_norm": journal_commit_time / calibration,
            "recovery_norm": recovery_time / calibration,
            "xkms_p99_norm": fleet.p99,
            "xkms_throughput_norm": fleet.throughput,
            "shed_structured_ratio": fleet.shed_structured_ratio,
        },
        "raw_seconds": {
            "verify_sequential_8": seq_time,
            "verify_batch_warm_8": warm_time,
            "verify_batch_warm_8_guarded": guarded_time,
            "c14n_manifest": c14n_time,
            "sign_detached": sign_time,
            "audit_8sig": audit_time,
            "taint_cold": taint_cold_time,
            "taint_warm": taint_warm_time,
            "conc_cold": conc_cold_time,
            "conc_warm": conc_warm_time,
            "lif_cold": life_cold_time,
            "lif_warm": life_warm_time,
            "journal_commit_50": journal_commit_time,
            "recovery_50": recovery_time,
        },
        "fleet_summary": fleet.summary(),
    }


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression messages (empty = within threshold)."""
    problems = []
    for name, value in current.items():
        base = baseline.get(name)
        direction = DIRECTIONS.get(name)
        if base is None or direction is None or base == 0:
            continue
        drift = value / base - 1.0
        if direction == "exact" and value != base:
            message = (
                f"{name}: {value!r} != pinned baseline {base!r} "
                "(exact gate; any drift is a regression)"
            )
            problems.append(message)
        elif direction == "lower" and value > base * (1.0 + threshold):
            message = (
                f"{name}: {value:.3f} vs baseline {base:.3f} "
                f"(+{drift * 100:.0f}%, limit +{threshold * 100:.0f}%)"
            )
            problems.append(message)
        elif direction == "higher" and value < base * (1.0 - threshold):
            message = (
                f"{name}: {value:.3f} vs baseline {base:.3f} "
                f"({drift * 100:.0f}%, limit -{threshold * 100:.0f}%)"
            )
            problems.append(message)
    return problems


def write_summary(handle, results: dict, baseline: dict,
                  threshold: float) -> None:
    """Write a markdown drift table (for ``$GITHUB_STEP_SUMMARY``)."""
    legs = ", ".join(results.get("provider_legs", ["pure"]))
    handle.write("## Benchmark drift\n\n")
    handle.write(f"Provider legs: {legs}\n\n")
    handle.write("| metric | current | baseline | drift | gate |\n")
    handle.write("|---|---:|---:|---:|---|\n")
    base_metrics = baseline.get("metrics", {})
    for name, value in sorted(results["metrics"].items()):
        base = base_metrics.get(name)
        direction = DIRECTIONS.get(name)
        if base is None or direction is None or base == 0:
            handle.write(
                f"| {name} | {value:.4f} | — | — | untracked |\n"
            )
            continue
        drift = value / base - 1.0
        if direction == "exact":
            bad = value != base
        elif direction == "lower":
            bad = value > base * (1.0 + threshold)
        else:
            bad = value < base * (1.0 - threshold)
        verdict = "REGRESSED" if bad else "ok"
        handle.write(
            f"| {name} | {value:.4f} | {base:.4f} "
            f"| {drift * 100:+.1f}% | {verdict} |\n"
        )
    handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="BENCH_PR9.json",
        help="result artifact path",
    )
    parser.add_argument(
        "--summary",
        help="also write a markdown drift table to this path "
             "(defaults to $GITHUB_STEP_SUMMARY when set)",
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_PATH,
        help="committed baseline to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed relative regression (0.20 = 20%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks()
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for name, value in sorted(results["metrics"].items()):
        print(f"  {name:28s} {value:10.3f}")

    if args.update_baseline:
        baseline_payload = {
            "metrics": results["metrics"],
            "threshold": args.threshold,
        }
        with open(args.baseline, "w") as handle:
            json.dump(baseline_payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        message = (
            f"no baseline at {args.baseline}; "
            "run with --update-baseline to create one"
        )
        print(message, file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            write_summary(handle, results, baseline, args.threshold)
        print(f"drift table appended to {summary_path}")

    problems = compare(
        results["metrics"],
        baseline.get("metrics", {}),
        args.threshold,
    )
    if problems:
        print("benchmark regressions detected:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    baseline_name = os.path.basename(args.baseline)
    print(f"no benchmark regressions against {baseline_name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
