"""ABL-RES — Ablation: retry-path overhead on the happy path.

The resilience layer (fault injection, `RetryPolicy`, `CircuitBreaker`)
wraps every network round-trip.  A player spends almost all of its life
on the *happy* path, so the policy machinery must cost essentially
nothing when no fault fires.  This bench compares a plain
`DownloadClient` fetch against the same fetch with a full retry policy
and circuit breaker installed, and measures the recovery path (two
injected drops, two simulated backoffs) for scale.
"""

import pytest

from _workloads import report
from repro.network import Channel, ContentServer, DownloadClient
from repro.resilience import (
    CircuitBreaker, DropFault, FaultSchedule, RetryPolicy, SimulatedClock,
)

PAYLOAD = bytes(range(256)) * 16   # 4 KiB resource
PATH = "/apps/bonus.pkg"


@pytest.fixture(scope="module")
def server():
    content = ContentServer()
    content.publish(PATH, PAYLOAD)
    return content


def plain_client(server):
    return DownloadClient(server, Channel())


def resilient_client(server):
    return DownloadClient(
        server, Channel(),
        retry_policy=RetryPolicy(max_attempts=3, seed=0,
                                 clock=SimulatedClock()),
        circuit_breaker=CircuitBreaker(failure_threshold=5,
                                       clock=SimulatedClock()),
    )


def test_ablres_fetch_plain(benchmark, server):
    client = plain_client(server)
    data = benchmark(lambda: client.fetch(PATH, secure=False))
    assert data == PAYLOAD


def test_ablres_fetch_with_policy(benchmark, server):
    client = resilient_client(server)
    data = benchmark(lambda: client.fetch(PATH, secure=False))
    assert data == PAYLOAD


def test_ablres_fetch_with_recovery(benchmark, server):
    """Fail twice, succeed third — the acceptance recovery scenario."""
    def fetch_with_two_drops():
        clock = SimulatedClock()
        client = DownloadClient(
            server,
            Channel([DropFault(schedule=FaultSchedule.at(0, 2))]),
            retry_policy=RetryPolicy(max_attempts=3, seed=0,
                                     clock=clock),
        )
        data = client.fetch(PATH, secure=False)
        assert len(clock.sleeps) == 2
        return data

    assert benchmark(fetch_with_two_drops) == PAYLOAD


def test_ablres_report(benchmark, server):
    """Summarize the policy overhead as a paper-style row."""
    from _workloads import measure

    def time_fetch(client, rounds=200):
        return measure(lambda: client.fetch(PATH, secure=False),
                       warmup=5, repeat=rounds)

    plain = time_fetch(plain_client(server))
    resilient = time_fetch(resilient_client(server))
    overhead = (resilient / plain - 1.0) * 100.0 if plain else 0.0
    benchmark(lambda: resilient_client(server).fetch(PATH, secure=False))
    report("ABL-RES retry-path overhead (happy path)", [
        f"plain fetch          {plain * 1e6:9.1f} us",
        f"policy+breaker fetch {resilient * 1e6:9.1f} us",
        f"overhead             {overhead:9.1f} %",
    ])
