"""FIG9 — The end-to-end encryption/signing order with the Decryption
Transform.

Fig 9's pipeline: create → sign (with the W3C Decryption Transform
naming what to decrypt before digesting) → encrypt → transmit →
decrypt/verify → execute.  "The resulting application contains
sufficient information in the form of additional markup that enables
the player to identify how the application needs to be decrypted and
verified."

Regenerated rows: pipeline timing for both orders (sign-then-encrypt,
encrypt-then-sign/Except) and the ordering-information check: without
the transform's bookkeeping, verification of an encrypted package is
impossible.
"""

import pytest

from _workloads import build_manifest, report
from repro.core import AuthoringPipeline, PlaybackPipeline, parse_package
from repro.errors import ApplicationRejectedError
from repro.permissions import PERM_LOCAL_STORAGE, PermissionRequestFile
from repro.xmlcore import DSIG_NS


@pytest.fixture(scope="module")
def authoring(world):
    return AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig9"),
    )


@pytest.fixture(scope="module")
def playback(world):
    return PlaybackPipeline(trust_store=world.trust_store,
                            device_key=world.device_key)


def _prf():
    prf = PermissionRequestFile("fig9-app", "org.contoso")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=4096)
    return prf


def test_fig9_sign_then_encrypt_pipeline(authoring, playback, benchmark):
    def run():
        manifest = build_manifest("fig9-app")
        package = authoring.build_package(
            manifest, permission_file=_prf(),
            encrypt_ids=(manifest.code_id,),
        )
        return playback.open_package(package.data)

    application = benchmark(run)
    assert application.trusted
    assert application.grants.has(PERM_LOCAL_STORAGE)


def test_fig9_encrypt_then_sign_pipeline(authoring, playback, benchmark):
    def run():
        manifest = build_manifest("fig9-app")
        package = authoring.build_package(
            manifest, permission_file=_prf(),
            pre_encrypt_ids=(manifest.code_id,),
        )
        return playback.open_package(package.data)

    application = benchmark(run)
    assert application.trusted


def test_fig9_ordering_information_is_essential(authoring, playback,
                                                benchmark):
    """Strip the decryption-transform markup → the player can no longer
    reconcile the signature with the encrypted content."""

    def run():
        manifest = build_manifest("fig9-app")
        package = authoring.build_package(
            manifest, encrypt_ids=(manifest.code_id,),
        )
        view = parse_package(package.data)
        transforms = view.signature_element.find("Transforms", DSIG_NS)
        decrypt_transform = transforms.child_elements()[0]
        assert "decrypt" in (decrypt_transform.get("Algorithm") or "")
        transforms.remove(decrypt_transform)
        try:
            playback.open_package(view.to_bytes())
            return "EXECUTED"
        except ApplicationRejectedError:
            return "BARRED"

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    report("FIG9 end-to-end ordering", [
        "package without Decryption Transform markup -> " + outcome,
        "(the transform is the 'additional markup' that tells the "
        "player how to decrypt-then-verify)",
    ])
    assert outcome == "BARRED"


def test_fig9_full_network_roundtrip(world, authoring, benchmark):
    """The complete Fig 9 path including the TLS-like transport."""
    from repro.network import Channel, ContentServer, DownloadClient
    from repro.player import DiscPlayer

    manifest = build_manifest("fig9-app")
    package = authoring.build_package(
        manifest, permission_file=_prf(),
        encrypt_ids=(manifest.code_id,),
    )
    server = ContentServer(identity=world.server_identity)
    server.publish("/apps/fig9.pkg", package.data)
    player = DiscPlayer(world.trust_store,
                        device_key=world.device_key)

    def run():
        client = DownloadClient(server, Channel(),
                                trust_store=world.trust_store)
        application = player.download_application(
            client, "/apps/fig9.pkg", secure=True,
        )
        return player.run_application(application)

    session = benchmark(run)
    assert session.trusted
