"""PROTO — §8 prototype feasibility on an embedded platform.

"Our scenario test runs using the developed prototype convinced us
that in the context of a consumer electronic device like [an] optical
disc player, this performance reduction while using XML based security
would be within the allowable performance requirements" (§4), and "the
prototype enabled us to conclude the feasibility of [the] proposal in
an embedded platform" (§9).

Regenerated rows: application-launch latency (verify + decrypt +
execute) against a CE startup budget, ablated across the JCE-style
crypto providers (pure-Python reference vs accelerated backend — the
Java-vs-C++ library choice of §8.2 transposed).
"""


import pytest

from _workloads import build_manifest, report
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.player import InteractiveApplicationEngine
from repro.primitives.provider import available_providers, get_provider

CE_LAUNCH_BUDGET_S = 0.5   # half a second to a running menu


@pytest.fixture(scope="module")
def package(world):
    pipeline = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"proto"),
    )
    manifest = build_manifest("proto-app", scripts=2, script_lines=30)
    return pipeline.build_package(manifest,
                                  encrypt_ids=(manifest.code_id,))


def _launch(world, package, provider_name: str):
    provider = get_provider(provider_name)
    engine = InteractiveApplicationEngine(PlaybackPipeline(
        trust_store=world.trust_store, device_key=world.device_key,
        provider=provider,
    ))
    application = engine.load_package(package.data)
    return engine.execute(application)


@pytest.mark.parametrize("provider_name", ["pure", "accelerated"])
def test_proto_launch_latency(world, package, benchmark, provider_name):
    if provider_name not in available_providers():
        pytest.skip(f"{provider_name} provider unavailable")
    session = benchmark(lambda: _launch(world, package, provider_name))
    assert session.trusted


def test_proto_budget_check(world, package, benchmark):
    def run():
        from _workloads import timed
        results = {}
        for name in ("pure", "accelerated"):
            if name not in available_providers():
                continue
            elapsed, session = timed(
                lambda name=name: _launch(world, package, name)
            )
            assert session.trusted
            results[name] = elapsed
        return results

    results = benchmark.pedantic(run, rounds=5, iterations=1)
    rows = []
    for name, elapsed in results.items():
        verdict = ("within" if elapsed <= CE_LAUNCH_BUDGET_S
                   else "OVER")
        rows.append(
            f"provider={name:12s} launch={elapsed * 1e3:8.2f}ms "
            f"-> {verdict} the {CE_LAUNCH_BUDGET_S * 1e3:.0f}ms CE budget"
        )
    report("PROTO feasibility (verify+decrypt+execute launch)", rows)
    # The paper's feasibility conclusion: launches fit the CE budget.
    assert all(t <= CE_LAUNCH_BUDGET_S for t in results.values()), results
