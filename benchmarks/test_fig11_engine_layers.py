"""FIG11 — The layered software architecture of the player.

Fig 11 stacks the Interactive Application Engine over the XML security
components (Verifier/Decryptor/Signer/Encryptor) over the crypto
provider over the platform.

Regenerated rows: per-layer micro-timings for the operations the
engine chains when launching an application — parse, verify, decrypt,
schedule, execute — i.e. where a CE player's launch budget actually
goes.
"""

import pytest

from _workloads import build_manifest, report, timed
from repro.core import AuthoringPipeline, PlaybackPipeline, parse_package
from repro.dsig import Verifier
from repro.player import InteractiveApplicationEngine
from repro.xmlcore import parse_element
from repro.xmlenc import Decryptor


@pytest.fixture(scope="module")
def package(world):
    pipeline = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig11"),
    )
    manifest = build_manifest("fig11-app", scripts=2, script_lines=40)
    return pipeline.build_package(manifest,
                                  encrypt_ids=(manifest.code_id,))


def test_fig11_layer_parse(package, benchmark):
    root = benchmark(lambda: parse_element(package.data))
    assert root.local == "applicationPackage"


def test_fig11_layer_verify(world, package, benchmark):
    root = parse_element(package.data)
    view = parse_package(root)
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True)
    decryptor = Decryptor(rsa_keys=[world.device_key])
    result = benchmark(
        lambda: verifier.verify(view.signature_element,
                                decryptor=decryptor)
    )
    assert result.valid


def test_fig11_layer_decrypt(world, package, benchmark):
    decryptor = Decryptor(rsa_keys=[world.device_key])

    def run():
        root = parse_element(package.data)
        return decryptor.decrypt_in_place(root)

    assert benchmark(run) == 1


def test_fig11_layer_execute(world, package, benchmark):
    engine = InteractiveApplicationEngine(PlaybackPipeline(
        trust_store=world.trust_store, device_key=world.device_key,
    ))
    application = engine.load_package(package.data)
    session = benchmark(lambda: engine.execute(application))
    assert session.trusted


def test_fig11_layer_breakdown(world, package, benchmark):
    engine = InteractiveApplicationEngine(PlaybackPipeline(
        trust_store=world.trust_store, device_key=world.device_key,
    ))
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True)

    def run():
        layers = {}
        layers["xml parse"], root = timed(
            lambda: parse_element(package.data)
        )
        view = parse_package(root)
        decryptor = Decryptor(rsa_keys=[world.device_key])
        layers["verifier (XMLDSig)"], outcome = timed(
            lambda: verifier.verify(view.signature_element,
                                    decryptor=decryptor)
        )
        assert outcome.valid
        layers["decryptor (XMLEnc)"], _ = timed(
            lambda: decryptor.decrypt_in_place(view.root)
        )
        layers["engine (full launch)"], session = timed(
            lambda: engine.execute(engine.load_package(package.data))
        )
        assert session.trusted
        return layers

    layers = benchmark.pedantic(run, rounds=5, iterations=1)
    total = sum(layers.values())
    report("FIG11 engine layer breakdown", [
        f"{name:22s} {t * 1e3:8.2f}ms ({t / total * 100:4.1f}%)"
        for name, t in layers.items()
    ])
