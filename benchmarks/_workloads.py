"""Workload builders and reporting for the benchmark harness.

Every bench prints the paper-style rows it regenerates via
:func:`report`; rows are also appended to ``bench_report.txt`` at the
repository root so EXPERIMENTS.md can be refreshed from a plain run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.certs import CertificateAuthority, SigningIdentity, TrustStore
from repro.disc import ApplicationManifest
from repro.primitives.keys import RSAPrivateKey
from repro.primitives.random import DeterministicRandomSource
from repro.primitives.rsa import generate_keypair
from repro.xmlcore import parse_element

REPORT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "bench_report.txt")


def measure(fn, *, warmup: int = 1, repeat: int = 5) -> float:
    """Median wall-clock seconds of one ``fn()`` call.

    Runs *warmup* throwaway calls (interpreter warm-up, cache priming
    where that is the point of the bench) and then *repeat* timed
    calls, returning the median — the robust summary all benches and
    the regression gate share.  Callables that are not idempotent must
    rebuild their state inside ``fn`` or pass ``warmup=0, repeat=1``.
    """
    for _ in range(max(0, warmup)):
        fn()
    samples = []
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def measure_pair(fn_a, fn_b, *, repeat: int = 25) -> tuple[float, float]:
    """Median seconds of two callables, sampled *interleaved*.

    For overhead ratios between two fast paths (e.g. guarded vs
    unguarded warm batch verify): two back-to-back :func:`measure`
    blocks let scheduler drift swamp a small real difference, while
    alternating the callables makes any drift hit both sample sets
    equally — the ratio of the medians then isolates the actual delta.
    """
    a_samples: list[float] = []
    b_samples: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn_a()
        a_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        b_samples.append(time.perf_counter() - start)
    a_samples.sort()
    b_samples.sort()
    return a_samples[repeat // 2], b_samples[repeat // 2]


def timed(fn) -> tuple[float, object]:
    """``(seconds, result)`` of a single ``fn()`` call.

    For one-shot stage timings (authoring, disc insert, decrypt in
    place) where repetition would change semantics; sweeps should use
    :func:`measure`.
    """
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result

LAYOUT = (
    '<layout xmlns="urn:bda:bdmv:interactive-cluster">'
    '<root-layout width="1920" height="1080"/>'
    '<region regionName="main" width="1920" height="880"/>'
    '<region regionName="menu" top="880" width="1920" height="200"/>'
    "</layout>"
)

TIMING = (
    '<seq xmlns="urn:bda:bdmv:interactive-cluster">'
    '<video src="bd://BDMV/STREAM/00001.m2ts" region="main" dur="90s"/>'
    '<par><video src="bd://BDMV/STREAM/00002.m2ts" region="main" '
    'dur="30s"/>'
    '<img src="bd://BDMV/AUXDATA/banner.png" region="menu" begin="2s" '
    'dur="8s"/></par></seq>'
)


@dataclass
class BenchWorld:
    root: CertificateAuthority
    studio: SigningIdentity
    attacker: SigningIdentity
    server_identity: SigningIdentity
    trust_store: TrustStore
    device_key: RSAPrivateKey

    def fresh_rng(self, label: bytes) -> DeterministicRandomSource:
        return DeterministicRandomSource(b"bench|" + label)


def build_world() -> BenchWorld:
    rng = DeterministicRandomSource(b"bench-world")
    root = CertificateAuthority.create_root("CN=BD Root CA", rng=rng)
    studio = SigningIdentity.create("CN=Contoso Studios", root, rng=rng)
    rogue = CertificateAuthority.create_root("CN=Rogue", rng=rng)
    attacker = SigningIdentity.create("CN=Mallory", rogue, rng=rng)
    server_identity = SigningIdentity.create(
        "CN=content.contoso.example", root, rng=rng,
    )
    return BenchWorld(
        root=root, studio=studio, attacker=attacker,
        server_identity=server_identity,
        trust_store=TrustStore(roots=[root.certificate]),
        device_key=generate_keypair(1024, rng),
    )


def build_manifest(name: str = "bench-app", *, scripts: int = 1,
                   script_lines: int = 20,
                   submarkups: int = 2) -> ApplicationManifest:
    """A parameterized reference application (Fig 10 shape)."""
    manifest = ApplicationManifest(name)
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    if submarkups >= 2:
        manifest.add_submarkup("timing", parse_element(TIMING))
    for extra in range(max(0, submarkups - 2)):
        manifest.add_submarkup(f"aux-{extra}", parse_element(
            f'<aux xmlns="urn:bda:bdmv:interactive-cluster" '
            f'n="{extra}"><item v="1"/><item v="2"/></aux>'
        ))
    body = "var state = 0;\n" + \
        "state = state + 1; // tick\n" * script_lines + \
        "function onKey(k) { state += k; return state; }\n"
    for _ in range(scripts):
        manifest.add_script(body)
    return manifest


def report(experiment: str, lines: list[str]) -> None:
    """Print paper-style rows and append them to bench_report.txt."""
    banner = f"\n===== {experiment} ====="
    print(banner)
    for line in lines:
        print(line)
    with open(REPORT_PATH, "a") as handle:
        handle.write(banner + "\n")
        for line in lines:
            handle.write(line + "\n")
