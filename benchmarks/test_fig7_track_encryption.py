"""FIG7 — Encryption of the Track target (non-markup A/V content).

Fig 7: encrypting non-markup content yields "an 'Encryption Data',
which is either created and embedded in the Interactive Cluster or
jettisoned as a separate Markup" (a CipherReference).

Regenerated rows: encrypt/decrypt throughput for a transport-stream
clip, embedded vs detached, and the size consequence of each choice
(embedded pays the base64 expansion; detached stores raw ciphertext).
"""

import pytest

from _workloads import report
from repro.disc import generate_transport_stream
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import serialize_bytes
from repro.xmlenc import Decryptor, Encryptor

CLIP_PACKETS = 400  # ~75 KB clip — scaled for the simulation


@pytest.fixture(scope="module")
def clip(world):
    return generate_transport_stream(
        CLIP_PACKETS, rng=world.fresh_rng(b"fig7-clip"),
    )


@pytest.fixture(scope="module")
def key(world):
    return SymmetricKey(world.fresh_rng(b"fig7-key").read(16))


def test_fig7_encrypt_embedded(world, clip, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig7-em"))

    def run():
        data, detached = encryptor.encrypt_bytes(
            clip, key, key_name="disc-key", mime_type="video/mp2t",
        )
        return serialize_bytes(data.to_element())

    payload = benchmark(run)
    assert b"CipherValue" in payload


def test_fig7_encrypt_detached(world, clip, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig7-de"))

    def run():
        data, ciphertext = encryptor.encrypt_bytes(
            clip, key, key_name="disc-key",
            detached_uri="bd://BDMV/AUXDATA/clip1.enc",
        )
        return serialize_bytes(data.to_element()), ciphertext

    markup, ciphertext = benchmark(run)
    assert b"CipherReference" in markup
    assert len(ciphertext) >= len(clip)


def test_fig7_decrypt_throughput(world, clip, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig7-dec"))
    data, _ = encryptor.encrypt_bytes(clip, key, key_name="disc-key")
    decryptor = Decryptor(keys={"disc-key": key})
    element = data.to_element()
    recovered = benchmark(lambda: decryptor.decrypt_to_bytes(element))
    assert recovered == clip


def test_fig7_embedded_vs_detached_sizes(world, clip, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig7-sz"))

    def run():
        embedded, _ = encryptor.encrypt_bytes(clip, key,
                                              key_name="disc-key")
        embedded_size = len(serialize_bytes(embedded.to_element()))
        detached, ciphertext = encryptor.encrypt_bytes(
            clip, key, key_name="disc-key",
            detached_uri="bd://BDMV/AUXDATA/clip1.enc",
        )
        detached_markup = len(serialize_bytes(detached.to_element()))
        return embedded_size, detached_markup, len(ciphertext)

    embedded_size, detached_markup, ciphertext_size = benchmark.pedantic(
        run, rounds=3, iterations=1,
    )
    report("FIG7 track-target encryption (clip = "
           f"{len(clip)} bytes)", [
               f"embedded EncryptionData markup: {embedded_size:7d}B "
               f"(base64 expansion ~4/3)",
               f"detached markup:                {detached_markup:7d}B "
               f"+ {ciphertext_size}B raw ciphertext",
           ])
    # Embedded pays base64; detached markup is tiny.
    assert embedded_size > len(clip) * 4 // 3
    assert detached_markup < 1200
    assert abs(ciphertext_size - len(clip)) <= 32  # IV + padding
