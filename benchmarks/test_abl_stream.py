"""ABL-STREAM — Ablation: streaming C14N and provider-routed digests.

PR 7's hot-path rework: reference digests stream canonical chunks into
the provider's incremental hash context instead of materialising the
whole canonical octet string first, and the accelerated provider (when
its backends are importable) carries the digest/RSA work.  This bench
pins the two claims:

* chunked emission costs about the same as whole-tree serialization
  (the sink indirection is in the noise), and the streamed digest
  never allocates the full canonical string;
* the end-to-end sign/verify workloads speed up >= 5x under the
  accelerated provider relative to the pure baseline.
"""

import pytest

from _workloads import (
    build_manifest, build_world, measure, measure_pair, report,
)
from repro.dsig import Signer, Verifier
from repro.perf.cache import NullCache
from repro.primitives.provider import (
    available_providers, get_provider, set_default_provider,
)
from repro.xmlcore import canonicalize
from repro.xmlcore.c14n import canonicalize_into, digest_canonical

PROVIDERS = [
    name for name in ("pure", "accelerated")
    if name in available_providers()
]

accelerated_only = pytest.mark.skipif(
    "accelerated" not in available_providers(),
    reason="accelerated backends unavailable",
)


@pytest.fixture(scope="module")
def manifest():
    return build_manifest(
        "abl-stream", scripts=1, script_lines=120, submarkups=8,
    ).to_element()


def test_ablstream_chunked_output_identical(manifest):
    chunks: list[bytes] = []
    total = canonicalize_into(manifest, chunks.append)
    whole = canonicalize(manifest)
    assert b"".join(chunks) == whole
    assert total == len(whole)
    # Chunked means chunked: a fat manifest must not arrive in one
    # piece (the 4096-char flush bound).
    assert len(chunks) > 1


def test_ablstream_streaming_overhead(manifest, benchmark):
    whole_time = measure(
        lambda: canonicalize(manifest), warmup=1, repeat=5,
    )

    def stream():
        return canonicalize_into(manifest, lambda chunk: None)

    stream_time = measure(stream, warmup=1, repeat=5)
    benchmark(stream)
    ratio = stream_time / whole_time
    report("ABL-STREAM chunked emission vs whole-tree", [
        f"whole-tree canonicalize: {whole_time * 1e3:8.3f} ms",
        f"streamed canonicalize:   {stream_time * 1e3:8.3f} ms",
        f"ratio (stream/whole):    {ratio:8.2f}",
    ])
    # The sink indirection must stay cheap; 1.5x is generous for noise.
    assert ratio < 1.5


@pytest.mark.parametrize("provider_name", PROVIDERS)
def test_ablstream_digest_matches_whole_tree(manifest, provider_name):
    provider = get_provider(provider_name)
    assert digest_canonical(
        manifest, "sha256", provider=provider
    ) == provider.digest("sha256", canonicalize(manifest))


@accelerated_only
def test_ablstream_provider_speedup(world, benchmark):
    """End-to-end sign + sequential verify under both providers."""
    signer = Signer(world.studio.key, identity=world.studio)
    REPEAT = 9

    def build_unsigned():
        return build_manifest(
            "abl-stream-e2e", scripts=1, script_lines=120, submarkups=8,
        ).to_element()

    def sign_all(root):
        for target in root.iter("submarkup"):
            signer.sign_detached(f"#{target.get('Id')}", parent=root)
        return root

    def verify_all(root):
        from repro.core import verify_signatures

        verifier = Verifier(
            trust_store=world.trust_store,
            require_trusted_key=True,
            cache=NullCache(),
        )
        reports = verify_signatures(root, verifier)
        assert reports and all(r.valid for r in reports.values())
        return reports

    def run():
        # Manifest construction is provider-independent; build the
        # fresh roots outside the timed region so the speedup measures
        # the security work, not tree setup.  The two provider legs
        # are sampled *interleaved* (measure_pair): the accelerated
        # leg is milliseconds, so back-to-back blocks would let
        # scheduler/GC drift swamp it and distort the ratio.
        pools = {
            name: [build_unsigned() for _ in range(REPEAT + 2)]
            for name in PROVIDERS
        }
        previous = get_provider().name
        try:
            def leg(name, work):
                def call():
                    set_default_provider(name)
                    return work(name)
                return call

            for name in PROVIDERS:      # one untimed warmup pass each
                leg(name, lambda n: sign_all(pools[n].pop()))()
            pure_sign, accel_sign = measure_pair(
                leg("pure", lambda n: sign_all(pools[n].pop())),
                leg("accelerated", lambda n: sign_all(pools[n].pop())),
                repeat=REPEAT,
            )
            signed = sign_all(build_unsigned())
            pure_verify, accel_verify = measure_pair(
                leg("pure", lambda n: verify_all(signed)),
                leg("accelerated", lambda n: verify_all(signed)),
                repeat=REPEAT,
            )
        finally:
            set_default_provider(previous)
        return {
            "pure": (pure_sign, pure_verify),
            "accelerated": (accel_sign, accel_verify),
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    sign_speedup = times["pure"][0] / times["accelerated"][0]
    verify_speedup = times["pure"][1] / times["accelerated"][1]
    report("ABL-STREAM provider speedup (8-signature manifest)", [
        f"{'provider':>12s} {'sign 8x (ms)':>14s} {'verify 8x (ms)':>15s}",
        *(
            f"{name:>12s} {times[name][0] * 1e3:14.2f} "
            f"{times[name][1] * 1e3:15.2f}"
            for name in PROVIDERS
        ),
        f"sign speedup:   {sign_speedup:6.1f}x",
        f"verify speedup: {verify_speedup:6.1f}x",
        "acceptance: >= 5x on both paths (ISSUE 7 tentpole)",
    ])
    assert sign_speedup >= 5.0
    assert verify_speedup >= 5.0
