"""FIG3 — Global Signing/Verification scenario.

The paper's Fig 3: applications are signed at the creator end and
verified by the player; "in the case of signature verification
failure, the application is barred from being executed."

Regenerated rows: per-scenario execution outcome (executed / barred)
for the intact application and every attack, plus sign/verify timing.
Shape expectation: 100% of intact signed applications execute, 100% of
tampered/forged/unsigned ones are barred.
"""

import pytest

from _workloads import build_manifest, report
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.errors import ApplicationRejectedError
from repro.threat import (
    inject_script, strip_signature, tamper_package_bytes,
)


@pytest.fixture(scope="module")
def pipelines(world):
    authoring = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig3"),
    )
    playback = PlaybackPipeline(
        trust_store=world.trust_store, device_key=world.device_key,
    )
    return authoring, playback


def test_fig3_signing_throughput(pipelines, benchmark):
    authoring, _ = pipelines
    manifest = build_manifest("fig3-app")
    package = benchmark(lambda: authoring.build_package(manifest))
    assert package.signed


def test_fig3_verification_throughput(pipelines, benchmark):
    authoring, playback = pipelines
    package = authoring.build_package(build_manifest("fig3-app"))
    application = benchmark(lambda: playback.open_package(package.data))
    assert application.trusted


def test_fig3_execution_outcomes(pipelines, world, benchmark):
    """The Fig 3 decision table: who executes, who is barred."""
    authoring, playback = pipelines
    manifest = build_manifest("fig3-app")
    package = authoring.build_package(manifest)

    rogue = AuthoringPipeline(
        world.attacker, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig3-rogue"),
    )
    forged = rogue.build_package(build_manifest("fig3-app"))

    scenarios = {
        "intact signed application": package.data,
        "byte-flipped in transit": tamper_package_bytes(package.data),
        "script injected at rest": inject_script(package.data),
        "signature stripped": strip_signature(package.data),
        "forged by untrusted signer": forged.data,
    }

    def run_all():
        outcomes = {}
        for name, data in scenarios.items():
            try:
                playback.open_package(data)
                outcomes[name] = "EXECUTED"
            except ApplicationRejectedError:
                outcomes[name] = "BARRED"
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=3, iterations=1)
    rows = [f"{name:35s} -> {outcome}"
            for name, outcome in outcomes.items()]
    report("FIG3 global signing/verification outcomes", rows)
    assert outcomes["intact signed application"] == "EXECUTED"
    barred = [v for k, v in outcomes.items()
              if k != "intact signed application"]
    assert barred == ["BARRED"] * 4
