"""ABL-TAINT — taint-analyzer throughput, cold vs. content-hash warm.

The taint analyzer is meant to run as a pre-commit/CI gate over the
whole tree, so two costs matter: the cold fixpoint (every module
extracted and iterated) and the warm path, where the content-hash
cache must make an unchanged tree near-free.  The regression gate in
``bench_regression.py`` tracks the normalized cold time
(``taint_cold_norm``) and the warm/cold ratio (``taint_warm_ratio``).

A third series measures the partial-invalidation shape: one module
edited, everything else served from the module-level IR cache.
"""

import os

from _workloads import measure, report
from repro.analysis import TaintCache, analyze_paths

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def test_abl_taint(tmp_path):
    cache_path = str(tmp_path / "taint-cache.json")

    def cold():
        if os.path.exists(cache_path):
            os.remove(cache_path)
        return analyze_paths([SRC], cache=TaintCache(cache_path))

    result = cold()
    assert result.scanned > 100, "workload lost its modules"
    cold_time = measure(cold, warmup=0, repeat=3)

    cold()  # leave a populated cache behind for the warm series
    warm_hits = []

    def warm():
        cache = TaintCache(cache_path)
        out = analyze_paths([SRC], cache=cache)
        warm_hits.append(cache.run_hit)
        return out

    warm_time = measure(warm, warmup=1, repeat=5)
    assert all(warm_hits), "warm run missed the run-level cache"

    ratio = warm_time / cold_time
    assert ratio < 0.5, (
        f"warm taint run is not measurably faster than cold "
        f"(ratio {ratio:.2f})"
    )

    report("ABL-TAINT", [
        f"modules analyzed: {result.scanned}",
        f"cold fixpoint: {cold_time * 1000:.1f} ms",
        f"warm (run-level cache hit): {warm_time * 1000:.1f} ms",
        f"warm/cold ratio: {ratio:.3f}",
    ])
