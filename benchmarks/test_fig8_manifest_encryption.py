"""FIG8 — Encryption of the Manifest target (XML content).

Fig 8: encrypting the manifest embeds the Encryption Data in the
manifest itself.  §4 adds the performance argument: "The content could
be encrypted and stored in parts or as a whole.  This allows
flexibility and better performance" — e.g. decrypt only the game's
high scores while the markup executes.

Regenerated series: whole-manifest vs element vs content encryption
(time and decrypt cost), showing partial decryption is cheaper than
whole-manifest decryption.
"""


import pytest

from _workloads import build_manifest, report
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import canonicalize
from repro.xmlenc import Decryptor, Encryptor


def fresh_manifest():
    return build_manifest("fig8-app", scripts=4, script_lines=60,
                          submarkups=4).to_element()


@pytest.fixture(scope="module")
def key(world):
    return SymmetricKey(world.fresh_rng(b"fig8-key").read(16))


def test_fig8_encrypt_whole_manifest(world, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig8-whole"))

    def run():
        manifest = fresh_manifest()
        return encryptor.encrypt_element(manifest, key, key_name="k",
                                         replace=False)

    node = benchmark(run)
    assert node.get("Type", "").endswith("#Element")


def test_fig8_encrypt_code_element_only(world, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig8-code"))

    def run():
        manifest = fresh_manifest()
        return encryptor.encrypt_element(
            manifest.find("code"), key, key_name="k",
        )

    benchmark(run)


def test_fig8_encrypt_scores_content_only(world, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig8-scores"))

    def run():
        manifest = fresh_manifest()
        return encryptor.encrypt_content(
            manifest.find("submarkup"), key, key_name="k",
        )

    benchmark(run)


def test_fig8_partial_vs_whole_decryption(world, key, benchmark):
    """§4's performance claim, measured."""
    encryptor = Encryptor(rng=world.fresh_rng(b"fig8-cmp"))
    decryptor = Decryptor(keys={"k": key})

    def run():
        from _workloads import timed
        # Whole manifest encrypted → player must decrypt everything.
        whole = fresh_manifest()
        size = len(canonicalize(whole))
        enc_whole = encryptor.encrypt_element(whole, key, key_name="k",
                                              replace=False)
        whole_time, _ = timed(lambda: decryptor.decrypt_nodes(enc_whole))

        # Only one script encrypted → player decrypts just the script.
        partial = fresh_manifest()
        target = partial.find("script")
        encryptor.encrypt_element(target, key, key_name="k")
        partial_time, _ = timed(
            lambda: decryptor.decrypt_in_place(partial)
        )
        return whole_time, partial_time, size

    whole_time, partial_time, size = benchmark.pedantic(
        run, rounds=5, iterations=1,
    )
    report("FIG8 manifest-target encryption "
           f"(manifest = {size} canonical bytes)", [
               f"decrypt whole manifest:  {whole_time * 1e3:7.2f}ms",
               f"decrypt one script only: {partial_time * 1e3:7.2f}ms",
               f"partial/whole ratio:     "
               f"{partial_time / whole_time:.2f}x",
           ])
    assert partial_time < whole_time


def test_fig8_roundtrip_preserved(world, key, benchmark):
    encryptor = Encryptor(rng=world.fresh_rng(b"fig8-rt"))
    decryptor = Decryptor(keys={"k": key})

    def run():
        manifest = fresh_manifest()
        original = canonicalize(manifest)
        encryptor.encrypt_element(manifest.find("code"), key,
                                  key_name="k")
        encryptor.encrypt_content(manifest.find("submarkup"), key,
                                  key_name="k")
        decryptor.decrypt_in_place(manifest)
        return canonicalize(manifest) == original

    assert benchmark(run)
