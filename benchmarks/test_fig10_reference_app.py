"""FIG10 — The reference Blu-ray interactive application.

Fig 10's prototype shape: Application Manifest as the markup target,
ECMAScript for the script, SMIL for timing and layout (§8.1).

Regenerated rows: the reference application executed through the
engine — plain, signed, and signed+encrypted — with script instruction
counts and the resolved SMIL timeline.
"""

import pytest

from _workloads import LAYOUT, TIMING, report
from repro.core import AuthoringPipeline, PlaybackPipeline
from repro.disc import ApplicationManifest
from repro.permissions import PERM_LOCAL_STORAGE, PermissionRequestFile
from repro.player import InteractiveApplicationEngine, LocalStorage
from repro.xmlcore import parse_element

REFERENCE_SCRIPT = """
var chapter = storage.read("resume");
if (chapter == null) chapter = 1;
player.log("resuming at chapter " + chapter);
var menuItems = ["play", "chapters", "bonus", "setup"];
var selected = 0;
function onKey(code) {
    if (code == 40) selected = (selected + 1) % menuItems.length;
    if (code == 38) selected = (selected + 3) % menuItems.length;
    if (code == 13) {
        player.log("activated " + menuItems[selected]);
        storage.write("resume", chapter);
    }
    return menuItems[selected];
}
"""


def reference_manifest() -> ApplicationManifest:
    manifest = ApplicationManifest("reference-app")
    manifest.add_submarkup("layout", parse_element(LAYOUT))
    manifest.add_submarkup("timing", parse_element(TIMING))
    manifest.add_script(REFERENCE_SCRIPT)
    return manifest


def _prf():
    prf = PermissionRequestFile("reference-app", "org.contoso")
    prf.request(PERM_LOCAL_STORAGE, quota_bytes=4096)
    return prf


@pytest.fixture(scope="module")
def engine(world):
    pipeline = PlaybackPipeline(trust_store=world.trust_store,
                                device_key=world.device_key)
    return InteractiveApplicationEngine(pipeline,
                                        storage=LocalStorage())


@pytest.fixture(scope="module")
def packages(world):
    pipeline = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig10"),
    )
    manifest = reference_manifest()
    signed = pipeline.build_package(manifest, permission_file=_prf())
    manifest2 = reference_manifest()
    encrypted = pipeline.build_package(
        manifest2, permission_file=_prf(),
        encrypt_ids=(manifest2.code_id,),
    )
    return signed, encrypted


def test_fig10_execute_signed(engine, packages, benchmark):
    signed, _ = packages

    def run():
        application = engine.load_package(signed.data)
        return engine.execute(
            application,
            events=[("onKey", 40.0), ("onKey", 13.0)],
        )

    session = benchmark(run)
    assert session.trusted
    assert "activated chapters" in session.console[-1]


def test_fig10_execute_signed_encrypted(engine, packages, benchmark):
    _, encrypted = packages

    def run():
        application = engine.load_package(encrypted.data)
        return engine.execute(application)

    session = benchmark(run)
    assert session.trusted


def test_fig10_reference_run_report(engine, packages, benchmark):
    signed, _ = packages

    def run():
        application = engine.load_package(signed.data)
        session = engine.execute(
            application,
            events=[("onKey", 40.0), ("onKey", 40.0), ("onKey", 13.0)],
        )
        return session

    session = benchmark.pedantic(run, rounds=3, iterations=1)
    timeline = [
        f"  {item.start:6.1f}s - {item.end:6.1f}s  {item.kind:5s} "
        f"{item.src} @ {item.region}"
        for item in session.timeline
    ]
    report("FIG10 reference application run", [
        f"console: {session.console}",
        f"script instructions: {session.instructions}",
        "SMIL timeline:",
        *timeline,
    ])
    assert session.timeline
    assert session.instructions > 0
