"""ABL-C14N — Ablation: canonicalization before digesting.

DESIGN.md's ablation of the §5.4 design choice: what breaks without
C14N, and what C14N costs.

Regenerated rows: digest stability across syntactic variants with and
without C14N, and the processing cost of C14N relative to plain
serialization.
"""

from _workloads import build_manifest, report
from repro.primitives.sha import sha1
from repro.xmlcore import (
    C14N, EXC_C14N, canonicalize, parse_element, serialize,
)

VARIANT_TEMPLATES = [
    '<m xmlns="urn:x" a="1" b="2"><c>{body}</c></m>',
    "<m xmlns='urn:x' b='2' a='1'><c>{body}</c></m>",
    '<m  xmlns="urn:x" a = "1" b="2" ><c >{body}</c ></m >',
]


def variants():
    return [t.format(body="payload") for t in VARIANT_TEMPLATES]


def test_ablc14n_canonicalize_cost(benchmark):
    root = build_manifest("abl", scripts=4, script_lines=60).to_element()
    octets = benchmark(lambda: canonicalize(root, C14N))
    assert octets


def test_ablc14n_exclusive_cost(benchmark):
    root = build_manifest("abl", scripts=4, script_lines=60).to_element()
    octets = benchmark(lambda: canonicalize(root, EXC_C14N))
    assert octets


def test_ablc14n_plain_serialize_cost(benchmark):
    root = build_manifest("abl", scripts=4, script_lines=60).to_element()
    text = benchmark(lambda: serialize(root))
    assert text


def test_ablc14n_digest_stability(benchmark):
    def run():
        raw = {sha1(v.encode()) for v in variants()}
        canonical = {
            sha1(canonicalize(parse_element(v), C14N))
            for v in variants()
        }
        return len(raw), len(canonical)

    raw_count, canonical_count = benchmark.pedantic(run, rounds=3,
                                                    iterations=1)
    report("ABL-C14N digest stability ablation", [
        f"{len(variants())} semantically equal syntactic variants",
        f"distinct digests without C14N: {raw_count}  "
        "(signatures break on re-serialization)",
        f"distinct digests with C14N:    {canonical_count}  "
        "(signatures survive)",
    ])
    assert raw_count == len(variants())
    assert canonical_count == 1
