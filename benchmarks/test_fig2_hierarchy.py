"""FIG2 — The markup-based content hierarchy.

Fig 2: Interactive Cluster → Tracks → Playlists/Manifests → Clip Info
→ MPEG-2 TS; the manifest splits into Markup (SubMarkups) and Code
(Scripts).

Regenerated rows: hierarchy construction/parse/walk timing as the
cluster scales, plus the node inventory of the reference hierarchy.
"""

import pytest

from _workloads import build_manifest, report
from repro.disc import InteractiveCluster, Playlist
from repro.xmlcore import parse_element, serialize_bytes

SCALES = (2, 8, 32)


def build_cluster(tracks: int) -> InteractiveCluster:
    cluster = InteractiveCluster(f"Fig2 x{tracks}")
    for index in range(tracks):
        playlist = Playlist(f"title-{index}", playlist_id=f"pl-{index}")
        playlist.add_item(f"{index + 1:05d}", 0.0, 30.0)
        cluster.add_av_track(playlist)
        cluster.add_application_track(
            build_manifest(f"app-{index}", scripts=2)
        )
    return cluster


@pytest.mark.parametrize("tracks", SCALES)
def test_fig2_build(benchmark, tracks):
    cluster = benchmark(lambda: build_cluster(tracks))
    assert len(cluster.tracks) == 2 * tracks


@pytest.mark.parametrize("tracks", SCALES)
def test_fig2_serialize_parse(benchmark, tracks):
    cluster = build_cluster(tracks)

    def run():
        data = serialize_bytes(cluster.to_element())
        return InteractiveCluster.from_element(parse_element(data)), data

    reparsed, data = benchmark(run)
    assert len(reparsed.tracks) == len(cluster.tracks)


def test_fig2_walk(benchmark):
    root = build_cluster(16).to_element()
    count = benchmark(lambda: sum(1 for _ in root.iter()))
    assert count > 16 * 10


def test_fig2_inventory(benchmark):
    def run():
        cluster = build_cluster(4)
        root = cluster.to_element()
        data = serialize_bytes(root)
        return {
            "tracks (av/app)": (len(cluster.av_tracks()),
                                len(cluster.application_tracks())),
            "playlists": len(root.findall("playlist")),
            "manifests": len(root.findall("manifest")),
            "submarkups": len(root.findall("submarkup")),
            "scripts": len(root.findall("script")),
            "elements": sum(1 for _ in root.iter()),
            "serialized bytes": len(data),
        }

    inventory = benchmark.pedantic(run, rounds=3, iterations=1)
    report("FIG2 content hierarchy inventory (4 titles + 4 apps)", [
        f"{name:20s} {value}" for name, value in inventory.items()
    ])
    assert inventory["manifests"] == 4
    assert inventory["scripts"] == 8
