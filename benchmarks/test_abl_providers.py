"""ABL-PROV — Ablation: the crypto-provider choice (§8.2).

The prototype chose between Apache's Java and C++ XML security
libraries and sat on JCE's pluggable providers; this repository mirrors
that with its provider registry.  This bench measures the primitive
layer under each provider, showing where the engine's crypto budget
goes and what a native backend buys.
"""

import pytest

from _workloads import report
from repro.primitives.provider import available_providers, get_provider

PAYLOAD = bytes(range(256)) * 64   # 16 KiB
KEY = bytes(range(16))
IV = bytes(range(16))

PROVIDERS = [
    name for name in ("pure", "accelerated")
    if name in available_providers()
]


@pytest.mark.parametrize("provider_name", PROVIDERS)
def test_ablprov_sha256(benchmark, provider_name):
    provider = get_provider(provider_name)
    digest = benchmark(lambda: provider.digest("sha256", PAYLOAD))
    assert len(digest) == 32


@pytest.mark.parametrize("provider_name", PROVIDERS)
def test_ablprov_hmac(benchmark, provider_name):
    provider = get_provider(provider_name)
    mac = benchmark(lambda: provider.hmac("sha1", KEY, PAYLOAD))
    assert len(mac) == 20


@pytest.mark.parametrize("provider_name", PROVIDERS)
def test_ablprov_aes_cbc(benchmark, provider_name):
    provider = get_provider(provider_name)
    ciphertext = benchmark(
        lambda: provider.aes_cbc_encrypt(KEY, IV, PAYLOAD)
    )
    assert len(ciphertext) == len(PAYLOAD)


@pytest.mark.parametrize("provider_name", PROVIDERS)
def test_ablprov_rsa_sign(world, benchmark, provider_name):
    provider = get_provider(provider_name)
    digest = provider.digest("sha1", PAYLOAD)
    signature = benchmark(
        lambda: provider.rsa_sign_digest(world.device_key, digest,
                                         "sha1")
    )
    assert provider.rsa_verify_digest(
        world.device_key.public_key(), digest, signature, "sha1",
    )


def test_ablprov_summary(world, benchmark):
    from _workloads import measure

    def run():
        rows = {}
        for name in PROVIDERS:
            provider = get_provider(name)
            sha_time = measure(
                lambda: provider.digest("sha256", PAYLOAD),
                warmup=1, repeat=5,
            )
            aes_time = measure(
                lambda: provider.aes_cbc_encrypt(KEY, IV, PAYLOAD),
                warmup=1, repeat=5,
            )
            rows[name] = (sha_time, aes_time)
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    lines = [
        f"{name:12s} sha256(16KiB)={sha * 1e3:8.3f}ms "
        f"aes-cbc(16KiB)={aes * 1e3:8.3f}ms "
        f"({PAYLOAD.__sizeof__() and len(PAYLOAD) / 1024:.0f} KiB payload)"
        for name, (sha, aes) in rows.items()
    ]
    report("ABL-PROV crypto provider ablation", lines)
    if len(rows) == 2:
        # The native backend should not be slower than pure Python.
        assert rows["accelerated"][1] <= rows["pure"][1]
