"""ABL-AUDIT — static audit throughput on the ABL-GRAN workload.

The auditor is meant to run at authoring/mastering time over whole
discs, so its cost must stay a small multiple of a single verification
pass.  Regenerated series: audit time over the 8-signature manifest of
the granularity ablation (one detached signature per submarkup), plus
the cost split between the reference/coverage pass and the Id scan.

The normalized form of this workload (``audit_8sig_norm``) is tracked
by the CI regression gate in ``bench_regression.py``.
"""

import pytest

from _workloads import build_manifest, measure, report
from repro.analysis import ArtifactAuditor
from repro.dsig import Signer

TOTAL_SUBMARKUPS = 8


def fat_manifest():
    return build_manifest("abl-audit", scripts=1, script_lines=120,
                          submarkups=TOTAL_SUBMARKUPS).to_element()


@pytest.fixture(scope="module")
def signed_root(world):
    root = fat_manifest()
    signer = Signer(world.studio.key, identity=world.studio)
    for target in root.iter("submarkup"):
        signer.sign_detached(f"#{target.get('Id')}", parent=root)
    return root


def audit_once(root):
    auditor = ArtifactAuditor()
    auditor.audit_element(root, "abl-audit")
    return auditor.finish()


def test_ablaudit_signed_workload_profile(signed_root):
    """The auditor's verdict on the ABL-GRAN workload is stable.

    Detached-by-Id signatures are exactly the position-unbound shape
    SEC002 warns about — one warning per signature — and the workload
    uses the legacy SHA-1 suite, so SEC010/SEC011 fire too.  Partial
    signing covers only the submarkups, so the script is flagged
    unsigned (SEC020): the flexibility/performance trade-off of the
    ablation, seen from the auditor's side.  No structural errors
    (duplicate/dangling Ids, transform anomalies).
    """
    result = audit_once(signed_root)
    by_rule = {rule: len(fs) for rule, fs in result.by_rule().items()}
    assert by_rule.get("SEC002") == TOTAL_SUBMARKUPS
    assert "SEC020" in by_rule
    for absent in ("SEC001", "SEC003", "SEC004"):
        assert absent not in by_rule
    assert len(result.coverage) == TOTAL_SUBMARKUPS


def test_ablaudit_throughput(world, benchmark, signed_root):
    result = benchmark(lambda: audit_once(signed_root))
    assert len(result.coverage) == TOTAL_SUBMARKUPS


def test_ablaudit_scales_with_signatures(world, benchmark):
    signer = Signer(world.studio.key, identity=world.studio)

    def run():
        series = {}
        for count in (0, 2, 4, 8):
            root = fat_manifest()
            targets = [el for el in root.iter("submarkup")][:count]
            for target in targets:
                signer.sign_detached(f"#{target.get('Id')}",
                                     parent=root)
            series[count] = measure(lambda: audit_once(root),
                                    warmup=1, repeat=5)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"signatures {count}/{TOTAL_SUBMARKUPS}: "
        f"audit={t * 1e3:7.2f}ms"
        for count, t in series.items()
    ]
    report("ABL-AUDIT audit cost vs. signature count", rows)
    # The audit over 8 signatures must not blow up superlinearly
    # against the unsigned document (allow generous headroom: the
    # coverage pass is per-signature).
    assert series[8] < series[0] * 40 + 1.0
