"""FIG5 — Signing/verification at the Manifest level and below.

Fig 5: "the control of authentication becomes much more fine-grained
... (s)he can selectively sign only the Code or the Markup part.
Within the Code or Markup part itself, (s)he can choose to sign/verify
only one of scripts or submarkups."

Regenerated series: per-level target counts, protected bytes and
verify times for MANIFEST / MARKUP / CODE / SUBMARKUP / SCRIPT, plus
the independence property: changing an *unsigned* part does not break
a selective signature.
"""


import pytest

from _workloads import build_manifest, report
from repro.core import (
    ProtectionLevel, protection_targets, sign_at_level, verify_signatures,
)
from repro.disc import InteractiveCluster
from repro.dsig import Signer, Verifier

LEVELS = (
    ProtectionLevel.MANIFEST, ProtectionLevel.MARKUP,
    ProtectionLevel.CODE, ProtectionLevel.SUBMARKUP,
    ProtectionLevel.SCRIPT,
)


def build_root():
    cluster = InteractiveCluster("Fig5 Disc")
    cluster.add_application_track(
        build_manifest("fig5-app", scripts=3, script_lines=30,
                       submarkups=4)
    )
    return cluster.to_element()


@pytest.mark.parametrize("level", LEVELS, ids=lambda lv: lv.value)
def test_fig5_sign_each_level(world, benchmark, level):
    signer = Signer(world.studio.key, identity=world.studio)

    def run():
        root = build_root()
        return sign_at_level(root, level, signer)

    result = benchmark(run)
    assert result.signatures
    assert len(result.signatures) == len(
        protection_targets(build_root(), level)
    )


def test_fig5_level_series(world, benchmark):
    signer = Signer(world.studio.key, identity=world.studio)
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True)

    def run():
        from _workloads import timed
        series = {}
        for level in LEVELS:
            root = build_root()
            signing = sign_at_level(root, level, signer)
            verify_time, reports = timed(
                lambda root=root: verify_signatures(root, verifier)
            )
            assert all(r.valid for r in reports.values())
            series[level.value] = (
                len(signing.signatures), signing.protected_bytes,
                verify_time,
            )
        return series

    series = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"{name:10s} targets={count} protected={size:6d}B "
        f"verify={t * 1e3:7.2f}ms"
        for name, (count, size, t) in series.items()
    ]
    report("FIG5 manifest-level granularity", rows)
    # Finer parts protect fewer bytes than the whole manifest.
    assert series["manifest"][1] > series["markup"][1]
    assert series["manifest"][1] > series["code"][1]


def test_fig5_unsigned_parts_are_independent(world, benchmark):
    """Sign only CODE; mutate markup freely; signature must hold."""
    signer = Signer(world.studio.key, identity=world.studio)
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True)

    def run():
        root = build_root()
        sign_at_level(root, ProtectionLevel.CODE, signer)
        # Author tweaks the layout after signing the code.
        region = root.find("region")
        region.set("width", "1280")
        reports = verify_signatures(root, verifier)
        still_valid = all(r.valid for r in reports.values())
        # ...but touching a signed script is caught.
        script = root.find("script")
        script.children[0].data = "var pwned = true;"
        reports = verify_signatures(root, verifier)
        caught = not all(r.valid for r in reports.values())
        return still_valid, caught

    still_valid, caught = benchmark.pedantic(run, rounds=3, iterations=1)
    report("FIG5 selective-signing independence", [
        f"markup edit after code-only signing verifies: {still_valid}",
        f"script tampering detected: {caught}",
    ])
    assert still_valid and caught
