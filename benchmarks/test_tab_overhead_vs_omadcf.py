"""TAB-OVH — XML security vs the binary OMA DCF baseline (ref [37]).

The paper (§4): "XML based security incurs 2.5 to 5.1 times more
overhead as compared to OMA DCF and performance wise the text based
XML takes a back seat when compared to binary-based OMA DCF.
Nevertheless ... in the context of a consumer electronic device like
[an] optical disc player, this performance reduction ... would be
within the allowable performance requirements."

Regenerated table: for a payload-size sweep, the secured-object size
under (a) XMLEnc+XMLDSig packaging and (b) the DCF-like binary
container, the size ratio, and the processing-time ratio.

Shape expectations:
* the size ratio falls inside (or near) the cited 2.5–5.1× band for
  application-sized payloads (hundreds of bytes to a few KB);
* the ratio decreases monotonically as payloads grow (fixed markup
  amortizes);
* XML processing is slower than binary DCF processing.
"""


import pytest

from _workloads import measure, report
from repro import omadcf
from repro.dsig import (
    ENVELOPED_SIGNATURE, Reference, Signer, Transform, Verifier,
)
from repro.primitives.keys import SymmetricKey
from repro.primitives.provider import (
    available_providers, get_provider, set_default_provider,
)
from repro.xmlcore import C14N, DSIG_NS, element, parse_element, \
    serialize_bytes
from repro.xmlenc import Decryptor, Encryptor

PAYLOAD_SIZES = (256, 512, 1024, 2048, 8192, 65536)
APP_SIZED = (256, 512, 1024, 2048)   # the band the claim refers to


def _payload(world, size: int) -> bytes:
    # Realistic application bytes: markup-ish text, not pure noise.
    chunk = (b'<item k="score" v="1200"/><!-- padding -->'
             b"function onKey(k){return k;}\n")
    data = chunk * (size // len(chunk) + 1)
    return data[:size]


def _xml_secure(world, payload: bytes, key: SymmetricKey,
                signer: Signer, rng) -> bytes:
    """Package *payload* the XML-security way: EncryptedData inside a
    signed wrapper (KeyName key info, no certificate chain — the
    lean configuration, matching DCF's out-of-band rights object)."""
    encryptor = Encryptor(rng=rng)
    data, _ = encryptor.encrypt_bytes(payload, key, key_name="cek",
                                      data_id="payload-1")
    wrapper = element("securedObject", "urn:bda:bdmv:interactive-cluster",
                      nsmap={None: "urn:bda:bdmv:interactive-cluster"},
                      attrs={"Id": "obj-1"})
    wrapper.append(data.to_element())
    signer.sign_references(
        [Reference(uri="#obj-1",
                   transforms=[Transform(ENVELOPED_SIGNATURE),
                               Transform(C14N)])],
        parent=wrapper,
    )
    return serialize_bytes(wrapper)


def _xml_open(world, packaged: bytes, key: SymmetricKey,
              verify_key) -> bytes:
    root = parse_element(packaged)
    verifier = Verifier()
    signature = root.find("Signature", DSIG_NS)
    report_ = verifier.verify(signature, key=verify_key)
    assert report_.valid
    decryptor = Decryptor(keys={"cek": key})
    enc = root.find("EncryptedData")
    return decryptor.decrypt_to_bytes(enc)


@pytest.fixture(scope="module")
def suite(world):
    rng = world.fresh_rng(b"tab-ovh")
    key = SymmetricKey(rng.read(16))
    mac_key = rng.read(16)
    signer = Signer(world.studio.key, key_name="studio-key")
    verify_key = world.studio.key.public_key()
    return rng, key, mac_key, signer, verify_key


def _measure(world, suite, size: int):
    from _workloads import timed
    rng, key, mac_key, signer, verify_key = suite
    payload = _payload(world, size)

    xml_pack_time, xml_packaged = timed(
        lambda: _xml_secure(world, payload, key, signer, rng)
    )
    xml_open_time, recovered = timed(
        lambda: _xml_open(world, xml_packaged, key, verify_key)
    )
    assert recovered == payload

    dcf_pack_time, dcf_packaged = timed(
        lambda: omadcf.package(payload, key.data, mac_key=mac_key,
                               rng=rng)
    )
    dcf_open_time, unpacked = timed(
        lambda: omadcf.unpack(dcf_packaged, key.data, mac_key=mac_key)
    )
    dcf_recovered, _ = unpacked
    assert dcf_recovered == payload

    return {
        "xml_size": len(xml_packaged), "dcf_size": len(dcf_packaged),
        "size_ratio": len(xml_packaged) / len(dcf_packaged),
        "xml_time": xml_pack_time + xml_open_time,
        "dcf_time": dcf_pack_time + dcf_open_time,
    }


@pytest.mark.parametrize("size", PAYLOAD_SIZES)
def test_tab_xml_packaging(world, suite, benchmark, size):
    rng, key, _mac, signer, _verify = suite
    payload = _payload(world, size)
    packaged = benchmark(
        lambda: _xml_secure(world, payload, key, signer, rng)
    )
    assert packaged


@pytest.mark.parametrize("size", PAYLOAD_SIZES)
def test_tab_dcf_packaging(world, suite, benchmark, size):
    rng, key, mac_key, _signer, _verify = suite
    payload = _payload(world, size)
    packaged = benchmark(
        lambda: omadcf.package(payload, key.data, mac_key=mac_key,
                               rng=rng)
    )
    assert packaged


def test_tab_overhead_table(world, suite, benchmark):
    def run():
        return {size: _measure(world, suite, size)
                for size in PAYLOAD_SIZES}

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"{'payload':>8s} {'XML bytes':>10s} {'DCF bytes':>10s} "
        f"{'size ratio':>10s} {'time ratio':>10s}"
    ]
    for size, row in table.items():
        time_ratio = row["xml_time"] / max(row["dcf_time"], 1e-9)
        rows.append(
            f"{size:8d} {row['xml_size']:10d} {row['dcf_size']:10d} "
            f"{row['size_ratio']:10.2f} {time_ratio:10.1f}"
        )
    rows.append("paper's cited band (ref [37]): 2.5x - 5.1x for "
                "application-sized payloads")
    report("TAB-OVH XML security vs OMA DCF", rows)

    ratios = [table[size]["size_ratio"] for size in PAYLOAD_SIZES]
    # Ratio decreases as payloads grow (fixed markup amortizes).
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))
    # The cited band holds for app-sized payloads.
    in_band = [
        table[size]["size_ratio"] for size in APP_SIZED
        if 2.5 <= table[size]["size_ratio"] <= 5.1
    ]
    assert in_band, f"no app-sized ratio inside 2.5-5.1: {ratios}"
    # Binary beats text on processing time for application-sized
    # payloads — the band the paper's concession refers to.  (At large
    # payloads the streaming/base64 rework has pushed XML's non-AES
    # overhead below DCF's double HMAC pass, so the aggregate over all
    # sizes no longer favours binary; per-size timings are noisy on a
    # shared machine, so assert the app-sized aggregate.)
    assert sum(table[size]["xml_time"] for size in APP_SIZED) > \
        sum(table[size]["dcf_time"] for size in APP_SIZED)


@pytest.mark.skipif(
    "accelerated" not in available_providers(),
    reason="accelerated backends unavailable",
)
def test_tab_accelerated_gap_narrows(world, suite, benchmark):
    """Processing-time ratio under both providers: acceleration closes
    the gap the paper concedes to OMA DCF.

    DCF is almost pure crypto, so under acceleration its own time
    collapses and the same-provider xml/dcf ratio actually widens —
    the honest claims are (a) the absolute processing-time gap
    (xml − dcf, same provider) narrows, and (b) against the fixed
    pure-provider DCF baseline the player already pays, accelerated
    XML security drops below 1×: the text-based penalty disappears.
    """
    rng, key, mac_key, signer, verify_key = suite

    def roundtrip_xml(payload):
        packaged = _xml_secure(world, payload, key, signer, rng)
        assert _xml_open(world, packaged, key, verify_key) == payload

    def roundtrip_dcf(payload):
        packaged = omadcf.package(payload, key.data, mac_key=mac_key,
                                  rng=rng)
        recovered, _ = omadcf.unpack(packaged, key.data,
                                     mac_key=mac_key)
        assert recovered == payload

    def run():
        times = {}
        previous = get_provider().name
        try:
            for name in ("pure", "accelerated"):
                set_default_provider(name)
                xml_time = dcf_time = 0.0
                for size in APP_SIZED:
                    payload = _payload(world, size)
                    xml_time += measure(
                        lambda: roundtrip_xml(payload), warmup=1,
                        repeat=5,
                    )
                    dcf_time += measure(
                        lambda: roundtrip_dcf(payload), warmup=1,
                        repeat=5,
                    )
                times[name] = (xml_time, dcf_time)
        finally:
            set_default_provider(previous)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    pure_xml, pure_dcf = times["pure"]
    accel_xml, accel_dcf = times["accelerated"]
    rows = [
        f"{'provider':>12s} {'xml (ms)':>10s} {'dcf (ms)':>10s} "
        f"{'ratio':>7s} {'gap (ms)':>9s}"
    ]
    for name in ("pure", "accelerated"):
        xml_time, dcf_time = times[name]
        rows.append(
            f"{name:>12s} {xml_time * 1e3:10.2f} {dcf_time * 1e3:10.2f} "
            f"{xml_time / dcf_time:7.2f} "
            f"{(xml_time - dcf_time) * 1e3:9.2f}"
        )
    rows.append(
        "vs pure-DCF baseline: "
        f"pure {pure_xml / pure_dcf:.2f}x -> "
        f"accelerated {accel_xml / pure_dcf:.2f}x"
    )
    report("TAB-OVH accelerated provider vs OMA DCF", rows)

    # (a) The absolute xml-vs-dcf gap narrows under acceleration.
    assert accel_xml - accel_dcf < (pure_xml - pure_dcf) * 0.8
    # (b) Accelerated XML security beats the pure binary DCF baseline
    #     outright — the paper's 2.5-5.1x concession is closed.
    assert accel_xml < pure_dcf
