"""FIG6 — Enveloped / enveloping / detached signatures and C14N.

Fig 6's two points: (1) a signature over a markup target can be
enveloped, enveloping or detached, at the signer's discretion; (2)
"the fact that XML based markups allow syntactic variations while
remaining semantically equivalent, and the nature of hash functions to
be sensitive to syntax variations, calls for the application of
canonicalization (XML-C14N)."

Regenerated rows: timing per signature form, and the C14N demonstration
(raw digests differ across syntactic variants; canonical digests and
signature verification agree).
"""

import pytest

from _workloads import build_manifest, report
from repro.dsig import Signer, Verifier
from repro.primitives.sha import sha1
from repro.xmlcore import canonicalize, parse_element, serialize


@pytest.fixture(scope="module")
def signer(world):
    return Signer(world.studio.key, identity=world.studio)


@pytest.fixture(scope="module")
def verifier(world):
    return Verifier(trust_store=world.trust_store,
                    require_trusted_key=True)


def test_fig6_enveloped(signer, verifier, benchmark):
    def run():
        manifest = build_manifest("fig6").to_element()
        signature = signer.sign_enveloped(manifest)
        return verifier.verify(signature)
    assert benchmark(run).valid


def test_fig6_enveloping(signer, verifier, benchmark):
    def run():
        manifest = build_manifest("fig6").to_element()
        signature = signer.sign_enveloping(manifest,
                                           object_id="fig6-object")
        return verifier.verify(signature)
    assert benchmark(run).valid


def test_fig6_detached(signer, verifier, benchmark):
    def run():
        manifest = build_manifest("fig6").to_element()
        holder = parse_element(
            '<cluster xmlns="urn:bda:bdmv:interactive-cluster"/>'
        )
        holder.append(manifest)
        signature = signer.sign_detached(
            f"#{manifest.get('Id')}", parent=holder,
        )
        return verifier.verify(signature)
    assert benchmark(run).valid


SYNTACTIC_VARIANTS = [
    '<m a="1" b="2"><x>value</x></m>',
    "<m b='2' a='1'><x>value</x></m>",
    '<m  a = "1"  b="2" ><x >value</x ></m >',
    '<m a="1" b="2"><x>&#118;alue</x></m>',
]


def test_fig6_c14n_requirement(signer, verifier, benchmark):
    """Raw digests differ; canonical digests agree; signatures survive
    re-serialization."""

    def run():
        raw_digests = {sha1(v.encode()) for v in SYNTACTIC_VARIANTS}
        canonical_digests = {
            sha1(canonicalize(parse_element(v)))
            for v in SYNTACTIC_VARIANTS
        }
        # A signed manifest re-serialized (different syntax) verifies.
        manifest = build_manifest("fig6").to_element()
        signature = signer.sign_enveloped(manifest)
        reparsed = parse_element(serialize(manifest))
        from repro.xmlcore import DSIG_NS
        survived = verifier.verify(
            reparsed.find("Signature", DSIG_NS)
        ).valid
        return len(raw_digests), len(canonical_digests), survived

    raw_count, canonical_count, survived = benchmark.pedantic(
        run, rounds=3, iterations=1,
    )
    report("FIG6 signature forms and canonicalization", [
        f"syntactic variants: {len(SYNTACTIC_VARIANTS)}",
        f"distinct raw SHA-1 digests:       {raw_count}",
        f"distinct canonical SHA-1 digests: {canonical_count}",
        f"signature survives re-serialization: {survived}",
    ])
    assert raw_count == len(SYNTACTIC_VARIANTS)
    assert canonical_count == 1
    assert survived
