"""Benchmark fixtures: the shared world (PKI, device, trust store)."""

import os

import pytest

from _workloads import REPORT_PATH, build_world


@pytest.fixture(scope="session")
def world():
    """One PKI/device per session — key generation dominates setup."""
    return build_world()


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    """Start bench_report.txt afresh for each benchmark session."""
    if os.path.exists(REPORT_PATH):
        os.remove(REPORT_PATH)
    yield
