"""FIG1 — The end-to-end usage model.

Fig 1: movie companies distribute HD content on discs; players at the
consumer home play it back; applications and extensions are downloaded
from content servers over broadband.

Regenerated rows: timing for each leg of the journey — author+master,
sign, insert+authenticate, play, launch the disc app, and the
download/verify/execute loop — demonstrating the whole model runs.
"""

from _workloads import build_manifest, report
from repro.core import AuthoringPipeline, ProtectionLevel, sign_disc_image
from repro.disc import DiscAuthor
from repro.dsig import Signer
from repro.network import Channel, ContentServer, DownloadClient
from repro.player import DiscPlayer


def author_image(world, *, signed=True):
    author = DiscAuthor("Fig1 Feature", rng=world.fresh_rng(b"fig1"))
    clips = [author.add_clip(30.0, packets_per_second=25)
             for _ in range(2)]
    author.add_feature("main-feature", clips)
    author.add_application(build_manifest("menu"))
    image = author.master()
    if signed:
        sign_disc_image(
            image, Signer(world.studio.key, identity=world.studio),
            level=ProtectionLevel.TRACK,
        )
    return image


def test_fig1_author_and_master(world, benchmark):
    image = benchmark(lambda: author_image(world, signed=False))
    assert image.validate_structure() == []


def test_fig1_sign_disc(world, benchmark):
    def run():
        image = author_image(world, signed=False)
        return sign_disc_image(
            image, Signer(world.studio.key, identity=world.studio),
            level=ProtectionLevel.TRACK,
        )
    result = benchmark(run)
    assert result.stream_uris


def test_fig1_insert_and_authenticate(world, benchmark):
    image = author_image(world)
    player = DiscPlayer(world.trust_store)
    session = benchmark(lambda: player.insert_disc(image))
    assert session.authenticated


def test_fig1_playback_and_launch(world, benchmark):
    image = author_image(world)
    player = DiscPlayer(world.trust_store)
    player.insert_disc(image)

    def run():
        playback = player.play_title("main-feature")
        app = player.launch_disc_application("menu")
        return playback, app

    playback, app = benchmark(run)
    assert playback.duration_s == 60.0
    assert app.trusted


def test_fig1_download_loop(world, benchmark):
    pipeline = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig1-dl"),
    )
    manifest = build_manifest("bonus")
    package = pipeline.build_package(manifest,
                                     encrypt_ids=(manifest.code_id,))
    server = ContentServer(identity=world.server_identity)
    server.publish("/apps/bonus.pkg", package.data)
    player = DiscPlayer(world.trust_store, device_key=world.device_key)

    def run():
        client = DownloadClient(server, Channel(),
                                trust_store=world.trust_store)
        application = player.download_application(
            client, "/apps/bonus.pkg", secure=True,
        )
        return player.run_application(application)

    session = benchmark(run)
    assert session.trusted


def test_fig1_whole_journey(world, benchmark):
    server = ContentServer(identity=world.server_identity)
    pipeline = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig1-journey"),
    )
    manifest = build_manifest("bonus")
    server.publish(
        "/apps/bonus.pkg",
        pipeline.build_package(manifest,
                               encrypt_ids=(manifest.code_id,)).data,
    )

    def run():
        from _workloads import timed
        legs = {}
        legs["studio: author+master+sign"], image = timed(
            lambda: author_image(world)
        )

        player = DiscPlayer(world.trust_store,
                            device_key=world.device_key)
        legs["player: insert+authenticate"], session = timed(
            lambda: player.insert_disc(image)
        )
        assert session.authenticated

        def play_leg():
            player.play_title("main-feature")
            player.launch_disc_application("menu")

        legs["player: play+launch"], _ = timed(play_leg)

        def download_leg():
            client = DownloadClient(server, Channel(),
                                    trust_store=world.trust_store)
            application = player.download_application(
                client, "/apps/bonus.pkg", secure=True,
            )
            player.run_application(application)

        legs["network: download+verify+run"], _ = timed(download_leg)
        return legs

    legs = benchmark.pedantic(run, rounds=3, iterations=1)
    report("FIG1 end-to-end usage model", [
        f"{name:32s} {t * 1e3:8.1f}ms" for name, t in legs.items()
    ])


def test_fig1_broadcast_leg(world, benchmark):
    """Fig 1's second delivery path: the same package over the
    DSM-CC-style carousel, assembled and verified."""
    from repro.core import PlaybackPipeline
    from repro.network.broadcast import (
        Carousel, CarouselReceiver, broadcast_until_received,
    )

    pipeline = AuthoringPipeline(
        world.studio, recipient_key=world.device_key.public_key(),
        rng=world.fresh_rng(b"fig1-bcast"),
    )
    manifest = build_manifest("ota-bonus")
    package = pipeline.build_package(manifest,
                                     encrypt_ids=(manifest.code_id,))
    carousel = Carousel()
    carousel.publish("apps/ota-bonus.pkg", package.data)
    playback = PlaybackPipeline(trust_store=world.trust_store,
                                device_key=world.device_key)

    def run():
        receiver = CarouselReceiver()
        delivered = broadcast_until_received(
            carousel, receiver, "apps/ota-bonus.pkg", start_offset=2,
        )
        return playback.open_package(delivered)

    application = benchmark(run)
    assert application.trusted
