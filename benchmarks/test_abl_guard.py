"""ABL-GUARD — Ablation: ResourceGuard overhead on the hot paths.

The quota layer (:mod:`repro.resilience.limits`) meters every
untrusted-input entry point.  A CE player spends almost all of its
life on *legitimate* input, so the meter must cost essentially nothing
when no quota trips.  This bench compares the ABL-GRAN warm
batch-verify workload (8/8 signed sub-markups, digest cache primed)
with and without a per-package guard threaded through, and a guarded
vs quota-free parse of the same package for scale.

The regression gate tracks the verify ratio as
``guard_overhead_ratio`` in ``benchmarks/baseline.json``; the
acceptance envelope is <= 1.05 on the committing machine.
"""

import pytest

from _workloads import build_manifest, measure_pair, report
from repro.dsig import Signer, Verifier
from repro.perf import BatchVerifier, C14NDigestCache
from repro.resilience import ResourceGuard, ResourceLimits
from repro.xmlcore import parse_element, serialize

ACCEPTANCE_RATIO = 1.05
#: headroom over the acceptance envelope for shared-CI scheduler noise
#: (the committed gate in baseline.json is the authoritative check)
NOISE_ALLOWANCE = 1.15


@pytest.fixture(scope="module")
def signed_root(world):
    signer = Signer(world.studio.key, identity=world.studio)
    root = build_manifest(
        "abl-guard", scripts=1, script_lines=120, submarkups=8,
    ).to_element()
    for target in root.iter("submarkup"):
        signer.sign_detached(f"#{target.get('Id')}", parent=root)
    return root


def warm_engine(world, guard):
    engine = BatchVerifier(Verifier(
        trust_store=world.trust_store, require_trusted_key=True,
        cache=C14NDigestCache(), guard=guard,
    ))
    return engine


def test_ablguard_warm_verify_plain(benchmark, world, signed_root):
    engine = warm_engine(world, None)
    assert engine.verify_all(signed_root).all_valid   # prime the cache
    assert benchmark(lambda: engine.verify_all(signed_root)).all_valid


def test_ablguard_warm_verify_guarded(benchmark, world, signed_root):
    engine = warm_engine(world, ResourceGuard())
    assert engine.verify_all(signed_root).all_valid   # prime the cache

    def verify():
        engine.verifier.guard = ResourceGuard()   # fresh per package
        return engine.verify_all(signed_root)

    assert benchmark(verify).all_valid


def test_ablguard_parse_overhead(benchmark, signed_root):
    """Parsing under the default quota vs with quotas disabled.

    Even the unlimited guard runs every check (each one a no-op
    comparison), so this bounds the *bookkeeping* cost on the parse
    hot loop rather than the cost of any particular limit value.
    """
    xml = serialize(signed_root)
    unlimited = ResourceGuard(ResourceLimits.unlimited())
    defaulted, quota_free = measure_pair(
        lambda: parse_element(xml, guard=ResourceGuard()),
        lambda: parse_element(xml, guard=unlimited),
    )
    benchmark(lambda: parse_element(xml, guard=ResourceGuard()))
    assert defaulted <= quota_free * NOISE_ALLOWANCE


def test_ablguard_report(benchmark, world, signed_root):
    """The paper-style row the regression gate pins down."""
    plain_engine = warm_engine(world, None)
    guarded_engine = warm_engine(world, ResourceGuard())
    assert plain_engine.verify_all(signed_root).all_valid
    assert guarded_engine.verify_all(signed_root).all_valid

    def guarded_verify():
        guarded_engine.verifier.guard = ResourceGuard()
        return guarded_engine.verify_all(signed_root)

    plain, guarded = measure_pair(
        lambda: plain_engine.verify_all(signed_root), guarded_verify,
    )
    ratio = guarded / plain if plain else 1.0
    benchmark(guarded_verify)
    report("ABL-GUARD quota-meter overhead (warm batch verify, 8 sigs)", [
        f"unguarded verify_all {plain * 1e6:9.1f} us",
        f"guarded verify_all   {guarded * 1e6:9.1f} us",
        f"overhead ratio       {ratio:9.3f} (acceptance <= "
        f"{ACCEPTANCE_RATIO})",
    ])
    assert ratio <= ACCEPTANCE_RATIO * NOISE_ALLOWANCE
