"""FIG4 — Signing/verification at Interactive-Cluster vs Track level.

Fig 4's sub-scenarios: sign the whole cluster, or selectively sign
tracks — "a realization of selective Signing/Verification of
application Track is hence commendable."

Regenerated series: sign time, verify time and protected bytes for
(a) the whole cluster, (b) every track, (c) only the application
track.  Shape expectation: selective application-track protection is
cheaper than whole-cluster protection.
"""


from _workloads import build_manifest, report
from repro.core import ProtectionLevel, sign_at_level, verify_signatures
from repro.disc import InteractiveCluster, Playlist
from repro.dsig import Reference, Signer, Transform, Verifier
from repro.xmlcore import C14N


def build_cluster() -> InteractiveCluster:
    cluster = InteractiveCluster("Fig4 Disc")
    for index in range(4):
        playlist = Playlist(f"title-{index}",
                            playlist_id=f"pl-{index}")
        playlist.add_item(f"{index + 1:05d}", 0.0, 60.0)
        cluster.add_av_track(playlist)
    cluster.add_application_track(
        build_manifest("fig4-app", scripts=2, script_lines=40)
    )
    return cluster


def _signer(world):
    return Signer(world.studio.key, identity=world.studio)


def _verifier(world):
    return Verifier(trust_store=world.trust_store,
                    require_trusted_key=True)


def test_fig4_sign_cluster_level(world, benchmark):
    def run():
        root = build_cluster().to_element()
        return sign_at_level(root, ProtectionLevel.CLUSTER,
                             _signer(world))
    result = benchmark(run)
    assert len(result.signatures) == 1


def test_fig4_sign_track_level(world, benchmark):
    def run():
        root = build_cluster().to_element()
        return sign_at_level(root, ProtectionLevel.TRACK,
                             _signer(world))
    result = benchmark(run)
    assert len(result.signatures) == 5


def test_fig4_sign_application_track_only(world, benchmark):
    def run():
        root = build_cluster().to_element()
        app_track = [
            t for t in root.iter("track") if t.get("kind") == "application"
        ][0]
        signer = _signer(world)
        reference = Reference(uri=f"#{app_track.get('Id')}",
                              transforms=[Transform(C14N)])
        return signer.sign_references([reference], parent=root)
    signature = benchmark(run)
    assert signature is not None


def test_fig4_selective_verification_series(world, benchmark):
    """The comparison series the figure implies."""
    signer = _signer(world)
    verifier = _verifier(world)

    def time_level(level):
        from _workloads import timed
        root = build_cluster().to_element()
        sign_time, signing = timed(
            lambda: sign_at_level(root, level, signer)
        )
        verify_time, reports = timed(
            lambda: verify_signatures(root, verifier)
        )
        assert all(r.valid for r in reports.values())
        return sign_time, verify_time, signing.protected_bytes

    def run():
        return {
            "whole cluster": time_level(ProtectionLevel.CLUSTER),
            "every track": time_level(ProtectionLevel.TRACK),
        }

    series = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"{name:15s} sign={s * 1e3:7.2f}ms verify={v * 1e3:7.2f}ms "
        f"protected={b:6d}B"
        for name, (s, v, b) in series.items()
    ]
    report("FIG4 cluster vs track level protection", rows)
    # Whole-cluster covers at least as many bytes as the sum of tracks.
    assert series["whole cluster"][2] >= series["every track"][2] * 0.9


def test_fig4_manifest_mode_single_signature(world, benchmark):
    """XMLDSig ds:Manifest variant: one signature listing every track —
    core validation is one RSA verify; per-track digests checked only
    as tracks are used (selective verification, §5.3)."""
    from _workloads import timed
    from repro.dsig.manifest import (
        sign_with_manifest, validate_manifest_references,
    )
    from repro.perf.cache import NullCache

    signer = _signer(world)
    verifier = _verifier(world)

    def run():
        root = build_cluster().to_element()
        tracks = [t for t in root.iter("track")]
        references = [
            Reference(uri=f"#{t.get('Id')}", transforms=[Transform(C14N)])
            for t in tracks
        ]
        signature = sign_with_manifest(signer, references, parent=root)
        core_time, outcome = timed(lambda: verifier.verify(signature))
        assert outcome.valid
        # NullCache: this row compares *uncached* per-track digest
        # costs; with the shared cache the full pass would serve the
        # selectively-checked track for free and invert the comparison.
        # Median-of-5: the streamed digest path is fast enough that a
        # single sample sits at the scheduler-noise floor.
        from _workloads import measure

        selective = validate_manifest_references(
            signature, only_uris=(f"#{tracks[-1].get('Id')}",),
            cache=NullCache(),
        )
        assert selective.all_valid
        selective_time = measure(
            lambda: validate_manifest_references(
                signature, only_uris=(f"#{tracks[-1].get('Id')}",),
                cache=NullCache(),
            ),
            warmup=0, repeat=5,
        )
        full = validate_manifest_references(signature, cache=NullCache())
        assert full.all_valid
        full_time = measure(
            lambda: validate_manifest_references(signature,
                                                 cache=NullCache()),
            warmup=0, repeat=5,
        )
        return core_time, selective_time, full_time

    core_time, selective_time, full_time = benchmark.pedantic(
        run, rounds=3, iterations=1,
    )
    report("FIG4 ds:Manifest selective verification", [
        f"core validation (1 RSA verify):   {core_time * 1e3:7.2f}ms",
        f"check one track on demand:        {selective_time * 1e3:7.2f}ms",
        f"check all tracks:                 {full_time * 1e3:7.2f}ms",
    ])
    assert selective_time < full_time
