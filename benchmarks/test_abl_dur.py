"""ABL-DUR — Ablation: durable-journal commit and recovery cost.

The durable layer (:mod:`repro.resilience.durable`) routes every
security-state mutation through a checksummed write-ahead journal, so
each acknowledged commit pays for frame encoding, a digest over the
payload, and an fsync.  A CE player commits on every settings write,
so the per-commit cost has to stay small — and recovery (replaying
the journal after power loss) has to be fast enough to hide inside
boot.

Runs against the in-memory :class:`CrashableFilesystem` so the
workload is pure CPU (framing, checksums, replay) and comparable
across machines; an ``OsFilesystem`` run would mostly measure the
host's fsync latency.  The regression gate tracks
``journal_commit_norm`` and ``recovery_norm`` in
``benchmarks/baseline.json``.
"""

from _workloads import measure, report
from repro.resilience.crashfs import CrashableFilesystem, SimulatedCrash
from repro.resilience.durable import DurableStore

RECORDS = 50
VALUE = b"V" * 100
DIRECTORY = "/bench/state"


def populate(fs: CrashableFilesystem) -> DurableStore:
    store = DurableStore(DIRECTORY, fs=fs)
    for index in range(RECORDS):
        store.set("slots", f"key-{index:03d}", VALUE)
        store.commit()
    return store


def test_abldur_commit_batch(benchmark):
    def commit_batch():
        return populate(CrashableFilesystem(seed=0))

    store = benchmark(commit_batch)
    assert len(store.keys("slots")) == RECORDS


def test_abldur_recovery(benchmark):
    fs = CrashableFilesystem(seed=0)
    populate(fs)

    store = benchmark(lambda: DurableStore(DIRECTORY, fs=fs))
    assert len(store.keys("slots")) == RECORDS
    assert store.recovery.clean


def test_abldur_recovery_after_compaction(benchmark):
    """Post-compaction recovery reads the snapshot, not the journal."""
    fs = CrashableFilesystem(seed=0)
    populate(fs).compact()

    store = benchmark(lambda: DurableStore(DIRECTORY, fs=fs))
    assert len(store.keys("slots")) == RECORDS
    assert store.recovery.clean


def test_abldur_torn_tail_recovery(benchmark):
    """Recovery over a crash-torn journal tail (the power-loss shape)."""
    probe = CrashableFilesystem(seed=7)
    populate(probe)
    # Kill the run at its very last injection point — the final
    # commit's fsync — so the tail frame may be torn.
    fs = CrashableFilesystem(seed=7, crash_at=probe.op_count - 1)
    try:
        populate(fs)
    except SimulatedCrash:
        fs.crash()

    store = benchmark(lambda: DurableStore(DIRECTORY, fs=fs))
    # Every *acknowledged* commit survives; only the unacked final
    # write may be missing.
    assert len(store.keys("slots")) >= RECORDS - 1


def test_abldur_report(benchmark):
    """The paper-style rows the regression gate pins down."""
    commit_time = measure(
        lambda: populate(CrashableFilesystem(seed=0)), warmup=1, repeat=5,
    )
    fs = CrashableFilesystem(seed=0)
    populate(fs)
    recovery_time = measure(
        lambda: DurableStore(DIRECTORY, fs=fs), warmup=1, repeat=5,
    )
    benchmark(lambda: DurableStore(DIRECTORY, fs=fs))
    report(f"ABL-DUR durable journal ({RECORDS} committed records)", [
        f"commit batch   {commit_time * 1e6:9.1f} us "
        f"({commit_time / RECORDS * 1e6:.1f} us/commit)",
        f"recovery       {recovery_time * 1e6:9.1f} us",
    ])
