"""ABL-GRAN — Ablation: partial protection ⇒ better performance.

The conclusion's claim (§9): "The content authors may use the
flexibility of partially signing or encrypting the applications.  For
player platforms, this flexibility translates into better performance."

Regenerated series: player-side cost (decrypt / verify) as a function
of the protected fraction of the application, 0% → 100%.  Shape
expectation: cost grows with the protected fraction, so partial
protection is strictly cheaper than whole-application protection.
"""

import time

import pytest

from _workloads import build_manifest, report
from repro.dsig import Signer, Verifier
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import parse_element, serialize_bytes
from repro.xmlenc import Decryptor, Encryptor

TOTAL_SUBMARKUPS = 8
FRACTIONS = (0, 2, 4, 8)   # submarkups protected out of 8


def fat_manifest():
    return build_manifest("abl-gran", scripts=1, script_lines=120,
                          submarkups=TOTAL_SUBMARKUPS).to_element()


def _submarkups(root):
    return [el for el in root.iter("submarkup")]


@pytest.mark.parametrize("count", FRACTIONS)
def test_ablgran_decrypt_fraction(world, benchmark, count):
    key = SymmetricKey(world.fresh_rng(b"abl-key").read(16))
    encryptor = Encryptor(rng=world.fresh_rng(b"abl-%d" % count))
    root = fat_manifest()
    for target in _submarkups(root)[:count]:
        encryptor.encrypt_element(target, key, key_name="k")
    payload = serialize_bytes(root)
    decryptor = Decryptor(keys={"k": key})

    def run():
        tree = parse_element(payload)
        return decryptor.decrypt_in_place(tree)

    assert benchmark(run) == count


def test_ablgran_decrypt_series(world, benchmark):
    key = SymmetricKey(world.fresh_rng(b"abl-key").read(16))
    decryptor = Decryptor(keys={"k": key})

    def run():
        series = {}
        for count in FRACTIONS:
            encryptor = Encryptor(
                rng=world.fresh_rng(b"abl-series-%d" % count)
            )
            root = fat_manifest()
            for target in _submarkups(root)[:count]:
                encryptor.encrypt_element(target, key, key_name="k")
            payload = serialize_bytes(root)
            t0 = time.perf_counter()
            for _ in range(5):
                tree = parse_element(payload)
                decryptor.decrypt_in_place(tree)
            series[count] = (time.perf_counter() - t0) / 5
        return series

    series = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"protected {count}/{TOTAL_SUBMARKUPS} submarkups: "
        f"unlock={t * 1e3:7.2f}ms"
        for count, t in series.items()
    ]
    report("ABL-GRAN partial encryption sweep (player unlock cost)",
           rows)
    # More protection ⇒ more player work; full > none by a clear margin.
    assert series[8] > series[0]
    assert series[4] >= series[0]


def test_ablgran_verify_series(world, benchmark):
    signer = Signer(world.studio.key, identity=world.studio)
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True)

    def run():
        series = {}
        for count in FRACTIONS:
            root = fat_manifest()
            for target in _submarkups(root)[:count]:
                signer.sign_detached(f"#{target.get('Id')}",
                                     parent=root)
            from repro.core import verify_signatures
            t0 = time.perf_counter()
            reports = verify_signatures(root, verifier)
            series[count] = time.perf_counter() - t0
            assert len(reports) == count
            assert all(r.valid for r in reports.values())
        return series

    series = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"signed {count}/{TOTAL_SUBMARKUPS} submarkups: "
        f"verify={t * 1e3:7.2f}ms"
        for count, t in series.items()
    ]
    report("ABL-GRAN partial signing sweep (player verify cost)", rows)
    assert series[8] > series[0]
