"""ABL-GRAN — Ablation: partial protection ⇒ better performance.

The conclusion's claim (§9): "The content authors may use the
flexibility of partially signing or encrypting the applications.  For
player platforms, this flexibility translates into better performance."

Regenerated series: player-side cost (decrypt / verify) as a function
of the protected fraction of the application, 0% → 100%.  Shape
expectation: cost grows with the protected fraction, so partial
protection is strictly cheaper than whole-application protection.
"""

import pytest

from _workloads import build_manifest, measure, report
from repro.core import verify_signatures
from repro.dsig import Signer, Verifier
from repro.perf import BatchVerifier, C14NDigestCache
from repro.perf.cache import NullCache
from repro.primitives.keys import SymmetricKey
from repro.xmlcore import parse_element, serialize_bytes
from repro.xmlenc import Decryptor, Encryptor

TOTAL_SUBMARKUPS = 8
FRACTIONS = (0, 2, 4, 8)   # submarkups protected out of 8


def fat_manifest():
    return build_manifest("abl-gran", scripts=1, script_lines=120,
                          submarkups=TOTAL_SUBMARKUPS).to_element()


def _submarkups(root):
    return [el for el in root.iter("submarkup")]


@pytest.mark.parametrize("count", FRACTIONS)
def test_ablgran_decrypt_fraction(world, benchmark, count):
    key = SymmetricKey(world.fresh_rng(b"abl-key").read(16))
    encryptor = Encryptor(rng=world.fresh_rng(b"abl-%d" % count))
    root = fat_manifest()
    for target in _submarkups(root)[:count]:
        encryptor.encrypt_element(target, key, key_name="k")
    payload = serialize_bytes(root)
    decryptor = Decryptor(keys={"k": key})

    def run():
        tree = parse_element(payload)
        return decryptor.decrypt_in_place(tree)

    assert benchmark(run) == count


def test_ablgran_decrypt_series(world, benchmark):
    key = SymmetricKey(world.fresh_rng(b"abl-key").read(16))
    decryptor = Decryptor(keys={"k": key})

    def run():
        series = {}
        for count in FRACTIONS:
            encryptor = Encryptor(
                rng=world.fresh_rng(b"abl-series-%d" % count)
            )
            root = fat_manifest()
            for target in _submarkups(root)[:count]:
                encryptor.encrypt_element(target, key, key_name="k")
            payload = serialize_bytes(root)

            def unlock(payload=payload):
                decryptor.decrypt_in_place(parse_element(payload))

            series[count] = measure(unlock, warmup=1, repeat=5)
        return series

    series = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"protected {count}/{TOTAL_SUBMARKUPS} submarkups: "
        f"unlock={t * 1e3:7.2f}ms"
        for count, t in series.items()
    ]
    report("ABL-GRAN partial encryption sweep (player unlock cost)",
           rows)
    # More protection ⇒ more player work; full > none by a clear margin.
    assert series[8] > series[0]
    assert series[4] >= series[0]


def _signed_manifest(signer, count):
    root = fat_manifest()
    for target in _submarkups(root)[:count]:
        signer.sign_detached(f"#{target.get('Id')}", parent=root)
    return root


def test_ablgran_verify_series(world, benchmark):
    signer = Signer(world.studio.key, identity=world.studio)
    # NullCache keeps this the *sequential* player cost — the batched /
    # cached engine is measured against it in
    # test_ablgran_batch_vs_sequential below.
    verifier = Verifier(trust_store=world.trust_store,
                        require_trusted_key=True, cache=NullCache())

    def run():
        series = {}
        for count in FRACTIONS:
            root = _signed_manifest(signer, count)
            reports = verify_signatures(root, verifier)
            assert len(reports) == count
            assert all(r.valid for r in reports.values())
            series[count] = measure(
                lambda root=root: verify_signatures(root, verifier),
                warmup=0, repeat=3,
            )
        return series

    series = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        f"signed {count}/{TOTAL_SUBMARKUPS} submarkups: "
        f"verify={t * 1e3:7.2f}ms"
        for count, t in series.items()
    ]
    report("ABL-GRAN partial signing sweep (player verify cost)", rows)
    assert series[8] > series[0]


def test_ablgran_batch_vs_sequential(world, benchmark):
    """Batch engine + warm cache vs the sequential path at 8/8.

    The PR's acceptance criterion: ≥ 3× faster once the cache is warm
    — every reference digest, certificate-chain validation and
    SignedInfo signature check is served from the revision-stamped
    cache, leaving only parse/dispatch work.
    """
    signer = Signer(world.studio.key, identity=world.studio)
    root = _signed_manifest(signer, TOTAL_SUBMARKUPS)

    sequential = Verifier(trust_store=world.trust_store,
                          require_trusted_key=True, cache=NullCache())
    seq_time = measure(
        lambda: verify_signatures(root, sequential), warmup=1, repeat=5,
    )

    batch_verifier = Verifier(trust_store=world.trust_store,
                              require_trusted_key=True,
                              cache=C14NDigestCache())
    engine = BatchVerifier(batch_verifier)
    outcome = engine.verify_all(root)   # cold run primes the cache
    assert outcome.all_valid
    assert outcome.total_references == TOTAL_SUBMARKUPS
    warm_time = measure(
        lambda: engine.verify_all(root), warmup=1, repeat=5,
    )

    speedup = seq_time / warm_time
    report("ABL-GRAN batch verification engine (8/8 signed)", [
        f"sequential (no cache):   {seq_time * 1e3:7.2f}ms",
        f"batch + warm cache:      {warm_time * 1e3:7.2f}ms",
        f"speedup:                 {speedup:7.1f}x",
    ])
    assert speedup >= 3.0
