"""ABL-ASYNC — Ablation: the overload-safe async XKMS service under
fleet load.

The fleet harness drives thousands of seeded sessions against the
sharded async trust service behind the full overload shield, entirely
in virtual time.  Every reported number — latency percentiles,
throughput, shed counts — is a pure function of the pinned
:class:`FleetConfig`, so this bench is *exactly* reproducible across
machines: CI gates the metrics byte-for-byte via
``bench_regression.py`` (the ``shed_structured_ratio`` gate uses the
``exact`` direction — the overload invariant is 1.0, not "about 1.0").

Two legs:

* **cruise** — a fleet the service absorbs comfortably; p50/p99 and
  throughput characterize the happy path.
* **crush**  — 4x the arrival rate into a quarter of the capacity;
  the interesting numbers are the shed census and the invariants
  (every shed answered structurally, zero untyped failures).
"""

import pytest

from _workloads import report
from repro.loadgen import FleetConfig, run_fleet

#: pinned cruise leg — also the config bench_regression.py gates.
CRUISE = FleetConfig(sessions=800, connections=8, ops_per_session=2,
                     seed=20050902, start_window_s=8.0)

#: pinned crush leg: tight bulkheads, slow service, impatient fleet.
CRUSH = FleetConfig(sessions=800, connections=4, ops_per_session=1,
                    seed=20050903, start_window_s=1.0, timeout_s=1.5,
                    max_concurrent=4, max_queued=4,
                    base_service_s=0.08, retry_attempts=2,
                    breaker_threshold=12, breaker_cooldown_s=2.0)


@pytest.fixture(scope="module")
def cruise():
    return run_fleet(CRUISE)


@pytest.fixture(scope="module")
def crush():
    return run_fleet(CRUSH)


def test_ablasync_cruise_latency_and_throughput(cruise):
    s = cruise.summary()
    report("ABL-ASYNC cruise (absorbed load)", [
        f"sessions: {s['sessions']}  ops: {s['ops']}  "
        f"makespan: {s['makespan_s']:g}s (virtual)",
        f"throughput: {s['throughput']:g} ok-ops/s",
        f"latency p50: {s['latency_p50_s']:g}s   "
        f"p99: {s['latency_p99_s']:g}s",
        f"validate cache: {s['cache']['hits']} hits / "
        f"{s['cache']['misses']} misses",
    ])
    assert s["outcomes"]["ok"] == s["ops"]
    assert s["outcomes"]["untyped"] == 0
    assert 0 < s["latency_p50_s"] <= s["latency_p99_s"]
    assert s["throughput"] > 0


def test_ablasync_crush_invariants_hold_under_overload(crush):
    s = crush.summary()
    failed = s["ops"] - s["outcomes"]["ok"]
    report("ABL-ASYNC crush (4x arrival into 1/4 capacity)", [
        f"sessions: {s['sessions']}  ops: {s['ops']}  "
        f"ok: {s['outcomes']['ok']}  failed(typed): {failed}",
        "outcomes: " + "  ".join(
            f"{k}={v}" for k, v in s["outcomes"].items() if v),
        f"sheds: {s['shed_total']} "
        f"(answered: {s['shed_answered']}, "
        f"ratio {s['shed_structured_ratio']:g})",
        f"degradation events: {s['degradation_events']} "
        f"(consistent: {s['degradation_consistent']})",
    ])
    # The crush leg genuinely overloads the service...
    assert s["shed_total"] > 0
    assert failed > 0
    # ...and the PR's overload invariants hold at the extremes:
    assert s["outcomes"]["untyped"] == 0
    assert s["shed_structured_ratio"] == 1.0
    assert s["degradation_consistent"] is True


def test_ablasync_summary_is_reproducible(cruise):
    again = run_fleet(CRUISE)
    assert again.summary_json() == cruise.summary_json()
