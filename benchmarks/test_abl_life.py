"""ABL-LIFE — lifecycle-analyzer throughput, cold vs. warm.

The LIF4xx analyzer joins the taint and concurrency analyzers as a
blocking CI gate over the whole tree, so the same two costs matter:
the cold pass (every module lowered to v4 IR, per-function scans, the
waits closure, deadline-flow demands) and the warm path, where the
content-hash cache must make an unchanged tree near-free.  The
regression gate in ``bench_regression.py`` tracks the normalized cold
time (``lif_cold_norm``) and the warm/cold ratio (``lif_warm_ratio``).
"""

import os

from _workloads import measure, report
from repro.analysis import LifecycleCache
from repro.analysis.lifecycle import analyze_paths

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def test_abl_life(tmp_path):
    cache_path = str(tmp_path / "lifecycle-cache.json")

    def cold():
        if os.path.exists(cache_path):
            os.remove(cache_path)
        return analyze_paths([SRC], cache=LifecycleCache(cache_path))

    result = cold()
    assert result.scanned > 100, "workload lost its modules"
    cold_time = measure(cold, warmup=0, repeat=3)

    cold()  # leave a populated cache behind for the warm series
    warm_hits = []

    def warm():
        cache = LifecycleCache(cache_path)
        out = analyze_paths([SRC], cache=cache)
        warm_hits.append(cache.run_hit)
        return out

    warm_time = measure(warm, warmup=1, repeat=5)
    assert all(warm_hits), "warm run missed the run-level cache"

    ratio = warm_time / cold_time
    assert ratio < 0.5, (
        f"warm lifecycle run is not measurably faster than cold "
        f"(ratio {ratio:.2f})"
    )

    report("ABL-LIFE", [
        f"modules analyzed: {result.scanned}",
        f"cold walk: {cold_time * 1000:.1f} ms",
        f"warm (run-level cache hit): {warm_time * 1000:.1f} ms",
        f"warm/cold ratio: {ratio:.3f}",
    ])
